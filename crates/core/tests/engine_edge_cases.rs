//! Edge cases of the fixed-priority scheduling engine shared by NR/RA/RC.

use wsan_core::{
    validate, NetworkModel, NoReuse, ReuseAggressively, ReuseConservatively, Scheduler,
    SchedulerConfig,
};
use wsan_flow::{priority, Flow, FlowId, FlowSet, Period};
use wsan_net::{NodeId, ReuseGraph, Route};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn path_graph(count: usize) -> ReuseGraph {
    let edges: Vec<_> = (0..count - 1).map(|i| (n(i), n(i + 1))).collect();
    ReuseGraph::from_edges(count, &edges)
}

fn one_flow(period: u32, deadline: u32, nodes: &[usize]) -> FlowSet {
    let flow = Flow::new(
        FlowId::new(0),
        Route::new(nodes.iter().map(|&i| n(i)).collect()),
        Period::from_slots(period).unwrap(),
        deadline,
    )
    .unwrap();
    priority::deadline_monotonic(vec![flow], vec![])
}

#[test]
fn retries_disabled_halves_the_schedule() {
    let flows = one_flow(40, 40, &[0, 1, 2]);
    let model = NetworkModel::from_reuse_graph(&path_graph(3), 2);
    let with = NoReuse::new().schedule(&flows, &model).unwrap();
    let without =
        NoReuse::new().schedule_with(&flows, &model, &SchedulerConfig { retries: false }).unwrap();
    assert_eq!(with.entry_count(), 4); // 2 links × 2 attempts
    assert_eq!(without.entry_count(), 2); // primaries only
    validate::check(&without, &flows, &model, None).unwrap();
}

#[test]
fn deadline_of_one_slot_fits_a_single_hop_without_retry() {
    let flows = one_flow(10, 1, &[0, 1]);
    let model = NetworkModel::from_reuse_graph(&path_graph(2), 1);
    // with retries two slots are needed: unschedulable
    assert!(NoReuse::new().schedule(&flows, &model).is_err());
    // without retries the single slot suffices
    let schedule =
        NoReuse::new().schedule_with(&flows, &model, &SchedulerConfig { retries: false }).unwrap();
    assert_eq!(schedule.entry_count(), 1);
    assert_eq!(schedule.entries()[0].slot, 0);
}

#[test]
fn every_job_of_a_fast_flow_is_scheduled() {
    // period 8, hyperperiod 8 → 1 job; bump with a slower flow to force a
    // 24-slot hyperperiod (LCM of 8 and 24 via slots 8 and 24)
    let fast =
        Flow::new(FlowId::new(0), Route::new(vec![n(0), n(1)]), Period::from_slots(8).unwrap(), 8)
            .unwrap();
    let slow = Flow::new(
        FlowId::new(1),
        Route::new(vec![n(2), n(3)]),
        Period::from_slots(24).unwrap(),
        24,
    )
    .unwrap();
    let flows = priority::deadline_monotonic(vec![fast, slow], vec![]);
    let model = NetworkModel::from_reuse_graph(&path_graph(4), 2);
    let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
    assert_eq!(schedule.horizon(), 24);
    // fast flow: 3 jobs × 1 link × 2 attempts; slow: 1 job × 2
    assert_eq!(schedule.entry_count(), 8);
    validate::check(&schedule, &flows, &model, None).unwrap();
    // each fast job's transmissions stay within its own period window
    for e in schedule.entries().iter().filter(|e| e.tx.flow == FlowId::new(0)) {
        let window = e.tx.job_index * 8;
        assert!(e.slot >= window && e.slot < window + 8);
    }
}

#[test]
fn rc_with_rho_floor_above_diameter_degenerates_to_nr() {
    // ρ_t beyond λ_R: stepping down from ∞ is impossible, so RC can never
    // introduce reuse and must behave exactly like NR
    let flows = one_flow(40, 40, &[0, 1, 2]);
    let model = NetworkModel::from_reuse_graph(&path_graph(3), 1);
    assert!(model.lambda_r() < 10);
    let nr = NoReuse::new().schedule(&flows, &model).unwrap();
    let rc = ReuseConservatively::new(10).schedule(&flows, &model).unwrap();
    assert_eq!(nr.entries(), rc.entries());
}

#[test]
fn ra_with_huge_rho_also_degenerates_to_nr() {
    let flows = one_flow(40, 40, &[0, 1, 2]);
    let model = NetworkModel::from_reuse_graph(&path_graph(3), 1);
    let nr = NoReuse::new().schedule(&flows, &model).unwrap();
    let ra = ReuseAggressively::new(100).schedule(&flows, &model).unwrap();
    assert_eq!(nr.entries(), ra.entries());
}

#[test]
fn single_channel_serializes_everything_under_nr() {
    // three disjoint 1-hop flows, 1 channel: occupied slots are all
    // distinct under NR
    let flows = priority::deadline_monotonic(
        (0..3)
            .map(|i| {
                Flow::new(
                    FlowId::new(i),
                    Route::new(vec![n(2 * i), n(2 * i + 1)]),
                    Period::from_slots(20).unwrap(),
                    20,
                )
                .unwrap()
            })
            .collect(),
        vec![],
    );
    let model = NetworkModel::from_reuse_graph(&path_graph(6), 1);
    let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
    let mut slots: Vec<u32> = schedule.entries().iter().map(|e| e.slot).collect();
    slots.sort_unstable();
    slots.dedup();
    assert_eq!(slots.len(), schedule.entry_count(), "NR on one channel must serialize");
}

#[test]
fn priority_order_is_respected_under_contention() {
    // two identical flows over the same link: the higher-priority one gets
    // the earlier slots
    let mk = |id| {
        Flow::new(
            FlowId::new(id),
            Route::new(vec![n(0), n(1)]),
            Period::from_slots(20).unwrap(),
            20,
        )
        .unwrap()
    };
    let flows = priority::deadline_monotonic(vec![mk(0), mk(1)], vec![]);
    let model = NetworkModel::from_reuse_graph(&path_graph(2), 4);
    let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
    let first_of = |flow: usize| {
        schedule
            .entries()
            .iter()
            .filter(|e| e.tx.flow == FlowId::new(flow))
            .map(|e| e.slot)
            .min()
            .unwrap()
    };
    assert!(first_of(0) < first_of(1));
}

#[test]
fn schedules_with_zero_channels_error_cleanly() {
    let flows = one_flow(10, 10, &[0, 1]);
    let model = NetworkModel::from_reuse_graph(&path_graph(2), 4).with_channels(0);
    let err = NoReuse::new().schedule(&flows, &model).unwrap_err();
    assert!(matches!(err, wsan_core::ScheduleError::NoChannels));
}
