//! Regression tests for RC's reuse-metric accounting and shrink tracing.
//!
//! These live in their own integration-test binary because they flip the
//! process-global metrics flag and install a global trace subscriber; a
//! static mutex serializes the tests against each other.

use std::sync::{Arc, Mutex, OnceLock};

use wsan_core::{NetworkModel, ReuseConservatively, ReuseTrigger, ScheduleError, Scheduler};
use wsan_flow::{priority, Flow, FlowId, FlowSet, Period};
use wsan_net::{NodeId, ReuseGraph, Route};

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn path_graph(count: usize) -> ReuseGraph {
    let edges: Vec<_> = (0..count - 1).map(|i| (n(i), n(i + 1))).collect();
    ReuseGraph::from_edges(count, &edges)
}

fn one_flow(period: u32, deadline: u32, nodes: &[usize]) -> FlowSet {
    let flow = Flow::new(
        FlowId::new(0),
        Route::new(nodes.iter().map(|&i| n(i)).collect()),
        Period::from_slots(period).unwrap(),
        deadline,
    )
    .unwrap();
    priority::deadline_monotonic(vec![flow], vec![])
}

/// `pairs` disjoint single-hop flows `i*stride → i*stride+1` along a path.
fn disjoint_pairs(
    pairs: usize,
    stride: usize,
    period: u32,
    deadline: u32,
) -> (FlowSet, ReuseGraph) {
    let node_count = (pairs - 1) * stride + 2;
    let flows = (0..pairs)
        .map(|i| {
            Flow::new(
                FlowId::new(i),
                Route::new(vec![n(i * stride), n(i * stride + 1)]),
                Period::from_slots(period).unwrap(),
                deadline,
            )
            .unwrap()
        })
        .collect();
    (priority::deadline_monotonic(flows, vec![]), path_graph(node_count))
}

/// A floor fallback whose accepted placement lands in an *empty* cell must
/// count as a no-reuse placement: no channel is actually shared.
///
/// One flow over a 5-link line with a deadline window shorter than its own
/// 10-transmission sequence keeps the flow laxity negative at every rho
/// step, so every placement goes through the rho floor fallback — yet the
/// schedule has a single flow, so no cell ever holds two transmissions.
#[test]
fn floor_fallback_in_empty_cell_counts_as_no_reuse() {
    let _guard = global_lock();
    let flows = one_flow(100, 8, &[0, 1, 2, 3, 4, 5]);
    let model = NetworkModel::from_reuse_graph(&path_graph(6), 1);

    wsan_obs::set_metrics_enabled(true);
    wsan_obs::global_metrics().clear();
    let result = ReuseConservatively::new(2).schedule(&flows, &model);
    let snapshot = wsan_obs::global_metrics().snapshot();
    wsan_obs::set_metrics_enabled(false);

    // 10 transmissions cannot fit in 8 slots, so the set is unschedulable —
    // but the placements accepted before the miss were still counted.
    assert!(matches!(result, Err(ScheduleError::Unschedulable { .. })));
    let fallbacks = snapshot.counters.get("rc.floor_fallbacks").copied().unwrap_or(0);
    let no_reuse = snapshot.counters.get("rc.placements.no_reuse").copied().unwrap_or(0);
    let reuse = snapshot.counters.get("rc.placements.reuse").copied().unwrap_or(0);
    assert!(fallbacks > 0, "scenario must exercise the rho floor fallback");
    assert!(no_reuse > 0, "fallback placements in empty cells are no-reuse placements");
    assert_eq!(
        reuse, 0,
        "a single-flow schedule shares no cell, so the reuse counter must stay zero \
         (got {reuse} with {fallbacks} floor fallbacks)"
    );
}

/// A placement that genuinely shares an occupied cell still counts as reuse.
#[test]
fn shared_cell_placement_still_counts_as_reuse() {
    let _guard = global_lock();
    // 8 single-hop pairs, 1 channel, tight deadline: reuse is required.
    let (flows, reuse_graph) = disjoint_pairs(8, 4, 40, 10);
    let model = NetworkModel::from_reuse_graph(&reuse_graph, 1);

    wsan_obs::set_metrics_enabled(true);
    wsan_obs::global_metrics().clear();
    let schedule = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
    let snapshot = wsan_obs::global_metrics().snapshot();
    wsan_obs::set_metrics_enabled(false);

    assert!(
        schedule.occupied_cells().any(|(_, _, cell)| cell.len() > 1),
        "scenario must force actual channel sharing"
    );
    let reuse = snapshot.counters.get("rc.placements.reuse").copied().unwrap_or(0);
    assert!(reuse > 0, "placements into occupied cells must be counted as reuse");
}

/// Under `DeadlineMissOnly` no laxity is computed, so the shrink trace event
/// must omit the field instead of logging the `i64::MIN` placeholder.
#[test]
fn deadline_miss_only_shrink_trace_has_no_placeholder_laxity() {
    let _guard = global_lock();
    let (flows, reuse_graph) = disjoint_pairs(8, 4, 40, 10);
    let model = NetworkModel::from_reuse_graph(&reuse_graph, 1);

    let sink = wsan_obs::SharedBuffer::new();
    wsan_obs::install(Arc::new(wsan_obs::JsonLinesSubscriber::new(
        wsan_obs::Level::Trace,
        sink.clone(),
    )));
    let result = ReuseConservatively::new(2)
        .with_trigger(ReuseTrigger::DeadlineMissOnly)
        .schedule(&flows, &model);
    wsan_obs::uninstall();
    let _ = result;

    let log = sink.contents();
    assert!(
        log.contains("shrinking reuse distance"),
        "scenario must shrink rho under DeadlineMissOnly"
    );
    assert!(
        !log.contains(&i64::MIN.to_string()),
        "shrink trace must not log the i64::MIN placeholder laxity"
    );
    for line in log.lines().filter(|l| l.contains("shrinking reuse distance")) {
        assert!(!line.contains("laxity"), "DeadlineMissOnly shrink logged a laxity field: {line}");
    }
}
