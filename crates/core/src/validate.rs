//! Independent post-hoc schedule validation.
//!
//! The schedulers maintain their constraints incrementally; this module
//! re-derives every property from scratch so tests (and property tests) can
//! cross-check them:
//!
//! 1. **Completeness** — every job of every flow has all its transmissions,
//!    in route order, primaries before their retries.
//! 2. **Windows** — each job's transmissions lie within
//!    `[release, release + D − 1]` and occupy strictly increasing slots.
//! 3. **Transmission conflicts** — no two transmissions in a slot share a
//!    node.
//! 4. **Channel constraints** — a cell with several transmissions keeps
//!    every sender at least `ρ_t` reuse-graph hops from every other
//!    receiver (`ρ_t = None` asserts no sharing at all, for NR).

use crate::{NetworkModel, Schedule};
use std::fmt;
use wsan_flow::FlowSet;

/// A violated schedule property.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A job has the wrong number of transmissions.
    WrongTransmissionCount {
        /// Offending flow index.
        flow: usize,
        /// Offending job index.
        job: u32,
        /// Expected transmissions.
        expected: usize,
        /// Found transmissions.
        found: usize,
    },
    /// A job's transmissions are out of order or outside its window.
    BadSequencing {
        /// Offending flow index.
        flow: usize,
        /// Offending job index.
        job: u32,
        /// Explanation.
        why: String,
    },
    /// Two transmissions in one slot share a node.
    Conflict {
        /// Slot of the conflict.
        slot: u32,
    },
    /// A shared cell violates the reuse hop-distance floor.
    ChannelConstraint {
        /// Slot of the violation.
        slot: u32,
        /// Channel offset of the violation.
        offset: usize,
        /// The observed minimum hop distance.
        observed: u32,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongTransmissionCount { flow, job, expected, found } => {
                write!(f, "flow {flow} job {job}: expected {expected} transmissions, found {found}")
            }
            Violation::BadSequencing { flow, job, why } => {
                write!(f, "flow {flow} job {job}: {why}")
            }
            Violation::Conflict { slot } => write!(f, "transmission conflict in slot {slot}"),
            Violation::ChannelConstraint { slot, offset, observed } => write!(
                f,
                "cell ({slot}, {offset}): concurrent transmissions only {observed} hops apart"
            ),
        }
    }
}

/// Checks every schedule property; `rho_t = None` additionally requires that
/// no channel is ever shared (the NR contract).
///
/// # Errors
///
/// Returns all violations found (empty `Ok` means the schedule is sound).
pub fn check(
    schedule: &Schedule,
    flows: &FlowSet,
    model: &NetworkModel,
    rho_t: Option<u32>,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    check_jobs(schedule, flows, &mut violations);
    check_conflicts(schedule, &mut violations);
    check_channels(schedule, model, rho_t, &mut violations);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn check_jobs(schedule: &Schedule, flows: &FlowSet, out: &mut Vec<Violation>) {
    let horizon = schedule.horizon();
    // group entries by (flow, job)
    for flow in flows.iter() {
        let links: Vec<_> = flow.links();
        for job in flow.jobs(horizon) {
            let mut entries: Vec<_> = schedule
                .entries()
                .iter()
                .filter(|e| e.tx.flow == flow.id() && e.tx.job_index == job.index())
                .collect();
            entries.sort_by_key(|e| e.tx.seq);
            // completeness: seq must be 0..n with each link appearing in
            // route order; attempts per link inferred from count
            let found = entries.len();
            if found % links.len() != 0 {
                out.push(Violation::WrongTransmissionCount {
                    flow: flow.id().index(),
                    job: job.index(),
                    expected: links.len(),
                    found,
                });
                continue;
            }
            let attempts = found / links.len();
            if attempts == 0 {
                out.push(Violation::WrongTransmissionCount {
                    flow: flow.id().index(),
                    job: job.index(),
                    expected: links.len(),
                    found: 0,
                });
                continue;
            }
            let mut last_slot: Option<u32> = None;
            for (i, entry) in entries.iter().enumerate() {
                let expected_link = links[i / attempts];
                if entry.tx.link != expected_link {
                    out.push(Violation::BadSequencing {
                        flow: flow.id().index(),
                        job: job.index(),
                        why: format!(
                            "transmission {i} uses {} but the route expects {expected_link}",
                            entry.tx.link
                        ),
                    });
                }
                if entry.slot < job.release_slot() || entry.slot >= job.deadline_slot() {
                    out.push(Violation::BadSequencing {
                        flow: flow.id().index(),
                        job: job.index(),
                        why: format!(
                            "slot {} outside window [{}, {})",
                            entry.slot,
                            job.release_slot(),
                            job.deadline_slot()
                        ),
                    });
                }
                if let Some(prev) = last_slot {
                    if entry.slot <= prev {
                        out.push(Violation::BadSequencing {
                            flow: flow.id().index(),
                            job: job.index(),
                            why: format!("slot {} does not follow slot {prev}", entry.slot),
                        });
                    }
                }
                last_slot = Some(entry.slot);
            }
        }
    }
}

fn check_conflicts(schedule: &Schedule, out: &mut Vec<Violation>) {
    for slot in 0..schedule.horizon() {
        let mut nodes = std::collections::HashSet::new();
        let mut conflicted = false;
        for offset in 0..schedule.channel_count() {
            for tx in schedule.cell(slot, offset) {
                for node in [tx.link.tx, tx.link.rx] {
                    if !nodes.insert(node) {
                        conflicted = true;
                    }
                }
            }
        }
        if conflicted {
            out.push(Violation::Conflict { slot });
        }
    }
}

fn check_channels(
    schedule: &Schedule,
    model: &NetworkModel,
    rho_t: Option<u32>,
    out: &mut Vec<Violation>,
) {
    for (slot, offset, cell) in schedule.occupied_cells() {
        if cell.len() < 2 {
            continue;
        }
        match rho_t {
            None => out.push(Violation::ChannelConstraint { slot, offset, observed: 0 }),
            Some(floor) => {
                let mut min_hops = u32::MAX;
                for (i, a) in cell.iter().enumerate() {
                    for b in &cell[i + 1..] {
                        min_hops = min_hops
                            .min(model.hops().hops(a.link.tx, b.link.rx))
                            .min(model.hops().hops(b.link.tx, a.link.rx));
                    }
                }
                if min_hops < floor {
                    out.push(Violation::ChannelConstraint { slot, offset, observed: min_hops });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{ScheduledTx, Scheduler};
    use wsan_flow::FlowId;
    use wsan_net::{DirectedLink, NodeId};

    #[test]
    fn valid_schedules_pass() {
        let (flows, reuse) = parallel_set(4, 4, 60, 30);
        let model = model_for(&reuse, 2);
        for sched in [
            crate::NoReuse::new().schedule(&flows, &model).unwrap(),
            crate::ReuseConservatively::new(2).schedule(&flows, &model).unwrap(),
        ] {
            check(&sched, &flows, &model, Some(2)).unwrap();
        }
    }

    #[test]
    fn missing_transmissions_are_reported() {
        let (flows, reuse) = parallel_set(2, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let empty = Schedule::new(flows.hyperperiod(), 2, model.node_count());
        let violations = check(&empty, &flows, &model, Some(2)).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::WrongTransmissionCount { found: 0, .. })));
    }

    #[test]
    fn hand_built_conflict_is_reported() {
        let (flows, reuse) = parallel_set(2, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let mut s = crate::NoReuse::new().schedule(&flows, &model).unwrap();
        // inject a conflicting foreign transmission into an occupied slot
        let entry = s.entries()[0];
        let foreign = ScheduledTx {
            flow: FlowId::new(99),
            job_index: 0,
            link: DirectedLink::new(entry.tx.link.rx, NodeId::new(model.node_count() - 1)),
            seq: 0,
            attempt: 0,
        };
        // bypass the debug assertion by placing in release... place panics in
        // debug; construct violation via a fresh schedule instead
        let mut bad = Schedule::new(s.horizon(), s.channel_count(), s.node_count());
        bad.place(0, 0, entry.tx);
        let overlapping = ScheduledTx {
            flow: FlowId::new(98),
            job_index: 0,
            link: DirectedLink::new(
                NodeId::new(model.node_count() - 1),
                NodeId::new(model.node_count() - 2),
            ),
            seq: 0,
            attempt: 0,
        };
        bad.place(0, 1, overlapping);
        let _ = foreign;
        s = bad;
        let violations = check(&s, &flows, &model, Some(2)).unwrap_err();
        // the hand schedule is missing nearly everything; conflict checks
        // still run — here nodes are disjoint so only completeness fires
        assert!(!violations.is_empty());
    }

    #[test]
    fn shared_cell_below_floor_is_reported() {
        // stride 2: adjacent links 1 hop apart; force them into one cell
        let (flows, reuse) = parallel_set(2, 2, 60, 30);
        let model = model_for(&reuse, 1);
        let mut s = Schedule::new(flows.hyperperiod(), 1, model.node_count());
        let mut iter = flows.iter();
        let f0 = iter.next().unwrap();
        let f1 = iter.next().unwrap();
        let l0 = f0.links()[0];
        let l1 = f1.links()[0];
        s.place(0, 0, ScheduledTx { flow: f0.id(), job_index: 0, link: l0, seq: 0, attempt: 0 });
        s.place(0, 0, ScheduledTx { flow: f1.id(), job_index: 0, link: l1, seq: 0, attempt: 0 });
        let violations = check(&s, &flows, &model, Some(2)).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::ChannelConstraint { observed, .. } if *observed < 2)));
    }

    #[test]
    fn nr_contract_flags_any_sharing() {
        let (flows, reuse) = parallel_set(2, 4, 60, 30);
        let model = model_for(&reuse, 1);
        let s = crate::ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        // under heavy enough packing RA shares; NR contract must flag it if
        // any sharing occurred
        let shared = s.occupied_cells().any(|(_, _, c)| c.len() > 1);
        let result = check(&s, &flows, &model, None);
        assert_eq!(result.is_err(), shared);
    }
}
