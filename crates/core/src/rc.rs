//! RC — Reuse Conservatively, Algorithm 1 of the paper.

use crate::constraints::find_slot;
use crate::laxity::{flow_laxity, flow_laxity_cached, LaxityCache};
use crate::scheduler::{run_fixed_priority, run_fixed_priority_onto, PlacePolicy, PlaceRequest};
use crate::{NetworkModel, Rho, Schedule, ScheduleError, Scheduler, SchedulerConfig};
use wsan_flow::FlowSet;

/// When Algorithm 1's `ρ` variable resets to `∞`.
///
/// The paper's prose (§V-C: "For each transmission `t_ij`, `ρ` is first
/// initialized to ∞") and its pseudocode (Algorithm 1 resets `ρ` once per
/// *flow*) differ; we default to the more conservative per-transmission
/// reading and expose the per-flow variant for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RhoReset {
    /// Reset `ρ ← ∞` before every transmission (the text's reading;
    /// maximally conservative — reuse is re-justified for every placement).
    #[default]
    PerTransmission,
    /// Reset `ρ ← ∞` once per flow (the pseudocode's reading; once a flow
    /// needed reuse, its remaining transmissions keep the relaxed `ρ`).
    PerFlow,
}

/// How RC decides that a placement is "not good enough" and reuse must be
/// introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReuseTrigger {
    /// The paper's heuristic: relax `ρ` as soon as the *flow laxity*
    /// (Eq. 1) at the found slot goes negative — a predicted future miss.
    #[default]
    NegativeLaxity,
    /// Ablation variant ("RC-lite"): relax `ρ` only when `findSlot` finds
    /// *no* slot before the deadline — a concrete, already-certain miss.
    /// Cheaper, but blind to downstream congestion; the ablation bench
    /// quantifies how much schedulability the laxity heuristic buys.
    DeadlineMissOnly,
}

/// **Reuse Conservatively (RC)** — the paper's contribution (Algorithm 1).
///
/// For each transmission, RC first tries to place it *without* channel
/// reuse (`ρ = ∞`). It computes the flow laxity (Eq. 1) at the found slot;
/// if the laxity is non-negative the placement stands and no reuse is
/// introduced. Only when the laxity goes negative does RC enable reuse —
/// starting from the network's maximum useful hop distance (the reuse-graph
/// diameter `λ_R`) and decrementing toward the floor `ρ_t` until the laxity
/// recovers or the floor is hit. If the loop exhausts, the last found slot
/// is used as long as it makes the deadline; otherwise the flow set is
/// unschedulable.
///
/// Compared to [`ReuseAggressively`](crate::ReuseAggressively), RC yields
/// (a) fewer shared channels and (b) larger hop distances when channels are
/// shared — the two levers that protect reliability (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseConservatively {
    rho_t: u32,
    reset: RhoReset,
    trigger: ReuseTrigger,
}

impl ReuseConservatively {
    /// Creates the RC scheduler with minimum reuse hop distance `rho_t`
    /// (the paper evaluates `ρ_t = 2`), resetting `ρ` per transmission.
    ///
    /// # Panics
    ///
    /// Panics if `rho_t == 0`.
    pub fn new(rho_t: u32) -> Self {
        assert!(rho_t >= 1, "minimum reuse hop distance must be at least 1");
        ReuseConservatively { rho_t, reset: RhoReset::default(), trigger: ReuseTrigger::default() }
    }

    /// Selects when `ρ` resets to `∞` (see [`RhoReset`]).
    pub fn with_reset(mut self, reset: RhoReset) -> Self {
        self.reset = reset;
        self
    }

    /// Selects what triggers the introduction of reuse (see
    /// [`ReuseTrigger`]). The default is the paper's laxity heuristic.
    pub fn with_trigger(mut self, trigger: ReuseTrigger) -> Self {
        self.trigger = trigger;
        self
    }

    /// The configured reuse trigger.
    pub fn trigger(&self) -> ReuseTrigger {
        self.trigger
    }

    /// The minimum reuse hop distance `ρ_t`.
    pub fn rho_t(&self) -> u32 {
        self.rho_t
    }

    /// The configured reset policy.
    pub fn reset(&self) -> RhoReset {
        self.reset
    }
}

/// Instrument handles for RC's reuse decisions. Built once per schedule
/// run, only when global metrics are on.
struct RcMetrics {
    placements_no_reuse: wsan_obs::Counter,
    placements_reuse: wsan_obs::Counter,
    rho_shrinks: wsan_obs::Counter,
    floor_fallbacks: wsan_obs::Counter,
    laxity_at_shrink: wsan_obs::Histogram,
    laxity_cache_hits: wsan_obs::Counter,
    laxity_cache_rebuilds: wsan_obs::Counter,
}

impl RcMetrics {
    fn new() -> Self {
        let reg = wsan_obs::global_metrics();
        RcMetrics {
            placements_no_reuse: reg.counter("rc.placements.no_reuse"),
            placements_reuse: reg.counter("rc.placements.reuse"),
            rho_shrinks: reg.counter("rc.rho_shrinks"),
            floor_fallbacks: reg.counter("rc.floor_fallbacks"),
            // laxity in slots at the moment RC shrinks ρ; always negative
            // under the paper's trigger, so buckets skew below zero
            laxity_at_shrink: reg
                .histogram("rc.laxity_at_shrink", &[-64.0, -16.0, -4.0, -1.0, 0.0, 4.0]),
            laxity_cache_hits: reg.counter("rc.laxity_cache.hits"),
            laxity_cache_rebuilds: reg.counter("rc.laxity_cache.rebuilds"),
        }
    }
}

/// Horizon width (in 64-slot busy-row words) from which RC answers Eq. 1
/// through the [`LaxityCache`] rank rows instead of popcounting the busy
/// rows directly. Below this, a conflict count touches so few words that
/// the cache's per-query pair lookup costs more than the scan it saves
/// (measured: at testbed hyperperiods of ≤ 400 slots the direct scan is
/// ~40% faster end-to-end); past it, each plain count walks a long row
/// while a warm rank row answers in O(1).
const RANK_CACHE_MIN_WORDS: usize = 32;

struct RcPolicy {
    rho_t: u32,
    reset: RhoReset,
    trigger: ReuseTrigger,
    rho: Rho,
    metrics: Option<RcMetrics>,
    /// Rank cache for Eq. 1's conflict counts on wide horizons
    /// (`RANK_CACHE_MIN_WORDS`); lives for the whole run — rows invalidate
    /// themselves against the schedule's generation counters as
    /// transmissions land.
    laxity: LaxityCache,
}

impl PlacePolicy for RcPolicy {
    fn begin_flow(&mut self) {
        self.rho = Rho::NoReuse;
    }

    fn begin_transmission(&mut self) {
        if self.reset == RhoReset::PerTransmission {
            self.rho = Rho::NoReuse;
        }
    }

    fn place(
        &mut self,
        schedule: &Schedule,
        model: &NetworkModel,
        req: &PlaceRequest<'_>,
    ) -> Option<(u32, usize)> {
        // Algorithm 1's inner while-loop. Relaxing ρ only ever enlarges the
        // per-slot feasible set, so the earliest feasible slot can only
        // move left as ρ shrinks: each rescan is capped at the slot the
        // stricter pass already proved feasible (the offset there is still
        // recomputed — the relaxed constraint may rank offsets differently).
        let mut found: Option<(u32, usize)> = None;
        // Laxity of the slot evaluated last in THIS call. The schedule
        // cannot change mid-call, and Eq. 1 does not depend on ρ or the
        // offset, so a pass that lands on the same slot again reuses the
        // value instead of recounting conflicts.
        let mut last_laxity: Option<(u32, i64)> = None;
        loop {
            let latest = found.map_or(req.deadline_slot, |(slot, _)| slot);
            let candidate = find_slot(schedule, model, req.link, req.earliest, latest, self.rho);
            // laxity that forces the next ρ shrink, when the trigger saw one
            let mut shrink_laxity: Option<i64> = None;
            if let Some((slot, offset)) = candidate {
                found = Some((slot, offset));
                let good_enough = match self.trigger {
                    ReuseTrigger::NegativeLaxity => {
                        let laxity = match last_laxity {
                            Some((s, l)) if s == slot => l,
                            _ => {
                                let l = if schedule.slot_word_count() >= RANK_CACHE_MIN_WORDS {
                                    flow_laxity_cached(
                                        schedule,
                                        &mut self.laxity,
                                        slot,
                                        req.deadline_slot,
                                        req.remaining,
                                    )
                                } else {
                                    flow_laxity(schedule, slot, req.deadline_slot, req.remaining)
                                };
                                last_laxity = Some((slot, l));
                                l
                            }
                        };
                        shrink_laxity = Some(laxity);
                        laxity >= 0
                    }
                    // a found slot is always accepted in the ablation mode
                    ReuseTrigger::DeadlineMissOnly => true,
                };
                if good_enough {
                    if let Some(m) = &self.metrics {
                        // Occupancy of the accepted cell, not the rho state,
                        // decides whether a channel is actually shared: a
                        // relaxed rho can still land in an empty cell.
                        if schedule.cell(slot, offset).is_empty() {
                            m.placements_no_reuse.inc();
                        } else {
                            m.placements_reuse.inc();
                        }
                    }
                    return found;
                }
            }
            match self.rho.step_down(model.lambda_r(), self.rho_t) {
                Some(next) => {
                    if let Some(m) = &self.metrics {
                        m.rho_shrinks.inc();
                        if let Some(laxity) = shrink_laxity {
                            m.laxity_at_shrink.observe(laxity as f64);
                        }
                    }
                    if wsan_obs::enabled(wsan_obs::Level::Trace) {
                        // under DeadlineMissOnly no laxity was computed, so
                        // the field is omitted rather than logging a
                        // placeholder value
                        let mut fields = vec![
                            wsan_obs::kv("rho", wsan_obs::FieldValue::display(next)),
                            wsan_obs::kv("link", wsan_obs::FieldValue::display(req.link)),
                        ];
                        if let Some(laxity) = shrink_laxity {
                            fields.insert(0, wsan_obs::kv("laxity", laxity));
                        }
                        wsan_obs::event(
                            wsan_obs::Level::Trace,
                            "wsan_core::rc",
                            "shrinking reuse distance",
                            &fields,
                        );
                    }
                    self.rho = next;
                }
                // ρ fell below ρ_t: schedule at the last found slot if it
                // makes the deadline (findSlot already bounds by d_i),
                // otherwise report the miss.
                None => {
                    if let Some(m) = &self.metrics {
                        m.floor_fallbacks.inc();
                        // The fallback placement only shares a channel when
                        // the accepted cell already has an occupant; an empty
                        // cell is an ordinary no-reuse placement even though
                        // rho was relaxed on the way here.
                        if let Some((slot, offset)) = found {
                            if schedule.cell(slot, offset).is_empty() {
                                m.placements_no_reuse.inc();
                            } else {
                                m.placements_reuse.inc();
                            }
                        }
                    }
                    return found;
                }
            }
        }
    }

    fn finish(&mut self) {
        if let Some(m) = &self.metrics {
            m.laxity_cache_hits.add(self.laxity.hits());
            m.laxity_cache_rebuilds.add(self.laxity.rebuilds());
        }
    }
}

impl Scheduler for ReuseConservatively {
    fn name(&self) -> &'static str {
        "RC"
    }

    fn schedule_with(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority(flows, model, config, &mut self.policy())
    }

    fn schedule_onto(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
        base: Schedule,
        skip: usize,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority_onto(flows, model, config, &mut self.policy(), base, skip)
    }
}

impl ReuseConservatively {
    fn policy(&self) -> RcPolicy {
        RcPolicy {
            rho_t: self.rho_t,
            reset: self.reset,
            trigger: self.trigger,
            rho: Rho::NoReuse,
            metrics: wsan_obs::metrics_enabled().then(RcMetrics::new),
            laxity: LaxityCache::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{NoReuse, ReuseAggressively};

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rho_floor_panics() {
        let _ = ReuseConservatively::new(0);
    }

    #[test]
    fn rc_does_not_reuse_when_workload_is_light() {
        // 3 distant links, 2 channels, roomy deadlines: laxity stays
        // non-negative without reuse, so RC must not share any channel.
        let (flows, reuse) = parallel_set(3, 4, 100, 90);
        let model = model_for(&reuse, 2);
        let schedule = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
        for (_, _, cell) in schedule.occupied_cells() {
            assert_eq!(cell.len(), 1, "RC introduced reuse although laxity was non-negative");
        }
    }

    #[test]
    fn rc_reuses_when_needed_and_schedules_what_nr_cannot() {
        let (flows, reuse) = parallel_set(8, 4, 40, 10);
        let model = model_for(&reuse, 1);
        assert!(NoReuse::new().schedule(&flows, &model).is_err());
        let schedule = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
        // some cell must now be shared
        assert!(schedule.occupied_cells().any(|(_, _, cell)| cell.len() > 1));
        crate::validate::check(&schedule, &flows, &model, Some(2)).unwrap();
    }

    #[test]
    fn rc_shares_less_than_ra() {
        // Moderate load: RA reuses to grab earlier slots, RC only where
        // laxity forces it.
        let (flows, reuse) = parallel_set(6, 4, 60, 18);
        let model = model_for(&reuse, 2);
        let ra = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let rc = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
        let shared =
            |s: &crate::Schedule| s.occupied_cells().filter(|(_, _, c)| c.len() > 1).count();
        assert!(shared(&rc) <= shared(&ra), "RC shared {} cells, RA {}", shared(&rc), shared(&ra));
    }

    #[test]
    fn rc_per_flow_reset_matches_pseudocode() {
        let (flows, reuse) = parallel_set(8, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let rc = ReuseConservatively::new(2).with_reset(RhoReset::PerFlow);
        assert_eq!(rc.reset(), RhoReset::PerFlow);
        let schedule = rc.schedule(&flows, &model).unwrap();
        crate::validate::check(&schedule, &flows, &model, Some(2)).unwrap();
    }

    #[test]
    fn rc_reports_unschedulable_when_even_reuse_cannot_help() {
        // Links adjacent on the reuse graph (stride 2): reuse is barred at
        // rho=2, and 1 channel with tight deadlines cannot fit the load.
        let (flows, reuse) = parallel_set(6, 2, 40, 3);
        let model = model_for(&reuse, 1);
        let err = ReuseConservatively::new(2).schedule(&flows, &model).unwrap_err();
        assert!(matches!(err, ScheduleError::Unschedulable { .. }));
    }

    #[test]
    fn rc_on_wide_horizons_matches_reference_through_the_rank_cache() {
        // period 4096 → 64 busy-row words, past RANK_CACHE_MIN_WORDS: the
        // laxity path runs through the rank cache and must still produce
        // the exact reference schedule.
        let (flows, reuse) = parallel_set(8, 4, 4096, 10);
        let model = model_for(&reuse, 1);
        let rc = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
        let rc_ref =
            crate::reference::ReuseConservativelyRef::new(2).schedule(&flows, &model).unwrap();
        assert_eq!(rc.entries(), rc_ref.entries());
        assert!(!rc.entries().is_empty());
    }

    #[test]
    fn rc_equals_nr_exactly_when_no_reuse_is_needed() {
        let (flows, reuse) = parallel_set(3, 4, 100, 90);
        let model = model_for(&reuse, 3);
        let nr = NoReuse::new().schedule(&flows, &model).unwrap();
        let rc = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
        assert_eq!(nr.entries(), rc.entries(), "with slack everywhere RC must reduce to NR");
    }
}
