//! Flow laxity — Equation 1 of the paper.
//!
//! Given a transmission `t_ij` tentatively placed in slot `s`, the *flow
//! laxity* estimates whether the remaining transmissions `T_post` of the
//! same job can still make the deadline slot `d_i`:
//!
//! ```text
//! laxity = (d_i − s) − Σ_{t ∈ T_post} q_t − |T_post|
//! ```
//!
//! * `d_i − s` — slots left in `[s+1, d_i]`,
//! * `q_t` — slots in `[s+1, d_i]` already holding a scheduled transmission
//!   that conflicts with `t` (shares one of its nodes) and therefore cannot
//!   serve `t`,
//! * `|T_post|` — the minimum slots the remaining transmissions need.
//!
//! A negative laxity predicts a deadline miss; RC responds by introducing
//! channel reuse. The estimate errs conservative in one way (overlapping
//! conflict slots are counted once per affected transmission, per the
//! paper's formula) and optimistic in another (remaining transmissions may
//! conflict with each other), which is exactly the heuristic trade-off the
//! paper accepts.
//!
//! # Hot-path form
//!
//! RC evaluates Eq. 1 once per `findSlot` candidate, per `ρ` shrink — each
//! evaluation popcounting the same pair of busy rows again. [`LaxityCache`]
//! amortizes that: per queried node pair it keeps a prefix-sum (*rank*)
//! array over the union of the two busy rows, so one `q_t` query is two
//! rank lookups plus two boundary-word popcounts, O(1) instead of
//! O(horizon/64). Rows rebuild lazily — [`Schedule::place`] advances a
//! per-node generation counter, and a row is recomputed only when one of
//! its two nodes has actually changed since the row was built.

use crate::Schedule;
use std::collections::HashMap;
use wsan_net::{DirectedLink, NodeId};

/// Computes the laxity of a flow when one of its transmissions is placed at
/// `slot`, with `remaining` the transmissions still to schedule after it and
/// `deadline_slot` the last usable slot `d_i`.
///
/// Returns a signed value; `>= 0` means the deadline is still believed
/// reachable.
pub fn flow_laxity(
    schedule: &Schedule,
    slot: u32,
    deadline_slot: u32,
    remaining: &[DirectedLink],
) -> i64 {
    let slots_left = i64::from(deadline_slot) - i64::from(slot);
    let mut conflict_total: i64 = 0;
    if slot < deadline_slot {
        for t in remaining {
            conflict_total +=
                i64::from(schedule.conflict_slot_count(t.tx, t.rx, slot + 1, deadline_slot));
        }
    }
    slots_left - conflict_total - remaining.len() as i64
}

/// [`flow_laxity`] evaluated through a [`LaxityCache`] — identical result,
/// O(1) per remaining transmission once the pair rows are warm.
pub fn flow_laxity_cached(
    schedule: &Schedule,
    cache: &mut LaxityCache,
    slot: u32,
    deadline_slot: u32,
    remaining: &[DirectedLink],
) -> i64 {
    let slots_left = i64::from(deadline_slot) - i64::from(slot);
    let mut conflict_total: i64 = 0;
    if slot < deadline_slot {
        for t in remaining {
            conflict_total +=
                i64::from(cache.conflict_slot_count(schedule, t.tx, t.rx, slot + 1, deadline_slot));
        }
    }
    slots_left - conflict_total - remaining.len() as i64
}

/// A lazily rebuilt rank row over the union of one node pair's busy rows.
struct PairRow {
    /// Generations of the two nodes when the row was built.
    gen_a: u32,
    gen_b: u32,
    /// `rank[w]` = number of busy slots in words `[0, w)` of `row_a | row_b`.
    /// Length `slot_word_count() + 1`.
    rank: Vec<u32>,
}

/// Rank (prefix-sum) cache answering [`Schedule::conflict_slot_count`]
/// queries in O(1) — the `q_t` inner loop of Eq. 1.
///
/// A cache is tied to the one growing [`Schedule`] it is queried with: rows
/// are validated against that schedule's per-node generation counters, so
/// reusing a cache across different schedule instances yields garbage.
/// Schedulers create one cache per run.
#[derive(Default)]
pub struct LaxityCache {
    rows: HashMap<(usize, usize), PairRow>,
    hits: u64,
    rebuilds: u64,
}

impl LaxityCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queries answered from a warm row since the cache was created.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Row (re)builds performed — each costs one O(horizon/64) pass.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// [`Schedule::conflict_slot_count`] through the cache: the number of
    /// slots in `[from, to]` where `a` or `b` is busy.
    pub fn conflict_slot_count(
        &mut self,
        schedule: &Schedule,
        a: NodeId,
        b: NodeId,
        from: u32,
        to: u32,
    ) -> u32 {
        if from > to {
            return 0;
        }
        let to = to.min(schedule.horizon() - 1);
        if from > to {
            return 0;
        }
        let key =
            if a.index() <= b.index() { (a.index(), b.index()) } else { (b.index(), a.index()) };
        let (gen_a, gen_b) = (schedule.node_generation(a), schedule.node_generation(b));
        // normalize the generation order alongside the key
        let (gen_a, gen_b) = if a.index() <= b.index() { (gen_a, gen_b) } else { (gen_b, gen_a) };
        let row = self.rows.entry(key).or_insert_with(|| PairRow {
            gen_a: gen_a.wrapping_add(1), // force the initial build
            gen_b,
            rank: Vec::new(),
        });
        if row.gen_a != gen_a || row.gen_b != gen_b {
            self.rebuilds += 1;
            let row_a = schedule.busy_row(a);
            let row_b = schedule.busy_row(b);
            let words = schedule.slot_word_count();
            row.rank.clear();
            row.rank.reserve(words + 1);
            row.rank.push(0);
            let mut total = 0u32;
            for w in 0..words {
                total += (row_a[w] | row_b[w]).count_ones();
                row.rank.push(total);
            }
            row.gen_a = gen_a;
            row.gen_b = gen_b;
        } else {
            self.hits += 1;
        }
        let row_a = schedule.busy_row(a);
        let row_b = schedule.busy_row(b);
        // count of busy slots below slot index `x` (exclusive)
        let count_below = |x: u64| -> u32 {
            let w = (x / 64) as usize;
            let b = x % 64;
            let mut c = row.rank[w];
            if b != 0 {
                c += ((row_a[w] | row_b[w]) & ((1u64 << b) - 1)).count_ones();
            }
            c
        };
        count_below(u64::from(to) + 1) - count_below(u64::from(from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduledTx;
    use wsan_flow::FlowId;
    use wsan_net::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn link(a: usize, b: usize) -> DirectedLink {
        DirectedLink::new(n(a), n(b))
    }

    fn stx(a: usize, b: usize) -> ScheduledTx {
        ScheduledTx { flow: FlowId::new(9), job_index: 0, link: link(a, b), seq: 0, attempt: 0 }
    }

    #[test]
    fn empty_schedule_laxity_is_window_minus_demand() {
        let s = Schedule::new(100, 2, 10);
        // placed at slot 10, deadline 20, 4 remaining transmissions:
        // laxity = (20-10) - 0 - 4 = 6
        let remaining = [link(1, 2), link(2, 3), link(3, 4), link(4, 5)];
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 6);
    }

    #[test]
    fn zero_remaining_transmissions() {
        let s = Schedule::new(100, 2, 10);
        assert_eq!(flow_laxity(&s, 10, 20, &[]), 10);
        // last transmission placed exactly at the deadline slot: laxity 0
        assert_eq!(flow_laxity(&s, 20, 20, &[]), 0);
    }

    #[test]
    fn negative_when_window_too_small() {
        let s = Schedule::new(100, 2, 10);
        let remaining = [link(1, 2), link(2, 3)];
        // 1 slot left, 2 needed → -1
        assert_eq!(flow_laxity(&s, 19, 20, &remaining), -1);
    }

    #[test]
    fn negative_when_placed_after_deadline() {
        let s = Schedule::new(100, 2, 10);
        assert!(flow_laxity(&s, 30, 20, &[link(1, 2)]) < 0);
    }

    #[test]
    fn conflicting_busy_slots_reduce_laxity() {
        let mut s = Schedule::new(100, 2, 10);
        // occupy slots 12 and 15 with transmissions touching node 2
        s.place(12, 0, stx(2, 7));
        s.place(15, 0, stx(8, 2));
        let remaining = [link(1, 2), link(2, 3)];
        // window [11, 20]: q for each remaining t (both touch node 2) = 2
        // laxity = (20-10) - (2+2) - 2 = 4
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 4);
    }

    #[test]
    fn conflicts_outside_window_do_not_count() {
        let mut s = Schedule::new(100, 2, 10);
        s.place(5, 0, stx(2, 7)); // before the window
        s.place(25, 0, stx(2, 8)); // after the deadline
        let remaining = [link(1, 2)];
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 20 - 10 - 1);
    }

    #[test]
    fn overlap_counts_once_per_transmission() {
        let mut s = Schedule::new(100, 2, 10);
        // one busy slot touching nodes of *both* remaining transmissions
        s.place(15, 0, stx(2, 3));
        let remaining = [link(1, 2), link(3, 4)];
        // q = 1 for each → Σ = 2 (the paper's formula double-counts shared
        // conflict slots; we follow it)
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 10 - 2 - 2);
    }

    #[test]
    fn busy_slots_not_conflicting_are_ignored() {
        let mut s = Schedule::new(100, 2, 10);
        s.place(15, 0, stx(7, 8)); // disjoint from remaining links
        let remaining = [link(1, 2)];
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 9);
    }

    #[test]
    fn cached_counts_match_plain_counts() {
        let mut s = Schedule::new(300, 2, 10);
        for slot in [0, 10, 63, 64, 65, 127, 128, 200, 299] {
            s.place(slot, 0, stx(1, 2));
        }
        s.place(20, 0, stx(2, 3));
        let mut cache = LaxityCache::new();
        for (a, b) in [(1, 2), (1, 9), (2, 3), (5, 6), (3, 1)] {
            for (from, to) in
                [(0, 299), (0, 0), (63, 65), (64, 127), (10, 200), (250, 5000), (50, 10)]
            {
                assert_eq!(
                    cache.conflict_slot_count(&s, n(a), n(b), from, to),
                    s.conflict_slot_count(n(a), n(b), from, to),
                    "pair ({a},{b}) range [{from},{to}]"
                );
            }
        }
        assert!(cache.hits() > 0);
    }

    #[test]
    fn cache_invalidates_when_a_row_changes() {
        let mut s = Schedule::new(100, 2, 10);
        s.place(10, 0, stx(1, 2));
        let mut cache = LaxityCache::new();
        assert_eq!(cache.conflict_slot_count(&s, n(1), n(9), 0, 99), 1);
        let rebuilds = cache.rebuilds();
        // untouched pair rows stay warm across unrelated placements
        s.place(11, 0, stx(4, 5));
        assert_eq!(cache.conflict_slot_count(&s, n(1), n(9), 0, 99), 1);
        assert_eq!(cache.rebuilds(), rebuilds);
        // a placement touching node 1 invalidates the (1, 9) row
        s.place(12, 0, stx(1, 3));
        assert_eq!(cache.conflict_slot_count(&s, n(1), n(9), 0, 99), 2);
        assert_eq!(cache.rebuilds(), rebuilds + 1);
    }

    #[test]
    fn cached_laxity_matches_plain_laxity() {
        let mut s = Schedule::new(200, 2, 10);
        for slot in [12, 15, 70, 130] {
            s.place(slot, 0, stx(2, 7));
        }
        let mut cache = LaxityCache::new();
        let remaining = [link(1, 2), link(2, 3), link(7, 8)];
        for (slot, deadline) in [(10, 20), (0, 199), (150, 140), (199, 199), (60, 135)] {
            assert_eq!(
                flow_laxity_cached(&s, &mut cache, slot, deadline, &remaining),
                flow_laxity(&s, slot, deadline, &remaining),
                "slot {slot} deadline {deadline}"
            );
        }
    }
}
