//! Flow laxity — Equation 1 of the paper.
//!
//! Given a transmission `t_ij` tentatively placed in slot `s`, the *flow
//! laxity* estimates whether the remaining transmissions `T_post` of the
//! same job can still make the deadline slot `d_i`:
//!
//! ```text
//! laxity = (d_i − s) − Σ_{t ∈ T_post} q_t − |T_post|
//! ```
//!
//! * `d_i − s` — slots left in `[s+1, d_i]`,
//! * `q_t` — slots in `[s+1, d_i]` already holding a scheduled transmission
//!   that conflicts with `t` (shares one of its nodes) and therefore cannot
//!   serve `t`,
//! * `|T_post|` — the minimum slots the remaining transmissions need.
//!
//! A negative laxity predicts a deadline miss; RC responds by introducing
//! channel reuse. The estimate errs conservative in one way (overlapping
//! conflict slots are counted once per affected transmission, per the
//! paper's formula) and optimistic in another (remaining transmissions may
//! conflict with each other), which is exactly the heuristic trade-off the
//! paper accepts.

use crate::Schedule;
use wsan_net::DirectedLink;

/// Computes the laxity of a flow when one of its transmissions is placed at
/// `slot`, with `remaining` the transmissions still to schedule after it and
/// `deadline_slot` the last usable slot `d_i`.
///
/// Returns a signed value; `>= 0` means the deadline is still believed
/// reachable.
pub fn flow_laxity(
    schedule: &Schedule,
    slot: u32,
    deadline_slot: u32,
    remaining: &[DirectedLink],
) -> i64 {
    let slots_left = i64::from(deadline_slot) - i64::from(slot);
    let mut conflict_total: i64 = 0;
    if slot < deadline_slot {
        for t in remaining {
            conflict_total +=
                i64::from(schedule.conflict_slot_count(t.tx, t.rx, slot + 1, deadline_slot));
        }
    }
    slots_left - conflict_total - remaining.len() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduledTx;
    use wsan_flow::FlowId;
    use wsan_net::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn link(a: usize, b: usize) -> DirectedLink {
        DirectedLink::new(n(a), n(b))
    }

    fn stx(a: usize, b: usize) -> ScheduledTx {
        ScheduledTx { flow: FlowId::new(9), job_index: 0, link: link(a, b), seq: 0, attempt: 0 }
    }

    #[test]
    fn empty_schedule_laxity_is_window_minus_demand() {
        let s = Schedule::new(100, 2, 10);
        // placed at slot 10, deadline 20, 4 remaining transmissions:
        // laxity = (20-10) - 0 - 4 = 6
        let remaining = [link(1, 2), link(2, 3), link(3, 4), link(4, 5)];
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 6);
    }

    #[test]
    fn zero_remaining_transmissions() {
        let s = Schedule::new(100, 2, 10);
        assert_eq!(flow_laxity(&s, 10, 20, &[]), 10);
        // last transmission placed exactly at the deadline slot: laxity 0
        assert_eq!(flow_laxity(&s, 20, 20, &[]), 0);
    }

    #[test]
    fn negative_when_window_too_small() {
        let s = Schedule::new(100, 2, 10);
        let remaining = [link(1, 2), link(2, 3)];
        // 1 slot left, 2 needed → -1
        assert_eq!(flow_laxity(&s, 19, 20, &remaining), -1);
    }

    #[test]
    fn negative_when_placed_after_deadline() {
        let s = Schedule::new(100, 2, 10);
        assert!(flow_laxity(&s, 30, 20, &[link(1, 2)]) < 0);
    }

    #[test]
    fn conflicting_busy_slots_reduce_laxity() {
        let mut s = Schedule::new(100, 2, 10);
        // occupy slots 12 and 15 with transmissions touching node 2
        s.place(12, 0, stx(2, 7));
        s.place(15, 0, stx(8, 2));
        let remaining = [link(1, 2), link(2, 3)];
        // window [11, 20]: q for each remaining t (both touch node 2) = 2
        // laxity = (20-10) - (2+2) - 2 = 4
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 4);
    }

    #[test]
    fn conflicts_outside_window_do_not_count() {
        let mut s = Schedule::new(100, 2, 10);
        s.place(5, 0, stx(2, 7)); // before the window
        s.place(25, 0, stx(2, 8)); // after the deadline
        let remaining = [link(1, 2)];
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 20 - 10 - 1);
    }

    #[test]
    fn overlap_counts_once_per_transmission() {
        let mut s = Schedule::new(100, 2, 10);
        // one busy slot touching nodes of *both* remaining transmissions
        s.place(15, 0, stx(2, 3));
        let remaining = [link(1, 2), link(3, 4)];
        // q = 1 for each → Σ = 2 (the paper's formula double-counts shared
        // conflict slots; we follow it)
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 10 - 2 - 2);
    }

    #[test]
    fn busy_slots_not_conflicting_are_ignored() {
        let mut s = Schedule::new(100, 2, 10);
        s.place(15, 0, stx(7, 8)); // disjoint from remaining links
        let remaining = [link(1, 2)];
        assert_eq!(flow_laxity(&s, 10, 20, &remaining), 9);
    }
}
