//! The network-side inputs a scheduler needs, precomputed once.

use wsan_net::{ChannelSet, HopMatrix, ReuseGraph, Topology};

/// Precomputed network model handed to schedulers: the channel reuse graph's
/// all-pairs hop distances, its diameter `λ_R`, and the channel count `|M|`.
///
/// Building this once per (topology, channel set) amortizes the BFS work the
/// channel constraints query on every candidate slot.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    hops: HopMatrix,
    lambda_r: u32,
    channels: usize,
    node_count: usize,
}

impl NetworkModel {
    /// Derives the model from a topology and the channels in use.
    pub fn new(topology: &Topology, channels: &ChannelSet) -> Self {
        let reuse = topology.reuse_graph(channels);
        Self::from_reuse_graph(&reuse, channels.len())
    }

    /// Derives the model from an already-built reuse graph.
    pub fn from_reuse_graph(reuse: &ReuseGraph, channels: usize) -> Self {
        let hops = reuse.hop_matrix();
        let lambda_r = hops.diameter();
        NetworkModel { hops, lambda_r, channels, node_count: reuse.node_count() }
    }

    /// Builds the model from an externally computed hop matrix — e.g.
    /// whole-plant reuse distances restricted to one shard's nodes, where
    /// building the matrix from an induced subgraph would *overstate*
    /// distances (paths through other shards are invisible) and make reuse
    /// decisions unsound.
    pub fn from_hops(hops: HopMatrix, node_count: usize, channels: usize) -> Self {
        let lambda_r = hops.diameter();
        NetworkModel { hops, lambda_r, channels, node_count }
    }

    /// All-pairs hop distances on the channel reuse graph.
    pub fn hops(&self) -> &HopMatrix {
        &self.hops
    }

    /// The reuse-graph diameter `λ_R` — the largest hop distance Algorithm 1
    /// starts from when it first introduces reuse.
    pub fn lambda_r(&self) -> u32 {
        self.lambda_r
    }

    /// Number of channels `|M|` (= number of channel offsets).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Returns a copy of the model with a different channel count (the
    /// evaluation sweeps `|M|` over one topology).
    pub fn with_channels(&self, channels: usize) -> Self {
        NetworkModel { channels, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn model_from_path_graph() {
        let reuse = ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(1), n(2)), (n(2), n(3))]);
        let m = NetworkModel::from_reuse_graph(&reuse, 3);
        assert_eq!(m.lambda_r(), 3);
        assert_eq!(m.channels(), 3);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.hops().hops(n(0), n(2)), 2);
    }

    #[test]
    fn with_channels_overrides_only_channel_count() {
        let reuse = ReuseGraph::from_edges(3, &[(n(0), n(1)), (n(1), n(2))]);
        let m = NetworkModel::from_reuse_graph(&reuse, 4);
        let m2 = m.with_channels(8);
        assert_eq!(m2.channels(), 8);
        assert_eq!(m2.lambda_r(), m.lambda_r());
    }
}
