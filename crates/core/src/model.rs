//! The network-side inputs a scheduler needs, precomputed once.

use wsan_net::{CappedHops, ChannelSet, HopMatrix, ReuseGraph, Topology};

/// Precomputed network model handed to schedulers: the channel reuse graph's
/// all-pairs hop distances, its diameter `λ_R`, and the channel count `|M|`.
///
/// Building this once per (topology, channel set) amortizes the BFS work the
/// channel constraints query on every candidate slot. Distances are stored
/// as a [`CappedHops`] table built in exact mode (`cap ≥ λ_R + 1`), so every
/// query the schedulers, validator, and metrics layer make answers exactly
/// as the dense matrix would, at a quarter of the memory (DESIGN.md §16).
#[derive(Debug, Clone)]
pub struct NetworkModel {
    hops: CappedHops,
    lambda_r: u32,
    channels: usize,
    node_count: usize,
}

impl NetworkModel {
    /// Derives the model from a topology and the channels in use.
    pub fn new(topology: &Topology, channels: &ChannelSet) -> Self {
        let reuse = topology.reuse_graph(channels);
        Self::from_reuse_graph(&reuse, channels.len())
    }

    /// Derives the model from an already-built reuse graph.
    pub fn from_reuse_graph(reuse: &ReuseGraph, channels: usize) -> Self {
        Self::from_reuse_graph_jobs(reuse, channels, 1)
    }

    /// [`from_reuse_graph`](Self::from_reuse_graph) with the all-pairs BFS
    /// fanned out over up to `jobs` workers (`0` = all cores). The result
    /// is byte-identical for any `jobs`.
    pub fn from_reuse_graph_jobs(reuse: &ReuseGraph, channels: usize, jobs: usize) -> Self {
        let hops = reuse.exact_hops(jobs);
        let lambda_r = hops.diameter();
        NetworkModel { hops, lambda_r, channels, node_count: reuse.node_count() }
    }

    /// Builds the model from an externally computed hop matrix — e.g.
    /// whole-plant reuse distances restricted to one shard's nodes, where
    /// building the matrix from an induced subgraph would *overstate*
    /// distances (paths through other shards are invisible) and make reuse
    /// decisions unsound.
    pub fn from_hops(hops: HopMatrix, node_count: usize, channels: usize) -> Self {
        Self::from_capped(CappedHops::from_dense(&hops), node_count, channels)
    }

    /// [`from_hops`](Self::from_hops) for distances already in capped form.
    /// `λ_R` is taken from [`CappedHops::diameter`], so the table should be
    /// exact (unsaturated, or saturated only beyond every finite distance
    /// of interest) for the model to match the dense path.
    pub fn from_capped(hops: CappedHops, node_count: usize, channels: usize) -> Self {
        let lambda_r = hops.diameter();
        NetworkModel { hops, lambda_r, channels, node_count }
    }

    /// All-pairs hop distances on the channel reuse graph, saturated at the
    /// table's cap (exact for every distance the schedulers query).
    pub fn hops(&self) -> &CappedHops {
        &self.hops
    }

    /// The reuse-graph diameter `λ_R` — the largest hop distance Algorithm 1
    /// starts from when it first introduces reuse.
    pub fn lambda_r(&self) -> u32 {
        self.lambda_r
    }

    /// Number of channels `|M|` (= number of channel offsets).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Returns a copy of the model with a different channel count (the
    /// evaluation sweeps `|M|` over one topology).
    pub fn with_channels(&self, channels: usize) -> Self {
        NetworkModel { channels, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn model_from_path_graph() {
        let reuse = ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(1), n(2)), (n(2), n(3))]);
        let m = NetworkModel::from_reuse_graph(&reuse, 3);
        assert_eq!(m.lambda_r(), 3);
        assert_eq!(m.channels(), 3);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.hops().hops(n(0), n(2)), 2);
    }

    #[test]
    fn with_channels_overrides_only_channel_count() {
        let reuse = ReuseGraph::from_edges(3, &[(n(0), n(1)), (n(1), n(2))]);
        let m = NetworkModel::from_reuse_graph(&reuse, 4);
        let m2 = m.with_channels(8);
        assert_eq!(m2.channels(), 8);
        assert_eq!(m2.lambda_r(), m.lambda_r());
    }

    #[test]
    fn parallel_model_build_matches_sequential() {
        let edges: Vec<_> = (0..99).map(|i| (n(i), n(i + 1))).collect();
        let reuse = ReuseGraph::from_edges(100, &edges);
        let seq = NetworkModel::from_reuse_graph_jobs(&reuse, 4, 1);
        let par = NetworkModel::from_reuse_graph_jobs(&reuse, 4, 4);
        assert_eq!(seq.lambda_r(), par.lambda_r());
        assert_eq!(seq.hops(), par.hops());
    }

    #[test]
    fn dense_shim_matches_capped_queries() {
        let reuse = ReuseGraph::from_edges(4, &[(n(0), n(1)), (n(1), n(2)), (n(2), n(3))]);
        let dense = NetworkModel::from_hops(reuse.hop_matrix(), 4, 3);
        let capped = NetworkModel::from_reuse_graph(&reuse, 3);
        assert_eq!(dense.lambda_r(), capped.lambda_r());
        for a in 0..4 {
            for b in 0..4 {
                for rho in 0..5 {
                    assert_eq!(
                        dense.hops().at_least(n(a), n(b), rho),
                        capped.hops().at_least(n(a), n(b), rho)
                    );
                }
            }
        }
    }
}
