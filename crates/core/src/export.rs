//! Slotframe export — the wire format a network manager distributes.
//!
//! A WirelessHART network manager pushes the computed schedule to the field
//! devices. This module renders a [`Schedule`] into a line-per-transmission
//! CSV slotframe (stable, diff-friendly, trivially parseable on a mote-class
//! device) and parses it back, so schedules can be stored, inspected, and
//! shipped between tools. JSON round-trips are available via the
//! `serde::Serialize` impl on [`Schedule`] itself; the CSV form is the
//! compact operational one.

use crate::{Schedule, ScheduledTx};
use std::fmt::Write as _;
use wsan_flow::FlowId;
use wsan_net::{DirectedLink, NodeId};

/// Header line of the CSV slotframe.
pub const CSV_HEADER: &str = "slot,offset,flow,job,seq,attempt,tx,rx";

/// Errors produced while parsing a CSV slotframe.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The header line is missing or different.
    BadHeader,
    /// A data line has the wrong number of fields or a bad number.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
    },
    /// The preamble (dimensions) line is malformed.
    BadPreamble,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing or malformed header line"),
            ParseError::BadLine { line } => write!(f, "malformed slotframe entry on line {line}"),
            ParseError::BadPreamble => write!(f, "missing or malformed dimensions line"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Renders the schedule as a CSV slotframe.
///
/// The first line records the grid dimensions
/// (`#horizon,channels,nodes`), the second is [`CSV_HEADER`], and each
/// further line is one transmission. Entries are sorted by
/// (slot, offset, flow, seq) so the output is canonical.
pub fn to_csv(schedule: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "#{},{},{}",
        schedule.horizon(),
        schedule.channel_count(),
        schedule.node_count()
    );
    out.push_str(CSV_HEADER);
    out.push('\n');
    let mut entries: Vec<_> = schedule.entries().to_vec();
    entries.sort_by_key(|e| (e.slot, e.offset, e.tx.flow, e.tx.seq));
    for e in entries {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            e.slot,
            e.offset,
            e.tx.flow.index(),
            e.tx.job_index,
            e.tx.seq,
            e.tx.attempt,
            e.tx.link.tx.index(),
            e.tx.link.rx.index()
        );
    }
    out
}

/// Parses a CSV slotframe produced by [`to_csv`] back into a schedule.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line.
///
/// # Panics
///
/// Panics if the entries violate the schedule's structural invariants
/// (out-of-range slots, transmission conflicts in debug builds) — a
/// slotframe from an untrusted source should be validated with
/// [`crate::validate::check`] afterwards regardless.
pub fn from_csv(input: &str) -> Result<Schedule, ParseError> {
    let mut lines = input.lines().enumerate();
    let (_, preamble) = lines.next().ok_or(ParseError::BadPreamble)?;
    let preamble = preamble.strip_prefix('#').ok_or(ParseError::BadPreamble)?;
    let dims: Vec<u64> = preamble
        .split(',')
        .map(|p| p.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| ParseError::BadPreamble)?;
    let [horizon, channels, nodes] = dims[..] else {
        return Err(ParseError::BadPreamble);
    };
    let (_, header) = lines.next().ok_or(ParseError::BadHeader)?;
    if header.trim() != CSV_HEADER {
        return Err(ParseError::BadHeader);
    }
    let mut schedule = Schedule::new(horizon as u32, channels as usize, nodes as usize);
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<u64> = line
            .split(',')
            .map(|p| p.trim().parse())
            .collect::<Result<_, _>>()
            .map_err(|_| ParseError::BadLine { line: i + 1 })?;
        let [slot, offset, flow, job, seq, attempt, tx, rx] = fields[..] else {
            return Err(ParseError::BadLine { line: i + 1 });
        };
        schedule.place(
            slot as u32,
            offset as usize,
            ScheduledTx {
                flow: FlowId::new(flow as usize),
                job_index: job as u32,
                link: DirectedLink::new(NodeId::new(tx as usize), NodeId::new(rx as usize)),
                seq: seq as u16,
                attempt: attempt as u8,
            },
        );
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{ReuseAggressively, Scheduler};

    fn sample_schedule() -> Schedule {
        let (flows, reuse) = parallel_set(4, 4, 60, 30);
        let model = model_for(&reuse, 2);
        ReuseAggressively::new(2).schedule(&flows, &model).unwrap()
    }

    #[test]
    fn csv_round_trip_preserves_the_grid() {
        let original = sample_schedule();
        let csv = to_csv(&original);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed.horizon(), original.horizon());
        assert_eq!(parsed.channel_count(), original.channel_count());
        assert_eq!(parsed.entry_count(), original.entry_count());
        // same cells, entry order may differ (canonical sort)
        for slot in 0..original.horizon() {
            for offset in 0..original.channel_count() {
                let mut a = original.cell(slot, offset).to_vec();
                let mut b = parsed.cell(slot, offset).to_vec();
                a.sort_by_key(|t| (t.flow, t.seq));
                b.sort_by_key(|t| (t.flow, t.seq));
                assert_eq!(a, b, "cell ({slot}, {offset}) differs");
            }
        }
    }

    #[test]
    fn output_is_canonical() {
        let s = sample_schedule();
        assert_eq!(to_csv(&s), to_csv(&from_csv(&to_csv(&s)).unwrap()));
    }

    #[test]
    fn header_and_preamble_are_enforced() {
        assert_eq!(from_csv(""), Err(ParseError::BadPreamble));
        assert_eq!(from_csv("#10,2,4"), Err(ParseError::BadHeader));
        assert_eq!(from_csv("#10,2,4\nwrong,header"), Err(ParseError::BadHeader));
        assert_eq!(from_csv("10,2,4\nslot"), Err(ParseError::BadPreamble));
    }

    #[test]
    fn malformed_lines_are_located() {
        let input = format!("#10,2,4\n{CSV_HEADER}\n0,0,0,0,0,0,0,1\nbad,line\n");
        assert_eq!(from_csv(&input), Err(ParseError::BadLine { line: 4 }));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let input = format!("#10,2,4\n{CSV_HEADER}\n\n0,0,0,0,0,0,0,1\n\n");
        let s = from_csv(&input).unwrap();
        assert_eq!(s.entry_count(), 1);
    }
}
