//! Long-lived online gateway state: incremental scheduling under flow churn.
//!
//! The paper schedules a static flow set once. A real WirelessHART gateway
//! admits, evicts, and re-rates flows continuously while the plant keeps
//! running. This module keeps a [`GatewayState`] — the admitted flow set in
//! Deadline-Monotonic order plus its current schedule — and applies churn as
//! *delta* operations:
//!
//! * [`GatewayState::add_flow`] / [`GatewayState::remove_flow`] /
//!   [`GatewayState::update_rate`] find the highest priority position the
//!   operation disturbs and re-place only the flows from there down
//!   ([`Scheduler::schedule_onto`]), keeping every higher-priority flow's
//!   cells untouched;
//! * [`GatewayState::retire_links`] delegates to the
//!   [`recovery`](crate::recovery) repair→reschedule ladder, evicting the
//!   flows routed over the dead link and rescheduling the survivors.
//!
//! **Why the delta is exact.** The fixed-priority engine processes flows one
//! at a time into a growing schedule; entries are grouped contiguously by
//! flow, and no placement policy carries state across a flow boundary (NR
//! and RA are stateless, RC resets `ρ` per flow and its laxity cache is a
//! proven-exact accelerator). So scheduling flows `k..n` onto the prefix
//! schedule of flows `0..k-1` is byte-identical to rescheduling everything —
//! full recompute is the proven-equal fallback, taken whenever the
//! hyperperiod changes, and `tests/gateway_churn.rs` pins the equivalence
//! over randomized churn sequences.
//!
//! **Feasibility ladder.** When the delta run reports the set unschedulable,
//! flows are shed in *inverse Deadline-Monotonic order* (longest relative
//! deadline first), exactly like [`recovery::recover`]: the least-urgent
//! flows are sacrificed, and if the newcomer is itself the least urgent it
//! is the one rejected — the operation then fails without touching state.
//! Every operation is atomic: on any error the previous schedule keeps
//! serving.
//!
//! In debug builds — and in release when [`GatewayConfig::paranoid`] is set
//! — every accepted delta result is re-checked by the independent
//! [`validate`](crate::validate) checker; a violation surfaces as
//! [`ScheduleError::Inconsistent`] instead of a corrupt schedule being
//! served.
//!
//! The process-facing JSONL service (request parsing, write-ahead journal,
//! deadline budgets, load shedding) lives in [`journal`] and [`service`].

pub mod journal;
pub mod service;

use crate::{validate, NetworkModel, Schedule, ScheduleError, Scheduler, SchedulerConfig};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use wsan_flow::{Flow, FlowId, FlowSet, Period};
use wsan_net::{DirectedLink, NodeId, Route};

/// Tunables of a [`GatewayState`].
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayConfig {
    /// Reuse hop-distance floor used when validating delta results (and for
    /// link-retirement recovery). `None` enforces the NR contract — no cell
    /// is ever shared.
    pub rho_t: Option<u32>,
    /// Re-check every delta result with [`validate::check`] in release
    /// builds too (debug builds always check).
    pub paranoid: bool,
    /// Hard cap on admitted flows.
    pub max_flows: usize,
    /// Hard cap on the hyperperiod (slots) an admission may create.
    pub max_hyperperiod: u32,
    /// Bound on scheduler invocations per operation while shedding.
    pub max_reschedules: u32,
    /// Access points recorded on the flow set (informational).
    pub access_points: Vec<NodeId>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            rho_t: Some(2),
            paranoid: false,
            max_flows: 4096,
            max_hyperperiod: 1 << 20,
            max_reschedules: 64,
            access_points: Vec::new(),
        }
    }
}

/// What a client asks the gateway to serve: a route plus timing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// The wireless route (single segment).
    pub route: Route,
    /// Release period.
    pub period: Period,
    /// Relative deadline in slots, `1 ≤ D ≤ P`.
    pub deadline_slots: u32,
}

/// Which scheduling path an operation took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaPath {
    /// The schedule did not need to change.
    Unchanged,
    /// Only flows from priority position `from` down were re-placed.
    Suffix {
        /// First priority position that was re-placed.
        from: usize,
    },
    /// Full recompute (hyperperiod changed, or the change was at the top).
    Full,
    /// The [`recovery`](crate::recovery) ladder ran (link retirement).
    Recovery,
}

impl fmt::Display for DeltaPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaPath::Unchanged => write!(f, "unchanged"),
            DeltaPath::Suffix { from } => write!(f, "suffix:{from}"),
            DeltaPath::Full => write!(f, "full"),
            DeltaPath::Recovery => write!(f, "recovery"),
        }
    }
}

/// Outcome of a successful delta operation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaReport {
    /// The scheduling path taken.
    pub path: DeltaPath,
    /// Names of flows shed to restore feasibility, in shedding order.
    pub evicted: Vec<String>,
    /// Scheduler invocations performed.
    pub reschedules: u32,
    /// Admitted flows after the operation.
    pub flows: usize,
    /// Schedule horizon after the operation.
    pub horizon: u32,
    /// Scheduled transmissions after the operation.
    pub entries: usize,
}

/// Errors of gateway delta operations. Every error leaves the previous
/// state (flow set and schedule) fully intact.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GatewayError {
    /// A flow with this name is already admitted.
    DuplicateFlow {
        /// The requested name.
        name: String,
    },
    /// No admitted flow has this name.
    UnknownFlow {
        /// The requested name.
        name: String,
    },
    /// The spec is invalid (deadline/period relation, unknown node, …).
    InvalidSpec {
        /// What is wrong with the request.
        reason: String,
    },
    /// The route crosses a link that has been retired.
    RetiredLink {
        /// The retired link on the route.
        link: DirectedLink,
    },
    /// A configured capacity cap would be exceeded.
    CapacityExceeded {
        /// Which cap, and the attempted value.
        reason: String,
    },
    /// The flow could not be scheduled, even after shedding every admitted
    /// flow of lower priority. The state is unchanged.
    Infeasible {
        /// The flow that could not be served.
        name: String,
    },
    /// The underlying scheduler failed (including a failed
    /// [`validate`](crate::validate) re-check, surfaced as
    /// [`ScheduleError::Inconsistent`]).
    Schedule(ScheduleError),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::DuplicateFlow { name } => {
                write!(f, "flow {name:?} is already admitted")
            }
            GatewayError::UnknownFlow { name } => write!(f, "no admitted flow named {name:?}"),
            GatewayError::InvalidSpec { reason } => write!(f, "invalid flow spec: {reason}"),
            GatewayError::RetiredLink { link } => {
                write!(f, "route crosses retired link {}->{}", link.tx, link.rx)
            }
            GatewayError::CapacityExceeded { reason } => write!(f, "capacity cap: {reason}"),
            GatewayError::Infeasible { name } => {
                write!(f, "flow {name:?} cannot be scheduled at its priority")
            }
            GatewayError::Schedule(e) => write!(f, "scheduler error: {e}"),
        }
    }
}

impl Error for GatewayError {}

impl From<ScheduleError> for GatewayError {
    fn from(e: ScheduleError) -> Self {
        GatewayError::Schedule(e)
    }
}

/// One admitted flow: its client-chosen name, an admission sequence number
/// (deterministic priority tie-break), and the spec it was admitted with.
#[derive(Debug, Clone, PartialEq)]
struct Admitted {
    name: String,
    seq: u64,
    spec: FlowSpec,
}

impl Admitted {
    /// Deadline-Monotonic sort key, matching
    /// [`wsan_flow::priority::deadline_monotonic`] with the admission
    /// sequence as the final (always unique) tie-break, so churn never
    /// reorders previously admitted equal-key flows.
    fn dm_key(&self) -> (u32, u32, usize, u64) {
        (
            self.spec.deadline_slots,
            self.spec.period.slots(),
            self.spec.route.source().index(),
            self.seq,
        )
    }
}

/// Long-lived gateway state: the admitted flow set (DM order) and its
/// current schedule, mutated by delta operations. See the module docs.
pub struct GatewayState {
    model: NetworkModel,
    scheduler: Box<dyn Scheduler + Send + Sync>,
    sched_config: SchedulerConfig,
    config: GatewayConfig,
    admitted: Vec<Admitted>,
    schedule: Schedule,
    retired: HashSet<DirectedLink>,
    next_seq: u64,
    /// Displaced schedule kept as a clone target: `prefix_schedule` copies
    /// into it with `clone_from`, reusing its cell allocations instead of
    /// allocating a fresh grid on every delta operation.
    scratch: Option<Schedule>,
}

impl fmt::Debug for GatewayState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GatewayState")
            .field("scheduler", &self.scheduler.name())
            .field("flows", &self.admitted.len())
            .field("horizon", &self.schedule.horizon())
            .field("entries", &self.schedule.entry_count())
            .field("retired", &self.retired.len())
            .finish()
    }
}

impl GatewayState {
    /// Creates an empty gateway over `model`, scheduling with `scheduler`.
    pub fn new(
        model: NetworkModel,
        scheduler: Box<dyn Scheduler + Send + Sync>,
        config: GatewayConfig,
    ) -> Self {
        let schedule = Schedule::new(1, model.channels(), model.node_count());
        GatewayState {
            model,
            scheduler,
            sched_config: SchedulerConfig::default(),
            config,
            admitted: Vec::new(),
            schedule,
            retired: HashSet::new(),
            next_seq: 0,
            scratch: None,
        }
    }

    /// The current schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The network model the gateway schedules against.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Number of admitted flows.
    pub fn len(&self) -> usize {
        self.admitted.len()
    }

    /// Whether no flow is admitted.
    pub fn is_empty(&self) -> bool {
        self.admitted.is_empty()
    }

    /// Admitted flow names in priority order (highest first).
    pub fn flow_names(&self) -> Vec<&str> {
        self.admitted.iter().map(|a| a.name.as_str()).collect()
    }

    /// The spec the named flow is currently admitted with.
    pub fn spec(&self, name: &str) -> Option<&FlowSpec> {
        self.admitted.iter().find(|a| a.name == name).map(|a| &a.spec)
    }

    /// The longest relative deadline among admitted flows (the first flow
    /// the shedding ladder would sacrifice), if any.
    pub fn max_deadline(&self) -> Option<u32> {
        self.admitted.last().map(|a| a.spec.deadline_slots)
    }

    /// Links retired so far.
    pub fn retired(&self) -> &HashSet<DirectedLink> {
        &self.retired
    }

    /// The admitted flows as a prioritized [`FlowSet`] — recomputing a
    /// schedule for this set from scratch yields exactly
    /// [`GatewayState::schedule`] (the churn proptests pin this).
    pub fn flow_set(&self) -> FlowSet {
        flow_set_of(&self.admitted, &self.config.access_points)
    }

    /// Admits a flow. See the module docs for the delta path and the
    /// inverse-DM shedding ladder.
    ///
    /// # Errors
    ///
    /// [`GatewayError::DuplicateFlow`], [`GatewayError::InvalidSpec`],
    /// [`GatewayError::RetiredLink`], [`GatewayError::CapacityExceeded`],
    /// [`GatewayError::Infeasible`] — all leaving the state unchanged.
    pub fn add_flow(&mut self, name: &str, spec: FlowSpec) -> Result<DeltaReport, GatewayError> {
        if self.admitted.iter().any(|a| a.name == name) {
            return Err(GatewayError::DuplicateFlow { name: name.to_string() });
        }
        if self.admitted.len() >= self.config.max_flows {
            return Err(GatewayError::CapacityExceeded {
                reason: format!("flow cap {} reached", self.config.max_flows),
            });
        }
        self.check_spec(&spec)?;
        let entry = Admitted { name: name.to_string(), seq: self.next_seq, spec };
        let key = entry.dm_key();
        let pos = self.admitted.partition_point(|a| a.dm_key() <= key);
        let mut candidate = self.admitted.clone();
        candidate.insert(pos, entry);
        let report = self.commit(candidate, pos, Some(name))?;
        self.next_seq += 1;
        Ok(report)
    }

    /// Evicts the named flow and re-places everything that was below it.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownFlow`] when the name is not admitted.
    pub fn remove_flow(&mut self, name: &str) -> Result<DeltaReport, GatewayError> {
        let pos = self
            .admitted
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| GatewayError::UnknownFlow { name: name.to_string() })?;
        let mut candidate = self.admitted.clone();
        candidate.remove(pos);
        self.commit(candidate, pos, None)
    }

    /// Changes the named flow's period and deadline in place (route kept),
    /// re-placing from the higher of its old and new priority positions.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownFlow`], [`GatewayError::InvalidSpec`],
    /// [`GatewayError::CapacityExceeded`], [`GatewayError::Infeasible`].
    pub fn update_rate(
        &mut self,
        name: &str,
        period: Period,
        deadline_slots: u32,
    ) -> Result<DeltaReport, GatewayError> {
        let pos = self
            .admitted
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| GatewayError::UnknownFlow { name: name.to_string() })?;
        let mut entry = self.admitted[pos].clone();
        entry.spec.period = period;
        entry.spec.deadline_slots = deadline_slots;
        self.check_spec(&entry.spec)?;
        let mut candidate = self.admitted.clone();
        candidate.remove(pos);
        let key = entry.dm_key();
        let new_pos = candidate.partition_point(|a| a.dm_key() <= key);
        candidate.insert(new_pos, entry);
        self.commit(candidate, pos.min(new_pos), Some(name))
    }

    /// Retires `links` (dead radio links): future admissions may not route
    /// over them, flows currently crossing one are evicted, and the
    /// survivors are recovered through the [`recovery::recover`]
    /// repair→reschedule ladder.
    ///
    /// # Errors
    ///
    /// [`GatewayError::Schedule`] if recovery rejects the state as
    /// inconsistent (the previous schedule keeps serving).
    pub fn retire_links(&mut self, links: &[DirectedLink]) -> Result<DeltaReport, GatewayError> {
        for l in links {
            self.retired.insert(*l);
        }
        let set = self.flow_set();
        let crossing = set.iter().any(|f| f.links().iter().any(|l| links.contains(l)));
        if !crossing {
            return Ok(self.report(DeltaPath::Unchanged, Vec::new(), 0));
        }
        let policy = crate::recovery::RecoveryPolicy {
            rho_t: self.config.rho_t.unwrap_or(1),
            max_reschedules: self.config.max_reschedules,
        };
        let outcome = crate::recovery::recover(
            &self.schedule,
            &self.model,
            &set,
            self.scheduler.as_ref(),
            &policy,
            &[],
            links,
        )?;
        let evicted: Vec<String> =
            outcome.shed.iter().map(|id| self.admitted[id.index()].name.clone()).collect();
        let candidate: Vec<Admitted> =
            outcome.survivors.iter().map(|id| self.admitted[id.index()].clone()).collect();
        // Normalize the empty state: recovery keeps the old horizon for an
        // empty schedule, a fresh gateway uses horizon 1.
        let schedule = if candidate.is_empty() {
            Schedule::new(1, self.model.channels(), self.model.node_count())
        } else {
            outcome.schedule
        };
        self.check_result(&schedule, &outcome.flows)?;
        self.admitted = candidate;
        self.schedule = schedule;
        Ok(self.report(DeltaPath::Recovery, evicted, outcome.reschedules))
    }

    /// Retires a single link. See [`GatewayState::retire_links`].
    ///
    /// # Errors
    ///
    /// See [`GatewayState::retire_links`].
    pub fn retire_link(&mut self, link: DirectedLink) -> Result<DeltaReport, GatewayError> {
        self.retire_links(&[link])
    }

    fn check_spec(&self, spec: &FlowSpec) -> Result<(), GatewayError> {
        if spec.deadline_slots == 0 || spec.deadline_slots > spec.period.slots() {
            return Err(GatewayError::InvalidSpec {
                reason: format!(
                    "deadline must satisfy 1 <= D <= P, got D={} P={}",
                    spec.deadline_slots,
                    spec.period.slots()
                ),
            });
        }
        for node in spec.route.nodes() {
            if node.index() >= self.model.node_count() {
                return Err(GatewayError::InvalidSpec {
                    reason: format!(
                        "route node {} out of range (network has {} nodes)",
                        node,
                        self.model.node_count()
                    ),
                });
            }
        }
        if let Some(link) = spec.route.links().find(|l| self.retired.contains(l)) {
            return Err(GatewayError::RetiredLink { link });
        }
        Ok(())
    }

    /// Rebuilds the schedule prefix holding exactly the placements of flows
    /// `0..from`. Entries are grouped contiguously by flow in placement
    /// order, so replaying the filtered entries reproduces the prefix run.
    fn prefix_schedule(&mut self, horizon: u32, from: usize) -> Schedule {
        if from > 0 {
            debug_assert_eq!(horizon, self.schedule.horizon());
            // Appending below every scheduled flow (the common admission
            // case): the prefix is the whole current schedule. Copy it into
            // the recycled scratch buffer — `clone_from` reuses the cell
            // allocations, so steady-state churn pays a memcpy, not ~one
            // allocation per occupied cell.
            if from >= self.admitted.len() {
                return match self.scratch.take() {
                    Some(mut buffer) => {
                        buffer.clone_from(&self.schedule);
                        buffer
                    }
                    None => self.schedule.clone(),
                };
            }
        }
        let mut prefix = Schedule::new(horizon, self.model.channels(), self.model.node_count());
        if from > 0 {
            for e in self.schedule.entries() {
                if e.tx.flow.index() < from {
                    prefix.place(e.slot, e.offset, e.tx);
                }
            }
        }
        prefix
    }

    /// Schedules `candidate` (unchanged above `changed_from`), shedding in
    /// inverse-DM order on infeasibility, and commits on success. Atomic:
    /// any error returns with `self` untouched. `adding` names the flow the
    /// current operation is trying to serve — if the ladder would shed it,
    /// the operation is instead rejected as [`GatewayError::Infeasible`].
    fn commit(
        &mut self,
        mut candidate: Vec<Admitted>,
        changed_from: usize,
        adding: Option<&str>,
    ) -> Result<DeltaReport, GatewayError> {
        let old_horizon = self.schedule.horizon();
        let mut evicted: Vec<String> = Vec::new();
        let mut reschedules = 0u32;
        loop {
            let set = flow_set_of(&candidate, &self.config.access_points);
            let horizon = set.hyperperiod();
            if horizon > self.config.max_hyperperiod {
                return Err(GatewayError::CapacityExceeded {
                    reason: format!(
                        "hyperperiod {horizon} exceeds cap {}",
                        self.config.max_hyperperiod
                    ),
                });
            }
            if reschedules >= self.config.max_reschedules {
                return Err(GatewayError::Infeasible {
                    name: adding.unwrap_or("<reschedule budget exhausted>").to_string(),
                });
            }
            let from = if horizon == old_horizon { changed_from.min(candidate.len()) } else { 0 };
            let from = self.effective_from(from, horizon);
            let base = self.prefix_schedule(horizon, from);
            reschedules += 1;
            match self.scheduler.schedule_onto(&set, &self.model, &self.sched_config, base, from) {
                Ok(schedule) => {
                    self.check_result(&schedule, &set)?;
                    self.admitted = candidate;
                    // the displaced schedule becomes the next clone target
                    self.scratch = Some(std::mem::replace(&mut self.schedule, schedule));
                    let path = if from == 0 { DeltaPath::Full } else { DeltaPath::Suffix { from } };
                    return Ok(self.report(path, evicted, reschedules));
                }
                Err(ScheduleError::Unschedulable { .. }) => {
                    let Some(last) = candidate.pop() else {
                        return Err(GatewayError::Schedule(ScheduleError::Inconsistent {
                            reason: "empty flow set reported unschedulable".to_string(),
                        }));
                    };
                    if adding == Some(last.name.as_str()) {
                        return Err(GatewayError::Infeasible { name: last.name });
                    }
                    evicted.push(last.name);
                }
                Err(e) => return Err(GatewayError::Schedule(e)),
            }
        }
    }

    /// Mid-order admissions re-place every flow at or below the insertion
    /// point. When that suffix's earliest current placement (the
    /// *affected-slot watermark*) sits in the first quarter of the
    /// timeline, the change invalidates the schedule almost from slot 0:
    /// the suffix run redoes nearly all the placement work of a full run
    /// *and* pays the prefix snapshot + replay on top. Detect the case
    /// with one pass over the committed entries (far cheaper than either
    /// schedule run) and fall through to a full run (`from = 0`) early
    /// instead, skipping the snapshot. Shallower watermarks stay on the
    /// suffix path — there the skipped prefix flows outweigh the replay
    /// cost. Tail appends (`from >= admitted.len()`) never pay this check
    /// beyond two comparisons.
    fn effective_from(&self, from: usize, horizon: u32) -> usize {
        if from == 0 || from >= self.admitted.len() {
            return from;
        }
        let watermark = self
            .schedule
            .entries()
            .iter()
            .filter(|e| e.tx.flow.index() >= from)
            .map(|e| e.slot)
            .min();
        match watermark {
            Some(watermark) if u64::from(watermark) * 4 < u64::from(horizon) => 0,
            _ => from,
        }
    }

    /// Satellite guard: re-check a delta result with the independent
    /// validator in debug builds, or always under `paranoid`. A violation
    /// becomes [`ScheduleError::Inconsistent`] and the result is discarded.
    fn check_result(&self, schedule: &Schedule, set: &FlowSet) -> Result<(), GatewayError> {
        if !(cfg!(debug_assertions) || self.config.paranoid) {
            return Ok(());
        }
        validate::check(schedule, set, &self.model, self.config.rho_t).map_err(|violations| {
            let first = violations.first().map(ToString::to_string).unwrap_or_default();
            GatewayError::Schedule(ScheduleError::Inconsistent {
                reason: format!(
                    "delta result failed validation with {} violation(s), first: {first}",
                    violations.len()
                ),
            })
        })
    }

    fn report(&self, path: DeltaPath, evicted: Vec<String>, reschedules: u32) -> DeltaReport {
        DeltaReport {
            path,
            evicted,
            reschedules,
            flows: self.admitted.len(),
            horizon: self.schedule.horizon(),
            entries: self.schedule.entry_count(),
        }
    }
}

fn flow_set_of(admitted: &[Admitted], access_points: &[NodeId]) -> FlowSet {
    let flows: Vec<Flow> = admitted
        .iter()
        .enumerate()
        .map(|(i, a)| {
            Flow::new(FlowId::new(i), a.spec.route.clone(), a.spec.period, a.spec.deadline_slots)
                .expect("specs are validated at admission")
        })
        .collect();
    FlowSet::new(flows, access_points.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::path_graph;
    use crate::{NoReuse, ReuseConservatively};

    fn model(nodes: usize, channels: usize) -> NetworkModel {
        NetworkModel::from_reuse_graph(&path_graph(nodes), channels)
    }

    fn spec(nodes: &[usize], period: u32, deadline: u32) -> FlowSpec {
        FlowSpec {
            route: Route::new(nodes.iter().map(|&i| NodeId::new(i)).collect()),
            period: Period::from_slots(period).unwrap(),
            deadline_slots: deadline,
        }
    }

    fn rc_gateway(nodes: usize, channels: usize) -> GatewayState {
        GatewayState::new(
            model(nodes, channels),
            Box::new(ReuseConservatively::new(2)),
            GatewayConfig::default(),
        )
    }

    fn assert_oracle(gw: &GatewayState) {
        let recomputed = ReuseConservatively::new(2).schedule(&gw.flow_set(), gw.model()).unwrap();
        assert_eq!(gw.schedule(), &recomputed, "delta state must equal recompute-from-scratch");
    }

    #[test]
    fn empty_gateway_serves_the_empty_schedule() {
        let gw = rc_gateway(6, 2);
        assert!(gw.is_empty());
        assert_eq!(gw.schedule().horizon(), 1);
        assert_eq!(gw.schedule().entry_count(), 0);
    }

    #[test]
    fn add_then_remove_round_trips() {
        let mut gw = rc_gateway(8, 2);
        let r = gw.add_flow("a", spec(&[0, 1, 2], 100, 80)).unwrap();
        assert_eq!(r.path, DeltaPath::Full); // horizon 1 -> 100
        assert_eq!(r.flows, 1);
        assert_oracle(&gw);
        let r = gw.add_flow("b", spec(&[4, 5], 100, 90)).unwrap();
        assert_eq!(r.path, DeltaPath::Suffix { from: 1 });
        assert_oracle(&gw);
        gw.remove_flow("a").unwrap();
        assert_eq!(gw.flow_names(), vec!["b"]);
        assert_oracle(&gw);
        gw.remove_flow("b").unwrap();
        assert!(gw.is_empty());
        assert_eq!(gw.schedule().horizon(), 1);
    }

    #[test]
    fn admission_at_the_top_recomputes_below() {
        let mut gw = rc_gateway(8, 2);
        gw.add_flow("low", spec(&[0, 1, 2], 100, 90)).unwrap();
        let r = gw.add_flow("high", spec(&[4, 5], 100, 20)).unwrap();
        // shorter deadline -> higher priority -> position 0 -> full run
        assert_eq!(r.path, DeltaPath::Full);
        assert_eq!(gw.flow_names(), vec!["high", "low"]);
        assert_oracle(&gw);
    }

    #[test]
    fn deep_mid_order_admission_falls_through_to_full() {
        let mut gw = rc_gateway(12, 2);
        gw.add_flow("h1", spec(&[0, 1], 100, 20)).unwrap();
        gw.add_flow("h2", spec(&[2, 3], 100, 30)).unwrap();
        gw.add_flow("l1", spec(&[4, 5], 100, 80)).unwrap();
        gw.add_flow("l2", spec(&[6, 7], 100, 90)).unwrap();
        // the newcomer sorts between h2 and l1, so l1/l2 must re-place —
        // and their current placements sit at the very start of the
        // timeline (deep prefix invalidation). The watermark check must
        // route this admission to a full run instead of paying prefix
        // snapshot + replay for a suffix that redoes almost everything.
        let r = gw.add_flow("mid", spec(&[8, 9], 100, 60)).unwrap();
        assert_eq!(gw.flow_names(), vec!["h1", "h2", "mid", "l1", "l2"]);
        assert_eq!(r.path, DeltaPath::Full);
        assert_oracle(&gw);
    }

    #[test]
    fn duplicate_and_unknown_names_are_typed_errors() {
        let mut gw = rc_gateway(8, 2);
        gw.add_flow("a", spec(&[0, 1], 100, 50)).unwrap();
        assert!(matches!(
            gw.add_flow("a", spec(&[2, 3], 100, 50)),
            Err(GatewayError::DuplicateFlow { .. })
        ));
        assert!(matches!(gw.remove_flow("zz"), Err(GatewayError::UnknownFlow { .. })));
        assert!(matches!(
            gw.update_rate("zz", Period::from_slots(100).unwrap(), 50),
            Err(GatewayError::UnknownFlow { .. })
        ));
    }

    #[test]
    fn invalid_specs_are_rejected_without_state_change() {
        let mut gw = rc_gateway(4, 2);
        gw.add_flow("a", spec(&[0, 1], 100, 50)).unwrap();
        let before = gw.schedule().clone();
        assert!(matches!(
            gw.add_flow("bad-deadline", spec(&[2, 3], 100, 0)),
            Err(GatewayError::InvalidSpec { .. })
        ));
        assert!(matches!(
            gw.add_flow("bad-node", spec(&[2, 9], 100, 50)),
            Err(GatewayError::InvalidSpec { .. })
        ));
        assert_eq!(gw.schedule(), &before);
        assert_eq!(gw.len(), 1);
    }

    #[test]
    fn update_rate_moves_priority_and_stays_oracle_equal() {
        let mut gw = rc_gateway(10, 2);
        gw.add_flow("a", spec(&[0, 1, 2], 100, 40)).unwrap();
        gw.add_flow("b", spec(&[4, 5, 6], 100, 80)).unwrap();
        assert_eq!(gw.flow_names(), vec!["a", "b"]);
        // b becomes the most urgent
        gw.update_rate("b", Period::from_slots(100).unwrap(), 10).unwrap();
        assert_eq!(gw.flow_names(), vec!["b", "a"]);
        assert_oracle(&gw);
        // a changes period: hyperperiod moves, full recompute
        let r = gw.update_rate("a", Period::from_slots(200).unwrap(), 40).unwrap();
        assert_eq!(r.path, DeltaPath::Full);
        assert_eq!(gw.schedule().horizon(), 200);
        assert_oracle(&gw);
    }

    #[test]
    fn infeasible_admission_is_rejected_atomically() {
        // 1 channel, no reuse, retry slots on: a period-4 flow over a
        // 2-hop route (2 links × 2 attempts = 4 slots per job) fills every
        // slot, so a laxer newcomer has nowhere to go and is the first
        // (and only) flow the ladder sheds — i.e. itself.
        let mut gw = GatewayState::new(
            model(3, 1),
            Box::new(NoReuse::new()),
            GatewayConfig { rho_t: None, ..GatewayConfig::default() },
        );
        gw.add_flow("a", spec(&[0, 1, 2], 4, 4)).unwrap();
        let before = gw.schedule().clone();
        let err = gw.add_flow("b", spec(&[0, 1, 2], 8, 8)).unwrap_err();
        assert!(matches!(err, GatewayError::Infeasible { ref name } if name == "b"), "{err}");
        assert_eq!(gw.schedule(), &before);
        assert_eq!(gw.flow_names(), vec!["a"]);
        assert_oracle_nr(&gw);
    }

    fn assert_oracle_nr(gw: &GatewayState) {
        let recomputed = NoReuse::new().schedule(&gw.flow_set(), gw.model()).unwrap();
        assert_eq!(gw.schedule(), &recomputed);
    }

    #[test]
    fn urgent_admission_sheds_the_least_urgent_flow() {
        // Same saturated single-channel line, but now the slot-filling
        // flow is the *newcomer*: it outranks the laxer incumbent, which
        // the ladder sheds to make room.
        let mut gw = GatewayState::new(
            model(3, 1),
            Box::new(NoReuse::new()),
            GatewayConfig { rho_t: None, ..GatewayConfig::default() },
        );
        gw.add_flow("laxer", spec(&[0, 1, 2], 8, 8)).unwrap();
        let r = gw.add_flow("urgent", spec(&[0, 1, 2], 4, 4)).unwrap();
        assert_eq!(r.evicted, vec!["laxer".to_string()]);
        assert_eq!(gw.flow_names(), vec!["urgent"]);
        assert_oracle_nr(&gw);
    }

    #[test]
    fn retire_link_evicts_crossing_flows_and_blocks_new_routes() {
        let mut gw = rc_gateway(10, 2);
        gw.add_flow("a", spec(&[0, 1, 2], 100, 80)).unwrap();
        gw.add_flow("b", spec(&[4, 5], 100, 90)).unwrap();
        let dead = DirectedLink::new(NodeId::new(1), NodeId::new(2));
        let r = gw.retire_link(dead).unwrap();
        assert_eq!(r.path, DeltaPath::Recovery);
        assert_eq!(r.evicted, vec!["a".to_string()]);
        assert_eq!(gw.flow_names(), vec!["b"]);
        assert_oracle(&gw);
        // the retired link now rejects admissions routed over it
        assert!(matches!(
            gw.add_flow("c", spec(&[1, 2], 100, 50)),
            Err(GatewayError::RetiredLink { .. })
        ));
        // retiring an uncrossed link is a no-op
        let r = gw.retire_link(DirectedLink::new(NodeId::new(7), NodeId::new(8))).unwrap();
        assert_eq!(r.path, DeltaPath::Unchanged);
    }

    #[test]
    fn retiring_every_route_empties_the_gateway() {
        let mut gw = rc_gateway(6, 2);
        gw.add_flow("a", spec(&[0, 1], 100, 50)).unwrap();
        gw.add_flow("b", spec(&[3, 4], 100, 60)).unwrap();
        gw.retire_links(&[
            DirectedLink::new(NodeId::new(0), NodeId::new(1)),
            DirectedLink::new(NodeId::new(3), NodeId::new(4)),
        ])
        .unwrap();
        assert!(gw.is_empty());
        assert_eq!(gw.schedule().horizon(), 1);
        assert_eq!(gw.schedule().entry_count(), 0);
    }

    #[test]
    fn capacity_caps_are_enforced() {
        let mut gw = GatewayState::new(
            model(8, 2),
            Box::new(ReuseConservatively::new(2)),
            GatewayConfig { max_flows: 1, ..GatewayConfig::default() },
        );
        gw.add_flow("a", spec(&[0, 1], 100, 50)).unwrap();
        assert!(matches!(
            gw.add_flow("b", spec(&[2, 3], 100, 50)),
            Err(GatewayError::CapacityExceeded { .. })
        ));
        let mut gw = GatewayState::new(
            model(8, 2),
            Box::new(ReuseConservatively::new(2)),
            GatewayConfig { max_hyperperiod: 50, ..GatewayConfig::default() },
        );
        assert!(matches!(
            gw.add_flow("a", spec(&[0, 1], 100, 50)),
            Err(GatewayError::CapacityExceeded { .. })
        ));
    }
}
