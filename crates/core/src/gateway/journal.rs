//! Write-ahead operation journal for the gateway service.
//!
//! One JSONL file: the first line is a [`JournalHeader`] identifying the
//! network configuration the journal was recorded against, every further
//! line is a [`JournalRecord`] — a monotonically sequenced, *successful*
//! mutating operation. The service applies an operation in memory first,
//! then appends its record and `fsync`s **before** acknowledging the client,
//! so an acknowledged operation is always durable.
//!
//! Crash recovery ([`Journal::resume`]) replays the records in order
//! through the same deterministic delta pipeline, reconstructing the exact
//! pre-crash schedule. A `kill -9` can leave a torn final line (partial
//! write, never acknowledged); resume detects it, truncates the file back
//! to the last complete record, and reports the dropped bytes. Corruption
//! anywhere *before* the tail — or a header that does not match the serving
//! configuration — is an error, not a silent partial replay.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Schema tag of the journal header line.
pub const JOURNAL_SCHEMA: &str = "wsan.gateway-journal/1";

/// A mutating gateway operation, exactly as validated and applied by the
/// service (routes are recomputed deterministically on replay).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewayOp {
    /// Admit a flow routed `source → dest` by shortest path.
    AddFlow {
        /// Client-chosen flow name.
        name: String,
        /// Source node index.
        source: usize,
        /// Destination node index.
        dest: usize,
        /// Release period in slots.
        period: u32,
        /// Relative deadline in slots.
        deadline: u32,
    },
    /// Evict an admitted flow.
    RemoveFlow {
        /// Name of the flow to evict.
        name: String,
    },
    /// Change an admitted flow's period and deadline.
    UpdateRate {
        /// Name of the flow to update.
        name: String,
        /// New period in slots.
        period: u32,
        /// New deadline in slots.
        deadline: u32,
    },
    /// Retire the radio link between two nodes (both directions).
    RetireLink {
        /// Transmitter node index.
        tx: usize,
        /// Receiver node index.
        rx: usize,
    },
}

impl GatewayOp {
    /// Short operation name, as used in the request protocol.
    pub fn name(&self) -> &'static str {
        match self {
            GatewayOp::AddFlow { .. } => "add_flow",
            GatewayOp::RemoveFlow { .. } => "remove_flow",
            GatewayOp::UpdateRate { .. } => "update_rate",
            GatewayOp::RetireLink { .. } => "retire_link",
        }
    }
}

/// First line of a journal: which configuration recorded it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Always [`JOURNAL_SCHEMA`].
    pub schema: String,
    /// Identity of the network the journal was recorded against
    /// (testbed/seed/PRR/channels).
    pub network: String,
    /// Identity of the scheduling algorithm (name and ρ parameters).
    pub algo: String,
}

impl JournalHeader {
    /// Builds a header for the given network and algorithm identities.
    pub fn new(network: impl Into<String>, algo: impl Into<String>) -> Self {
        JournalHeader {
            schema: JOURNAL_SCHEMA.to_string(),
            network: network.into(),
            algo: algo.into(),
        }
    }
}

/// One journaled operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Monotonic sequence number, starting at 1.
    pub seq: u64,
    /// The operation that was applied.
    pub op: GatewayOp,
}

/// What [`Journal::resume`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// The records to re-apply, in order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn tail (a partial final line from a crash mid-append)
    /// that were truncated away. 0 for a cleanly closed journal.
    pub truncated_bytes: u64,
}

/// Journal I/O and integrity errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// An OS-level I/O failure.
    Io {
        /// What the journal was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A line before the tail does not parse, or sequence numbers are not
    /// contiguous — the journal cannot be trusted.
    Corrupt {
        /// 1-based line number of the offending record.
        line: usize,
        /// Why it was rejected.
        reason: String,
    },
    /// The header does not match the serving configuration.
    HeaderMismatch {
        /// Header found in the file.
        found: String,
        /// Header the service expected.
        expected: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { context, source } => write!(f, "journal i/o ({context}): {source}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::HeaderMismatch { found, expected } => {
                write!(f, "journal header mismatch: found {found}, expected {expected}")
            }
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(context: &str) -> impl FnOnce(std::io::Error) -> JournalError + '_ {
    move |source| JournalError::Io { context: context.to_string(), source }
}

/// An open write-ahead journal. See the module docs.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    next_seq: u64,
}

impl Journal {
    /// Creates (truncating) a fresh journal at `path` and durably writes
    /// the header line.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn create(path: impl Into<PathBuf>, header: &JournalHeader) -> Result<Self, JournalError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(io_err("create"))?;
        let line = serde_json::to_string(header)
            .map_err(|e| JournalError::Corrupt { line: 1, reason: e.to_string() })?;
        file.write_all(line.as_bytes()).map_err(io_err("write header"))?;
        file.write_all(b"\n").map_err(io_err("write header"))?;
        file.sync_data().map_err(io_err("sync header"))?;
        Ok(Journal { file, path, next_seq: 1 })
    }

    /// Opens an existing journal, verifies its header against `expected`,
    /// truncates a torn tail if the process previously died mid-append, and
    /// returns the journal (positioned for appending) plus the records to
    /// replay.
    ///
    /// # Errors
    ///
    /// [`JournalError::HeaderMismatch`] when the file was recorded under a
    /// different configuration, [`JournalError::Corrupt`] when a non-tail
    /// record is damaged or sequence numbers skip, [`JournalError::Io`] on
    /// filesystem failures.
    pub fn resume(
        path: impl Into<PathBuf>,
        expected: &JournalHeader,
    ) -> Result<(Self, Replay), JournalError> {
        let path = path.into();
        let mut file =
            OpenOptions::new().read(true).write(true).open(&path).map_err(io_err("open"))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err("read"))?;

        // Split into newline-terminated lines; anything after the final
        // newline is a torn tail by definition.
        let mut lines: Vec<(usize, &[u8])> = Vec::new(); // (start offset, contents)
        let mut start = 0;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                lines.push((start, &bytes[start..i]));
                start = i + 1;
            }
        }
        let mut good_len = start as u64; // end of the last newline-terminated line
        let mut truncated = (bytes.len() - start) as u64;

        if lines.is_empty() {
            return Err(JournalError::Corrupt {
                line: 1,
                reason: "no complete header line".to_string(),
            });
        }
        let header: JournalHeader = parse_line(lines[0].1, 1)?;
        if header != *expected {
            return Err(JournalError::HeaderMismatch {
                found: format!("{}/{}/{}", header.schema, header.network, header.algo),
                expected: format!("{}/{}/{}", expected.schema, expected.network, expected.algo),
            });
        }

        let mut records: Vec<JournalRecord> = Vec::new();
        for (idx, (offset, raw)) in lines.iter().enumerate().skip(1) {
            let line_no = idx + 1;
            let is_last = idx == lines.len() - 1;
            match parse_line::<JournalRecord>(raw, line_no) {
                Ok(rec) => {
                    if rec.seq != records.len() as u64 + 1 {
                        return Err(JournalError::Corrupt {
                            line: line_no,
                            reason: format!(
                                "sequence skipped: found {}, expected {}",
                                rec.seq,
                                records.len() + 1
                            ),
                        });
                    }
                    records.push(rec);
                }
                // A damaged *final* line is a torn write from a crash
                // mid-append (it was never acknowledged); drop it. Damage
                // anywhere earlier means real corruption.
                Err(_) if is_last => {
                    good_len = *offset as u64;
                    truncated = bytes.len() as u64 - good_len;
                }
                Err(e) => return Err(e),
            }
        }

        if truncated > 0 {
            file.set_len(good_len).map_err(io_err("truncate torn tail"))?;
            file.sync_data().map_err(io_err("sync truncate"))?;
        }
        file.seek(SeekFrom::End(0)).map_err(io_err("seek"))?;
        let next_seq = records.len() as u64 + 1;
        Ok((Journal { file, path, next_seq }, Replay { records, truncated_bytes: truncated }))
    }

    /// Durably appends a successful operation; returns its sequence number.
    /// The caller must only acknowledge the client after this returns.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when the record cannot be made durable — the
    /// caller must then report the operation as failed.
    pub fn append(&mut self, op: &GatewayOp) -> Result<u64, JournalError> {
        let seq = self.next_seq;
        let record = JournalRecord { seq, op: op.clone() };
        let line = serde_json::to_string(&record)
            .map_err(|e| JournalError::Corrupt { line: 0, reason: e.to_string() })?;
        self.file.write_all(line.as_bytes()).map_err(io_err("append"))?;
        self.file.write_all(b"\n").map_err(io_err("append"))?;
        self.file.sync_data().map_err(io_err("sync append"))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// The next sequence number that will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn parse_line<T: Deserialize>(raw: &[u8], line_no: usize) -> Result<T, JournalError> {
    let text = std::str::from_utf8(raw).map_err(|_| JournalError::Corrupt {
        line: line_no,
        reason: "invalid utf-8".to_string(),
    })?;
    serde_json::from_str(text)
        .map_err(|e| JournalError::Corrupt { line: line_no, reason: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("wsan-gateway-journal");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    fn header() -> JournalHeader {
        JournalHeader::new("test-net", "rc/2")
    }

    fn add(name: &str) -> GatewayOp {
        GatewayOp::AddFlow { name: name.to_string(), source: 0, dest: 2, period: 100, deadline: 50 }
    }

    #[test]
    fn create_append_resume_round_trips() {
        let path = temp_path("roundtrip");
        let mut j = Journal::create(&path, &header()).unwrap();
        assert_eq!(j.append(&add("a")).unwrap(), 1);
        assert_eq!(j.append(&GatewayOp::RemoveFlow { name: "a".to_string() }).unwrap(), 2);
        drop(j);
        let (j, replay) = Journal::resume(&path, &header()).unwrap();
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].op, add("a"));
        assert_eq!(j.next_seq(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_keeps_the_prefix() {
        let path = temp_path("torn");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&add("a")).unwrap();
        j.append(&add("b")).unwrap();
        drop(j);
        // simulate kill -9 mid-append: a partial, unterminated record
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":3,\"op\":{\"AddF").unwrap();
        drop(f);
        let before = fs::metadata(&path).unwrap().len();
        let (mut j, replay) = Journal::resume(&path, &header()).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.truncated_bytes > 0);
        assert!(fs::metadata(&path).unwrap().len() < before);
        // appending continues with the right sequence number
        assert_eq!(j.append(&add("c")).unwrap(), 3);
        drop(j);
        let (_, replay) = Journal::resume(&path, &header()).unwrap();
        assert_eq!(replay.records.len(), 3);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_newline_terminated_tail_is_also_dropped() {
        let path = temp_path("torn-newline");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&add("a")).unwrap();
        drop(j);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":2,\"op\"\n").unwrap();
        drop(f);
        let (_, replay) = Journal::resume(&path, &header()).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.truncated_bytes > 0);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = temp_path("corrupt");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&add("a")).unwrap();
        j.append(&add("b")).unwrap();
        drop(j);
        // damage the first record, keep the second intact
        let text = fs::read_to_string(&path).unwrap();
        let damaged = text.replacen("\"seq\":1", "\"seq\":garbage", 1);
        fs::write(&path, damaged).unwrap();
        let err = Journal::resume(&path, &header()).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { line: 2, .. }), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sequence_skips_are_rejected() {
        let path = temp_path("seqskip");
        let mut j = Journal::create(&path, &header()).unwrap();
        j.append(&add("a")).unwrap();
        drop(j);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"seq\":5,\"op\":{\"RemoveFlow\":{\"name\":\"a\"}}}\nx\n").unwrap();
        drop(f);
        let err = Journal::resume(&path, &header()).unwrap_err();
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err}");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let path = temp_path("mismatch");
        Journal::create(&path, &header()).unwrap();
        let other = JournalHeader::new("other-net", "rc/2");
        let err = Journal::resume(&path, &other).unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }), "{err}");
        fs::remove_file(&path).unwrap();
    }
}
