//! The hardened request/response front end of the gateway.
//!
//! [`GatewayService`] wraps a [`GatewayState`] behind a line-oriented JSONL
//! protocol (one request object in, one response object out) and adds the
//! robustness layer the long-lived process needs:
//!
//! * **Typed request validation** — malformed JSON, unknown operations, and
//!   missing/mistyped fields produce a structured error response; no input
//!   can panic the service.
//! * **Write-ahead journal** — every *successful* mutating operation is
//!   appended to the [`journal`](super::journal) and `fsync`ed before the
//!   response is emitted, so an acknowledged operation survives `kill -9`
//!   and [`GatewayService::journal_resume`] replays it deterministically.
//! * **Latency budget and load shedding** — with a per-request deadline
//!   configured, an operation that overruns flips the service into an
//!   overloaded state in which admissions that would rank at the bottom of
//!   the DM order (the flows the shedding ladder would sacrifice first) are
//!   rejected up front with a retryable error and a backoff hint; any
//!   in-budget operation clears the state.
//! * **Observability** — `gateway.*` counters and a `gateway.request_us`
//!   HDR quantile histogram (p50/p90/p99/p999) via `wsan-obs`, when global
//!   metrics are enabled. When tracing is enabled every request runs under
//!   a fresh `RequestId` bound with `wsan_obs::request_scope`, with child
//!   spans for parse → admit (delta-schedule) → journal fsync, so a
//!   flight-recorder dump reconstructs the full causal path of a failed
//!   request; [`GatewayService::with_flightrec_dump`] writes that dump as
//!   JSONL whenever a request errors.
//!
//! ## Protocol
//!
//! Requests (one JSON object per line):
//!
//! ```json
//! {"op":"add_flow","name":"f1","source":3,"dest":9,"period":100,"deadline":80}
//! {"op":"remove_flow","name":"f1"}
//! {"op":"update_rate","name":"f1","period":200,"deadline":150}
//! {"op":"retire_link","tx":3,"rx":4}
//! {"op":"status"}
//! {"op":"export","path":"schedule.csv"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `"ok"`; successes echo `"op"` and report the
//! delta path taken, evictions, and timing; failures carry
//! `{"error":{"kind","message"},"retryable"}` plus `"backoff_ms"` when a
//! retry is sensible. Error kinds: `malformed`, `validation`, `capacity`,
//! `infeasible`, `overloaded`, `journal`, `io`, `internal` — only
//! `overloaded` is retryable.

use super::journal::{GatewayOp, Journal, JournalError, JournalHeader};
use super::{DeltaReport, FlowSpec, GatewayError, GatewayState};
use crate::export;
use serde::value::Value;
use std::time::{Duration, Instant};
use wsan_flow::Period;
use wsan_net::{routing, CommGraph, DirectedLink, NodeId};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
enum Request {
    Mutate(GatewayOp),
    Status,
    Export { path: Option<String> },
    Shutdown,
}

/// `gateway.*` instrument handles, built once when global metrics are on.
struct ServiceMetrics {
    requests: wsan_obs::Counter,
    malformed: wsan_obs::Counter,
    applied: wsan_obs::Counter,
    rejected: wsan_obs::Counter,
    evicted: wsan_obs::Counter,
    overload_rejections: wsan_obs::Counter,
    journal_records: wsan_obs::Counter,
    replayed: wsan_obs::Counter,
    latency: wsan_obs::Timer,
    request_us: wsan_obs::HdrHistogram,
}

impl ServiceMetrics {
    fn new() -> Self {
        let reg = wsan_obs::global_metrics();
        ServiceMetrics {
            requests: reg.counter("gateway.requests"),
            malformed: reg.counter("gateway.malformed"),
            applied: reg.counter("gateway.applied"),
            rejected: reg.counter("gateway.rejected"),
            evicted: reg.counter("gateway.evicted"),
            overload_rejections: reg.counter("gateway.overload_rejections"),
            journal_records: reg.counter("gateway.journal.records"),
            replayed: reg.counter("gateway.journal.replayed"),
            latency: reg.timer("gateway.request"),
            request_us: reg.quantile("gateway.request_us"),
        }
    }
}

/// The JSONL gateway service. See the module docs.
pub struct GatewayService {
    state: GatewayState,
    routing: CommGraph,
    header: JournalHeader,
    journal: Option<Journal>,
    budget: Option<Duration>,
    overloaded: bool,
    reject_streak: u32,
    requests: u64,
    shutdown: bool,
    metrics: Option<ServiceMetrics>,
    flightrec_dump: Option<std::path::PathBuf>,
}

impl GatewayService {
    /// Creates a service over `state`, routing admissions on `routing` by
    /// shortest path. `header` identifies the configuration for journal
    /// compatibility checks.
    pub fn new(state: GatewayState, routing: CommGraph, header: JournalHeader) -> Self {
        GatewayService {
            state,
            routing,
            header,
            journal: None,
            budget: None,
            overloaded: false,
            reject_streak: 0,
            requests: 0,
            shutdown: false,
            metrics: wsan_obs::metrics_enabled().then(ServiceMetrics::new),
            flightrec_dump: None,
        }
    }

    /// Dumps the armed flight recorder (if any) as JSONL to `path` whenever
    /// a request produces an error response.
    #[must_use]
    pub fn with_flightrec_dump(mut self, path: Option<std::path::PathBuf>) -> Self {
        self.flightrec_dump = path;
        self
    }

    /// Sets the per-request latency budget that arms overload shedding.
    /// `None` (the default) disables the budget — replay determinism never
    /// depends on wall-clock time.
    #[must_use]
    pub fn with_budget(mut self, budget: Option<Duration>) -> Self {
        self.budget = budget;
        self
    }

    /// The underlying gateway state.
    pub fn state(&self) -> &GatewayState {
        &self.state
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Whether the service is currently shedding low-priority admissions.
    pub fn overloaded(&self) -> bool {
        self.overloaded
    }

    /// Starts a fresh write-ahead journal at `path`.
    ///
    /// # Errors
    ///
    /// See [`Journal::create`].
    pub fn journal_create(
        &mut self,
        path: impl Into<std::path::PathBuf>,
    ) -> Result<(), JournalError> {
        self.journal = Some(Journal::create(path, &self.header)?);
        Ok(())
    }

    /// Resumes from an existing journal: verifies the header, truncates a
    /// torn tail, replays every record through the normal delta pipeline,
    /// and keeps journaling at the right sequence number. Returns the
    /// number of replayed operations.
    ///
    /// # Errors
    ///
    /// See [`Journal::resume`]; additionally reports
    /// [`JournalError::Corrupt`] when a journaled operation no longer
    /// applies cleanly (replay divergence).
    pub fn journal_resume(
        &mut self,
        path: impl Into<std::path::PathBuf>,
    ) -> Result<usize, JournalError> {
        let (journal, replay) = Journal::resume(path, &self.header)?;
        for record in &replay.records {
            self.apply(&record.op).map_err(|e| JournalError::Corrupt {
                line: record.seq as usize + 1,
                reason: format!("replay diverged on {}: {e}", record.op.name()),
            })?;
            if let Some(m) = &self.metrics {
                m.replayed.inc();
            }
        }
        self.journal = Some(journal);
        Ok(replay.records.len())
    }

    /// Handles one request line, returning the response line (no trailing
    /// newline). Never panics on untrusted input.
    ///
    /// With tracing enabled the whole request runs inside a
    /// `gateway.request` span under a fresh [`wsan_obs::RequestId`], so
    /// every child span (parse, admit, journal fsync) and event carries the
    /// same causal id in subscriber output and flight-recorder dumps.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.requests += 1;
        if let Some(m) = &self.metrics {
            m.requests.inc();
        }
        let traced = wsan_obs::enabled(wsan_obs::Level::Debug);
        let _request_scope = traced.then(|| wsan_obs::request_scope(wsan_obs::next_request_id()));
        let _request_span = traced.then(|| {
            wsan_obs::span(
                wsan_obs::Level::Debug,
                "gateway.request",
                vec![wsan_obs::kv("seq", self.requests)],
            )
        });
        let parsed = {
            let _parse_span = traced.then(|| {
                wsan_obs::span(
                    wsan_obs::Level::Debug,
                    "gateway.parse",
                    vec![wsan_obs::kv("bytes", line.len())],
                )
            });
            parse_request(line)
        };
        let response = match parsed {
            Ok(request) => self.handle(request),
            Err(message) => {
                if let Some(m) = &self.metrics {
                    m.malformed.inc();
                }
                error_response(None, "malformed", &message, false, None)
            }
        };
        if response.get("ok") == Some(&Value::Bool(false)) {
            self.on_request_error(&response);
        }
        serde_json::to_string(&response)
            .unwrap_or_else(|_| r#"{"ok":false,"error":{"kind":"internal"}}"#.to_string())
    }

    /// Error-path hooks: an `error`-level event (so the failure itself is
    /// the newest flight-recorder record) and, when configured, a JSONL
    /// dump of the armed recorder.
    fn on_request_error(&self, response: &Value) {
        if wsan_obs::enabled(wsan_obs::Level::Error) {
            let kind = response
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| match k {
                    Value::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_default();
            wsan_obs::event(
                wsan_obs::Level::Error,
                "wsan_core::gateway",
                "request failed",
                &[wsan_obs::kv("kind", kind)],
            );
        }
        if let (Some(path), Some(rec)) = (&self.flightrec_dump, wsan_obs::flightrec::armed()) {
            // Best effort: a failed dump must not take down the service.
            let _ = std::fs::write(path, rec.dump_jsonl());
        }
    }

    fn handle(&mut self, request: Request) -> Value {
        match request {
            Request::Mutate(op) => self.handle_mutate(op),
            Request::Status => self.handle_status(),
            Request::Export { path } => self.handle_export(path.as_deref()),
            Request::Shutdown => {
                self.shutdown = true;
                obj(vec![("ok", Value::Bool(true)), ("op", str_value("shutdown"))])
            }
        }
    }

    fn handle_mutate(&mut self, op: GatewayOp) -> Value {
        // Load shedding: while overloaded, reject admissions that would
        // rank at (or below) the bottom of the DM order — exactly the
        // flows the feasibility ladder would shed first anyway.
        if self.overloaded {
            if let GatewayOp::AddFlow { deadline, .. } = &op {
                let lowest = self.state.max_deadline().is_some_and(|d| *deadline >= d);
                if lowest {
                    self.reject_streak += 1;
                    if let Some(m) = &self.metrics {
                        m.overload_rejections.inc();
                    }
                    let backoff = 1000u64.min(10u64 << self.reject_streak.min(7));
                    return error_response(
                        Some(op.name()),
                        "overloaded",
                        "gateway over latency budget; lowest-priority admissions are shed",
                        true,
                        Some(backoff),
                    );
                }
            }
        }
        let started = Instant::now();
        let result = {
            let _admit_span = wsan_obs::enabled(wsan_obs::Level::Debug).then(|| {
                wsan_obs::span(
                    wsan_obs::Level::Debug,
                    "gateway.admit",
                    vec![wsan_obs::kv("op", op.name())],
                )
            });
            self.apply(&op)
        };
        let elapsed = started.elapsed();
        let mut budget_exceeded = false;
        if let Some(budget) = self.budget {
            budget_exceeded = elapsed > budget;
            self.overloaded = budget_exceeded;
            if !budget_exceeded {
                self.reject_streak = 0;
            }
        }
        if let Some(m) = &self.metrics {
            m.latency.record(elapsed);
            m.request_us.record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        }
        match result {
            Ok(report) => {
                if let Some(m) = &self.metrics {
                    m.applied.inc();
                    m.evicted.add(report.evicted.len() as u64);
                }
                let _journal_span = (self.journal.is_some()
                    && wsan_obs::enabled(wsan_obs::Level::Debug))
                .then(|| {
                    wsan_obs::span(wsan_obs::Level::Debug, "gateway.journal_fsync", Vec::new())
                });
                let seq = match &mut self.journal {
                    Some(journal) => match journal.append(&op) {
                        Ok(seq) => {
                            if let Some(m) = &self.metrics {
                                m.journal_records.inc();
                            }
                            Some(seq)
                        }
                        Err(e) => {
                            // The operation is applied in memory but not
                            // durable: report it as failed so the client
                            // does not rely on it surviving a restart.
                            return error_response(
                                Some(op.name()),
                                "journal",
                                &format!("operation applied but not durable: {e}"),
                                false,
                                None,
                            );
                        }
                    },
                    None => None,
                };
                ok_response(&op, seq, &report, elapsed, self.overloaded, budget_exceeded)
            }
            Err(e) => {
                if let Some(m) = &self.metrics {
                    m.rejected.inc();
                }
                let (kind, retryable) = classify(&e);
                error_response(Some(op.name()), kind, &e.to_string(), retryable, None)
            }
        }
    }

    fn handle_status(&self) -> Value {
        let names: Vec<Value> = self.state.flow_names().into_iter().map(str_value).collect();
        obj(vec![
            ("ok", Value::Bool(true)),
            ("op", str_value("status")),
            ("flows", Value::UInt(self.state.len() as u64)),
            ("names", Value::Seq(names)),
            ("horizon", Value::UInt(u64::from(self.state.schedule().horizon()))),
            ("entries", Value::UInt(self.state.schedule().entry_count() as u64)),
            ("retired_links", Value::UInt(self.state.retired().len() as u64)),
            ("overloaded", Value::Bool(self.overloaded)),
            ("requests", Value::UInt(self.requests)),
            (
                "journal_seq",
                match &self.journal {
                    Some(j) => Value::UInt(j.next_seq().saturating_sub(1)),
                    None => Value::Null,
                },
            ),
        ])
    }

    fn handle_export(&self, path: Option<&str>) -> Value {
        let csv = export::to_csv(self.state.schedule());
        match path {
            Some(path) => match std::fs::write(path, &csv) {
                Ok(()) => obj(vec![
                    ("ok", Value::Bool(true)),
                    ("op", str_value("export")),
                    ("path", str_value(path)),
                    ("bytes", Value::UInt(csv.len() as u64)),
                    ("entries", Value::UInt(self.state.schedule().entry_count() as u64)),
                ]),
                Err(e) => error_response(
                    Some("export"),
                    "io",
                    &format!("cannot write {path}: {e}"),
                    false,
                    None,
                ),
            },
            None => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", str_value("export")),
                ("csv", Value::Str(csv)),
            ]),
        }
    }

    /// Applies a validated operation to the gateway state. Shared by live
    /// requests and journal replay — both paths are deterministic.
    fn apply(&mut self, op: &GatewayOp) -> Result<DeltaReport, GatewayError> {
        match op {
            GatewayOp::AddFlow { name, source, dest, period, deadline } => {
                let route = self.route_of(*source, *dest)?;
                let period = parse_period(*period)?;
                self.state.add_flow(name, FlowSpec { route, period, deadline_slots: *deadline })
            }
            GatewayOp::RemoveFlow { name } => self.state.remove_flow(name),
            GatewayOp::UpdateRate { name, period, deadline } => {
                let period = parse_period(*period)?;
                self.state.update_rate(name, period, *deadline)
            }
            GatewayOp::RetireLink { tx, rx } => {
                let n = self.state.model().node_count();
                if *tx >= n || *rx >= n || tx == rx {
                    return Err(GatewayError::InvalidSpec {
                        reason: format!("invalid link {tx}->{rx} (network has {n} nodes)"),
                    });
                }
                let a = NodeId::new(*tx);
                let b = NodeId::new(*rx);
                self.remove_routing_edge(a, b);
                self.state.retire_links(&[DirectedLink::new(a, b), DirectedLink::new(b, a)])
            }
        }
    }

    fn route_of(&self, source: usize, dest: usize) -> Result<wsan_net::Route, GatewayError> {
        let n = self.routing.node_count();
        if source >= n || dest >= n {
            return Err(GatewayError::InvalidSpec {
                reason: format!("endpoint out of range (network has {n} nodes)"),
            });
        }
        routing::shortest_path(&self.routing, NodeId::new(source), NodeId::new(dest)).map_err(|e| {
            GatewayError::InvalidSpec { reason: format!("no route {source}->{dest}: {e}") }
        })
    }

    /// Drops the undirected edge `a—b` from the routing graph so future
    /// admissions route around the retired link.
    fn remove_routing_edge(&mut self, a: NodeId, b: NodeId) {
        let n = self.routing.node_count();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for u in 0..n {
            let un = NodeId::new(u);
            for &v in self.routing.neighbors(un) {
                if un < v && !((un == a && v == b) || (un == b && v == a)) {
                    edges.push((un, v));
                }
            }
        }
        self.routing = CommGraph::from_edges(n, &edges);
    }
}

fn classify(e: &GatewayError) -> (&'static str, bool) {
    match e {
        GatewayError::DuplicateFlow { .. }
        | GatewayError::UnknownFlow { .. }
        | GatewayError::InvalidSpec { .. }
        | GatewayError::RetiredLink { .. } => ("validation", false),
        GatewayError::CapacityExceeded { .. } => ("capacity", false),
        GatewayError::Infeasible { .. } => ("infeasible", false),
        GatewayError::Schedule(_) => ("internal", false),
    }
}

fn parse_period(slots: u32) -> Result<Period, GatewayError> {
    Period::from_slots(slots).map_err(|e| GatewayError::InvalidSpec { reason: e.to_string() })
}

// ---- response construction -------------------------------------------------

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_value(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn ok_response(
    op: &GatewayOp,
    seq: Option<u64>,
    report: &DeltaReport,
    elapsed: Duration,
    overloaded: bool,
    budget_exceeded: bool,
) -> Value {
    let evicted: Vec<Value> = report.evicted.iter().map(|n| str_value(n)).collect();
    obj(vec![
        ("ok", Value::Bool(true)),
        ("op", str_value(op.name())),
        (
            "seq",
            match seq {
                Some(s) => Value::UInt(s),
                None => Value::Null,
            },
        ),
        ("path", Value::Str(report.path.to_string())),
        ("evicted", Value::Seq(evicted)),
        ("reschedules", Value::UInt(u64::from(report.reschedules))),
        ("flows", Value::UInt(report.flows as u64)),
        ("horizon", Value::UInt(u64::from(report.horizon))),
        ("entries", Value::UInt(report.entries as u64)),
        ("elapsed_us", Value::UInt(elapsed.as_micros().min(u128::from(u64::MAX)) as u64)),
        ("budget_exceeded", Value::Bool(budget_exceeded)),
        ("overloaded", Value::Bool(overloaded)),
    ])
}

fn error_response(
    op: Option<&str>,
    kind: &str,
    message: &str,
    retryable: bool,
    backoff_ms: Option<u64>,
) -> Value {
    let mut fields = vec![
        ("ok", Value::Bool(false)),
        (
            "op",
            match op {
                Some(o) => str_value(o),
                None => Value::Null,
            },
        ),
        ("error", obj(vec![("kind", str_value(kind)), ("message", str_value(message))])),
        ("retryable", Value::Bool(retryable)),
    ];
    if let Some(ms) = backoff_ms {
        fields.push(("backoff_ms", Value::UInt(ms)));
    }
    obj(fields)
}

// ---- request parsing -------------------------------------------------------

fn parse_request(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let map = value
        .as_map()
        .ok_or_else(|| format!("request must be a JSON object, got {}", value.kind()))?;
    let op = get_str(map, "op")?;
    match op {
        "add_flow" => Ok(Request::Mutate(GatewayOp::AddFlow {
            name: get_str(map, "name")?.to_string(),
            source: get_uint(map, "source")? as usize,
            dest: get_uint(map, "dest")? as usize,
            period: get_u32(map, "period")?,
            deadline: get_u32(map, "deadline")?,
        })),
        "remove_flow" => {
            Ok(Request::Mutate(GatewayOp::RemoveFlow { name: get_str(map, "name")?.to_string() }))
        }
        "update_rate" => Ok(Request::Mutate(GatewayOp::UpdateRate {
            name: get_str(map, "name")?.to_string(),
            period: get_u32(map, "period")?,
            deadline: get_u32(map, "deadline")?,
        })),
        "retire_link" => Ok(Request::Mutate(GatewayOp::RetireLink {
            tx: get_uint(map, "tx")? as usize,
            rx: get_uint(map, "rx")? as usize,
        })),
        "status" => Ok(Request::Status),
        "export" => Ok(Request::Export { path: get_opt_str(map, "path")?.map(str::to_string) }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown op {other:?} (expected add_flow, remove_flow, update_rate, \
             retire_link, status, export, or shutdown)"
        )),
    }
}

fn get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, String> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
    match get(map, key)? {
        Value::Str(s) => Ok(s),
        other => Err(format!("field {key:?} must be a string, got {}", other.kind())),
    }
}

fn get_opt_str<'a>(map: &'a [(String, Value)], key: &str) -> Result<Option<&'a str>, String> {
    match map.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(other) => Err(format!("field {key:?} must be a string, got {}", other.kind())),
    }
}

fn get_uint(map: &[(String, Value)], key: &str) -> Result<u64, String> {
    match get(map, key)? {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(format!("field {key:?} must be a non-negative integer, got {}", other.kind())),
    }
}

fn get_u32(map: &[(String, Value)], key: &str) -> Result<u32, String> {
    let v = get_uint(map, key)?;
    u32::try_from(v).map_err(|_| format!("field {key:?} too large: {v}"))
}

#[cfg(test)]
mod tests {
    use super::super::GatewayConfig;
    use super::*;
    use crate::test_util::path_graph;
    use crate::{NetworkModel, ReuseConservatively};
    use std::path::PathBuf;

    fn line_network(nodes: usize) -> (NetworkModel, CommGraph) {
        let model = NetworkModel::from_reuse_graph(&path_graph(nodes), 2);
        let edges: Vec<(NodeId, NodeId)> =
            (0..nodes - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
        (model, CommGraph::from_edges(nodes, &edges))
    }

    fn service(nodes: usize) -> GatewayService {
        let (model, comm) = line_network(nodes);
        let state = GatewayState::new(
            model,
            Box::new(ReuseConservatively::new(2)),
            GatewayConfig::default(),
        );
        GatewayService::new(state, comm, JournalHeader::new("test-net", "rc/2"))
    }

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("wsan-gateway-service");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn malformed_input_never_panics_and_is_typed() {
        let mut svc = service(6);
        for line in [
            "",
            "not json",
            "[1,2,3]",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"add_flow\"}",
            "{\"op\":\"add_flow\",\"name\":7,\"source\":0,\"dest\":1,\"period\":100,\"deadline\":50}",
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":-3,\"dest\":1,\"period\":100,\"deadline\":50}",
            "{\"no_op\":true}",
        ] {
            let resp = svc.handle_line(line);
            assert!(resp.contains("\"ok\":false"), "line {line:?} -> {resp}");
            assert!(resp.contains("\"malformed\""), "line {line:?} -> {resp}");
        }
        assert_eq!(svc.state().len(), 0);
    }

    #[test]
    fn add_status_remove_flow_through_the_protocol() {
        let mut svc = service(8);
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"f1\",\"source\":0,\"dest\":3,\"period\":100,\"deadline\":80}",
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"path\":\"full\""), "{resp}");
        let resp = svc.handle_line("{\"op\":\"status\"}");
        assert!(resp.contains("\"flows\":1"), "{resp}");
        assert!(resp.contains("\"f1\""), "{resp}");
        let resp = svc.handle_line("{\"op\":\"remove_flow\",\"name\":\"f1\"}");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let resp = svc.handle_line("{\"op\":\"remove_flow\",\"name\":\"f1\"}");
        assert!(resp.contains("\"validation\""), "{resp}");
        assert!(resp.contains("\"retryable\":false"), "{resp}");
    }

    #[test]
    fn flight_recorder_captures_a_session_and_exports_a_chrome_trace() {
        let dump_path = temp_path("flightrec-dump");
        let _ = std::fs::remove_file(&dump_path);
        let _rec = wsan_obs::flightrec::arm(1024, wsan_obs::Level::Debug);
        let mut svc = service(8).with_flightrec_dump(Some(dump_path.clone()));
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"f1\",\"source\":0,\"dest\":3,\"period\":100,\"deadline\":80}",
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // a failing request triggers the on-error JSONL dump of the ring
        let resp = svc.handle_line("{\"op\":\"frobnicate\"}");
        assert!(resp.contains("\"ok\":false"), "{resp}");
        wsan_obs::flightrec::disarm();

        let raw = std::fs::read_to_string(&dump_path).expect("error dump written");
        let records: Vec<wsan_obs::FlightRecord> =
            raw.lines().map(|l| serde_json::from_str(l).expect("record parses")).collect();
        assert!(!records.is_empty());
        assert!(records.iter().any(|r| r.name == "gateway.request"), "{records:?}");
        assert!(records.iter().any(|r| r.name == "gateway.admit"), "{records:?}");
        assert!(
            records.iter().any(|r| r.kind == "event" && r.level == "error"),
            "the failure itself must be recorded: {records:?}"
        );
        // every span/event of one request carries the same request id
        let failed = records.iter().rfind(|r| r.level == "error").expect("error event");
        assert!(failed.request > 0);

        // the dump round-trips through the Chrome trace_event exporter
        let chrome = wsan_obs::chrome_trace(&records);
        let doc: serde::value::Value = serde_json::from_str(&chrome).expect("chrome trace parses");
        let events = doc.get("traceEvents").expect("traceEvents").as_seq().expect("list");
        assert!(!events.is_empty());
        let _ = std::fs::remove_file(&dump_path);
    }

    #[test]
    fn unreachable_and_out_of_range_endpoints_are_validation_errors() {
        let mut svc = service(4);
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":0,\"dest\":99,\"period\":100,\"deadline\":50}",
        );
        assert!(resp.contains("\"validation\""), "{resp}");
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":2,\"dest\":2,\"period\":100,\"deadline\":50}",
        );
        assert!(resp.contains("\"validation\""), "{resp}");
    }

    #[test]
    fn retire_link_reroutes_future_admissions() {
        // ring: 0-1-2-3-0 so an alternate route exists
        let model = NetworkModel::from_reuse_graph(&path_graph(4), 2);
        let comm = CommGraph::from_edges(
            4,
            &[
                (NodeId::new(0), NodeId::new(1)),
                (NodeId::new(1), NodeId::new(2)),
                (NodeId::new(2), NodeId::new(3)),
                (NodeId::new(3), NodeId::new(0)),
            ],
        );
        let state = GatewayState::new(
            model,
            Box::new(ReuseConservatively::new(2)),
            GatewayConfig::default(),
        );
        let mut svc = GatewayService::new(state, comm, JournalHeader::new("ring", "rc/2"));
        let resp = svc.handle_line("{\"op\":\"retire_link\",\"tx\":0,\"rx\":1}");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // 0 -> 1 must now route the long way round: 0-3-2-1
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":0,\"dest\":1,\"period\":100,\"deadline\":80}",
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let spec = svc.state().spec("a").unwrap();
        assert_eq!(spec.route.hop_count(), 3, "route must avoid the retired link");
    }

    #[test]
    fn journal_records_only_successful_ops_and_resume_replays_them() {
        let path = temp_path("replay");
        let script = [
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":0,\"dest\":2,\"period\":100,\"deadline\":80}",
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":0,\"dest\":2,\"period\":100,\"deadline\":80}", // duplicate: rejected
            "{\"op\":\"add_flow\",\"name\":\"b\",\"source\":3,\"dest\":5,\"period\":200,\"deadline\":150}",
            "{\"op\":\"update_rate\",\"name\":\"a\",\"period\":200,\"deadline\":100}",
            "{\"op\":\"bogus\"}", // malformed: not journaled
            "{\"op\":\"remove_flow\",\"name\":\"b\"}",
        ];
        let mut svc = service(8);
        svc.journal_create(&path).unwrap();
        for line in script {
            let _ = svc.handle_line(line);
        }
        let reference_csv = export::to_csv(svc.state().schedule());
        let reference_names: Vec<String> =
            svc.state().flow_names().iter().map(|s| s.to_string()).collect();
        drop(svc);

        let mut restored = service(8);
        let replayed = restored.journal_resume(&path).unwrap();
        assert_eq!(replayed, 4, "only the successful mutations are journaled");
        assert_eq!(
            restored.state().flow_names().iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            reference_names
        );
        assert_eq!(export::to_csv(restored.state().schedule()), reference_csv);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overload_sheds_lowest_priority_admissions_with_backoff() {
        // Budget of zero: every operation overruns, arming the shedding
        // policy after the first mutate.
        let mut svc = service(10).with_budget(Some(Duration::from_secs(0)));
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":0,\"dest\":2,\"period\":100,\"deadline\":50}",
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"budget_exceeded\":true"), "{resp}");
        assert!(svc.overloaded());
        // an admission no more urgent than the least urgent flow is shed
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"b\",\"source\":3,\"dest\":5,\"period\":100,\"deadline\":90}",
        );
        assert!(resp.contains("\"overloaded\""), "{resp}");
        assert!(resp.contains("\"retryable\":true"), "{resp}");
        assert!(resp.contains("\"backoff_ms\""), "{resp}");
        assert_eq!(svc.state().len(), 1);
        // a more urgent admission is still processed
        let resp = svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"c\",\"source\":3,\"dest\":5,\"period\":100,\"deadline\":20}",
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert_eq!(svc.state().len(), 2);
    }

    #[test]
    fn export_inline_and_to_file() {
        let mut svc = service(6);
        svc.handle_line(
            "{\"op\":\"add_flow\",\"name\":\"a\",\"source\":0,\"dest\":2,\"period\":100,\"deadline\":80}",
        );
        let resp = svc.handle_line("{\"op\":\"export\"}");
        assert!(resp.contains("slot,offset,flow"), "{resp}");
        let path = temp_path("export");
        let resp =
            svc.handle_line(&format!("{{\"op\":\"export\",\"path\":\"{}\"}}", path.display()));
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, export::to_csv(svc.state().schedule()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn shutdown_is_acknowledged_and_flagged() {
        let mut svc = service(4);
        assert!(!svc.shutdown_requested());
        let resp = svc.handle_line("{\"op\":\"shutdown\"}");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(svc.shutdown_requested());
    }
}
