//! The `Scheduler` trait and the shared fixed-priority scheduling engine.

use crate::{NetworkModel, Schedule, ScheduleError, ScheduledTx};
use wsan_flow::FlowSet;
use wsan_net::DirectedLink;

/// Options common to all schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Reserve a retransmission slot for every link transmission, as source
    /// routing requires ("a scheduler must reserve one more time slot for
    /// every transmission over a link", §VII). Enabled by default.
    pub retries: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { retries: true }
    }
}

/// A transmission scheduler for a prioritized flow set.
///
/// Implementations in this crate: [`NoReuse`](crate::NoReuse) (NR),
/// [`ReuseAggressively`](crate::ReuseAggressively) (RA), and
/// [`ReuseConservatively`](crate::ReuseConservatively) (RC, the paper's
/// Algorithm 1).
pub trait Scheduler {
    /// Short display name ("NR", "RA", "RC").
    fn name(&self) -> &'static str;

    /// Schedules every transmission of every job of `flows` over one
    /// hyperperiod, with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Unschedulable`] when some transmission
    /// cannot make its job's deadline (Algorithm 1's `return ∅`), or a
    /// configuration error.
    fn schedule_with(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
    ) -> Result<Schedule, ScheduleError>;

    /// Schedules with the default configuration (retry slots reserved).
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule_with`].
    fn schedule(&self, flows: &FlowSet, model: &NetworkModel) -> Result<Schedule, ScheduleError> {
        self.schedule_with(flows, model, &SchedulerConfig::default())
    }

    /// Schedules only the flows from priority position `skip` onward, on top
    /// of `base` — a schedule that already holds exactly the placements a
    /// full run would have made for flows `0..skip` of this `flows` set.
    ///
    /// Because the fixed-priority engine processes flows one at a time into
    /// a growing schedule and no per-flow policy state crosses a flow
    /// boundary (NR and RA are stateless; RC resets `ρ` in `begin_flow` and
    /// its laxity cache is a proven-exact accelerator), the result is
    /// byte-identical to `schedule_with` over the whole set. This is the
    /// delta path used by [`gateway`](crate::gateway): an admission at
    /// priority position `k` re-places only flows `k..n`.
    ///
    /// The default implementation ignores `base` and recomputes from
    /// scratch — always correct, never incremental — so third-party
    /// [`Scheduler`]s (including the frozen [`reference`](crate::reference)
    /// baselines) stay valid oracles without changes. NR, RA, and RC
    /// override it with the true suffix run.
    ///
    /// # Errors
    ///
    /// See [`Scheduler::schedule_with`]; implementations additionally
    /// return [`ScheduleError::Inconsistent`] when `base`'s dimensions do
    /// not match `flows` and `model`.
    fn schedule_onto(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
        base: Schedule,
        skip: usize,
    ) -> Result<Schedule, ScheduleError> {
        let _ = (base, skip);
        self.schedule_with(flows, model, config)
    }
}

/// One placement request handed to a reuse policy: schedule `link` no
/// earlier than `earliest`, no later than `deadline_slot`, with `remaining`
/// the links of the job's transmissions still to come (`T_post`).
#[derive(Debug)]
pub(crate) struct PlaceRequest<'a> {
    pub link: DirectedLink,
    pub earliest: u32,
    pub deadline_slot: u32,
    pub remaining: &'a [DirectedLink],
}

/// How a scheduler picks `(slot, offset)` for each transmission — the only
/// thing that differs between NR, RA, and RC.
pub(crate) trait PlacePolicy {
    /// Called when the engine moves to the next flow (RC resets `ρ` here in
    /// per-flow mode).
    fn begin_flow(&mut self) {}

    /// Called before each transmission (RC resets `ρ` here in
    /// per-transmission mode).
    fn begin_transmission(&mut self) {}

    /// Chooses a cell for the request, or `None` for a deadline miss.
    fn place(
        &mut self,
        schedule: &Schedule,
        model: &NetworkModel,
        req: &PlaceRequest<'_>,
    ) -> Option<(u32, usize)>;

    /// Called once when the engine finishes a run (success or miss) — RC
    /// flushes its laxity-cache statistics here.
    fn finish(&mut self) {}
}

/// Instrument handles shared by every scheduler run. Built once per
/// [`run_fixed_priority`] call, and only when global metrics are on.
struct EngineMetrics {
    runs: wsan_obs::Counter,
    placements: wsan_obs::Counter,
    misses: wsan_obs::Counter,
    timer: wsan_obs::Timer,
    place_timer: wsan_obs::Timer,
}

impl EngineMetrics {
    fn new() -> Self {
        let reg = wsan_obs::global_metrics();
        EngineMetrics {
            runs: reg.counter("core.schedule.runs"),
            placements: reg.counter("core.schedule.placements"),
            misses: reg.counter("core.schedule.deadline_misses"),
            timer: reg.timer("core.schedule"),
            place_timer: reg.timer("core.schedule.place"),
        }
    }
}

/// The fixed-priority scheduling engine shared by NR/RA/RC: flows in
/// priority order, each flow's jobs in release order, each job's
/// transmissions in route order (primary then retry per link), every
/// transmission placed at the earliest slot its policy accepts.
pub(crate) fn run_fixed_priority<P: PlacePolicy>(
    flows: &FlowSet,
    model: &NetworkModel,
    config: &SchedulerConfig,
    policy: &mut P,
) -> Result<Schedule, ScheduleError> {
    if model.channels() == 0 {
        return Err(ScheduleError::NoChannels);
    }
    let base = Schedule::new(flows.hyperperiod(), model.channels(), model.node_count());
    run_fixed_priority_onto(flows, model, config, policy, base, 0)
}

/// The suffix form of the engine: flows `skip..n` are placed on top of
/// `base`, which must hold exactly the placements of flows `0..skip`. With
/// an empty `base` and `skip == 0` this *is* [`run_fixed_priority`]; see
/// [`Scheduler::schedule_onto`] for why the suffix run is byte-identical to
/// a full run.
pub(crate) fn run_fixed_priority_onto<P: PlacePolicy>(
    flows: &FlowSet,
    model: &NetworkModel,
    config: &SchedulerConfig,
    policy: &mut P,
    base: Schedule,
    skip: usize,
) -> Result<Schedule, ScheduleError> {
    if model.channels() == 0 {
        return Err(ScheduleError::NoChannels);
    }
    let horizon = flows.hyperperiod();
    if base.horizon() != horizon
        || base.channel_count() != model.channels()
        || base.node_count() != model.node_count()
    {
        return Err(ScheduleError::Inconsistent {
            reason: format!(
                "base schedule is {}x{}x{} but the flow set and model need {}x{}x{}",
                base.horizon(),
                base.channel_count(),
                base.node_count(),
                horizon,
                model.channels(),
                model.node_count()
            ),
        });
    }
    if skip > flows.len() {
        return Err(ScheduleError::Inconsistent {
            reason: format!("cannot skip {} of {} flows", skip, flows.len()),
        });
    }
    let metrics = wsan_obs::metrics_enabled().then(EngineMetrics::new);
    let _timed = metrics.as_ref().map(|m| {
        m.runs.inc();
        m.timer.start()
    });
    let _span = wsan_obs::span(
        wsan_obs::Level::Debug,
        "core.schedule",
        if wsan_obs::enabled(wsan_obs::Level::Debug) {
            vec![wsan_obs::kv("flows", flows.len()), wsan_obs::kv("horizon", horizon)]
        } else {
            Vec::new()
        },
    );
    let mut schedule = base;
    let attempts: u8 = if config.retries { 2 } else { 1 };
    for flow in flows.iter().skip(skip) {
        policy.begin_flow();
        let links: Vec<DirectedLink> = flow.links();
        // The job's transmission sequence: every link primary + retries.
        let seq: Vec<(DirectedLink, u8)> =
            links.iter().flat_map(|l| (0..attempts).map(move |a| (*l, a))).collect();
        let remaining_links: Vec<DirectedLink> = seq.iter().map(|(l, _)| *l).collect();
        for job in flow.jobs(horizon) {
            let d_i = job.deadline_slot() - 1; // last usable slot
            let mut prev_slot: Option<u32> = None;
            for (i, (link, attempt)) in seq.iter().enumerate() {
                let earliest = prev_slot.map_or(job.release_slot(), |p| p + 1);
                policy.begin_transmission();
                let req = PlaceRequest {
                    link: *link,
                    earliest,
                    deadline_slot: d_i,
                    remaining: &remaining_links[i + 1..],
                };
                let placed = {
                    let _place_timed = metrics.as_ref().map(|m| m.place_timer.start());
                    policy.place(&schedule, model, &req)
                };
                let Some((slot, offset)) = placed else {
                    if let Some(m) = &metrics {
                        m.misses.inc();
                    }
                    if wsan_obs::enabled(wsan_obs::Level::Debug) {
                        wsan_obs::event(
                            wsan_obs::Level::Debug,
                            "wsan_core::scheduler",
                            "deadline miss: flow set unschedulable",
                            &[
                                wsan_obs::kv("flow", flow.id().index()),
                                wsan_obs::kv("job", job.index()),
                            ],
                        );
                    }
                    policy.finish();
                    return Err(ScheduleError::Unschedulable {
                        flow: flow.id(),
                        job_index: job.index(),
                    });
                };
                if let Some(m) = &metrics {
                    m.placements.inc();
                }
                debug_assert!(slot >= earliest && slot <= d_i);
                schedule.place(
                    slot,
                    offset,
                    ScheduledTx {
                        flow: flow.id(),
                        job_index: job.index(),
                        link: *link,
                        seq: i as u16,
                        attempt: *attempt,
                    },
                );
                prev_slot = Some(slot);
            }
        }
    }
    policy.finish();
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_reserves_retries() {
        assert!(SchedulerConfig::default().retries);
    }
}
