//! Human-readable rendering of schedules.
//!
//! Prints the slot × channel-offset grid the way WirelessHART planning
//! documents draw it: one row per channel offset, one column per slot,
//! flows identified by their index. Reused cells show the number of
//! concurrent transmissions instead.

use crate::Schedule;
use std::fmt::Write as _;

/// Renders slots `[from, to)` of the schedule as an ASCII grid.
///
/// Cell legend: `.` empty, a flow index (mod 10) for exclusive cells,
/// `2`–`9` prefixed with `*` for reused cells (`*3` = three concurrent
/// transmissions). Wide schedules should be rendered in windows; the
/// header row labels every tenth slot.
///
/// # Panics
///
/// Panics if `from >= to` or `to` exceeds the horizon.
pub fn render_grid(schedule: &Schedule, from: u32, to: u32) -> String {
    assert!(from < to && to <= schedule.horizon(), "invalid slot window");
    let mut out = String::new();
    // header: tens markers
    let _ = write!(out, "{:>4} ", "ch\\t");
    for slot in from..to {
        if slot % 10 == 0 {
            let _ = write!(out, "{:<2}", (slot / 10) % 100);
        } else {
            out.push_str("  ");
        }
    }
    out.push('\n');
    for offset in 0..schedule.channel_count() {
        let _ = write!(out, "{offset:>4} ");
        for slot in from..to {
            let cell = schedule.cell(slot, offset);
            match cell.len() {
                0 => out.push_str(" ."),
                1 => {
                    let _ = write!(out, " {}", cell[0].flow.index() % 10);
                }
                k => {
                    let _ = write!(out, "*{}", k.min(9));
                }
            }
        }
        out.push('\n');
    }
    out
}

/// One-line textual summary of a schedule.
pub fn summary_line(schedule: &Schedule) -> String {
    let occupied = schedule.occupied_cells().count();
    let shared = schedule.occupied_cells().filter(|(_, _, c)| c.len() > 1).count();
    format!(
        "{} transmissions in {} cells ({} shared) over {} slots × {} channels",
        schedule.entry_count(),
        occupied,
        shared,
        schedule.horizon(),
        schedule.channel_count()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{NoReuse, ReuseAggressively, Scheduler};

    #[test]
    fn grid_shows_flows_and_reuse() {
        let (flows, reuse) = parallel_set(4, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let grid = render_grid(&schedule, 0, 10);
        // slot 0 holds all four primaries in one cell: a "*4" appears
        assert!(grid.contains("*4"), "expected a shared cell marker:\n{grid}");
        // one row per channel + header
        assert_eq!(grid.lines().count(), 1 + schedule.channel_count());
    }

    #[test]
    fn empty_cells_render_dots() {
        let (flows, reuse) = parallel_set(2, 4, 40, 20);
        let model = model_for(&reuse, 2);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let grid = render_grid(&schedule, 0, 20);
        assert!(grid.contains(" ."));
        assert!(grid.contains(" 0"));
        assert!(grid.contains(" 1"));
    }

    #[test]
    fn summary_counts_match() {
        let (flows, reuse) = parallel_set(3, 4, 40, 20);
        let model = model_for(&reuse, 2);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let line = summary_line(&schedule);
        assert!(line.contains("6 transmissions"));
        assert!(line.contains("(0 shared)"));
        assert!(line.contains("40 slots"));
    }

    #[test]
    #[should_panic(expected = "invalid slot window")]
    fn bad_window_panics() {
        let (flows, reuse) = parallel_set(2, 4, 40, 20);
        let model = model_for(&reuse, 2);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let _ = render_grid(&schedule, 30, 20);
    }
}
