//! The channel reuse constraints of §V-A and the `findSlot()` primitive.
//!
//! This is the scheduler hot path: every placement of every scheduler
//! funnels through [`find_slot`] → [`best_offset`] → the channel
//! constraint. The implementations here lean on the occupancy indexes
//! [`Schedule`] maintains —
//!
//! * candidate slots come from [`Schedule::free_slots`], which scans the
//!   two endpoint busy rows a 64-slot word at a time instead of testing
//!   slots one by one (and, for no-reuse placements, skips fully packed
//!   slots through the full-slot bitset),
//! * the channel constraint iterates the dense per-cell occupant-link
//!   slices ([`Schedule::cell_links`]) rather than the wider cell vecs,
//!   and reports the cell occupancy it already walked so [`best_offset`]
//!   does not fetch it a second time.
//!
//! The pre-optimization, slot-by-slot forms are preserved verbatim in
//! [`crate::reference`]; the proptest equivalence suite pins both paths to
//! identical results.

use crate::{NetworkModel, Rho, Schedule};
use wsan_net::DirectedLink;

/// Whether `link` may join the cell `(slot, offset)` under hop distance
/// `rho` — the *channel constraint* (§V-A, condition 2):
///
/// * `ρ = ∞`: the cell must be empty;
/// * `ρ < ∞`: for every scheduled `x→y` in the cell, the new sender `u`
///   must be at least `ρ` hops from `y`, and `x` at least `ρ` hops from the
///   new receiver `v`, on the channel reuse graph.
///
/// Transmission conflicts are checked separately ([`Schedule::conflicts`]).
pub fn channel_ok(
    schedule: &Schedule,
    model: &NetworkModel,
    slot: u32,
    offset: usize,
    link: DirectedLink,
    rho: Rho,
) -> bool {
    channel_fit(schedule, model, slot, offset, link, rho).is_some()
}

/// The channel constraint plus the tie-break key in one cell walk: returns
/// the cell's occupancy when `link` may join `(slot, offset)` under `rho`,
/// `None` when the constraint rejects it. [`best_offset`] ranks feasible
/// offsets by this occupancy, so returning it here avoids fetching the cell
/// length a second time.
pub(crate) fn channel_fit(
    schedule: &Schedule,
    model: &NetworkModel,
    slot: u32,
    offset: usize,
    link: DirectedLink,
    rho: Rho,
) -> Option<usize> {
    let occupants = schedule.cell_links(slot, offset);
    match rho {
        Rho::NoReuse => occupants.is_empty().then_some(0),
        Rho::AtLeast(h) => {
            let hops = model.hops();
            occupants
                .iter()
                .all(|other| {
                    hops.at_least(link.tx, other.rx, h) && hops.at_least(other.tx, link.rx, h)
                })
                .then_some(occupants.len())
        }
    }
}

/// Picks the best feasible channel offset in `slot` for `link` under `rho`:
/// the offset satisfying the channel constraint with the fewest scheduled
/// transmissions ("to reduce channel contention"), ties toward the lowest
/// offset. `None` if no offset is feasible.
pub fn best_offset(
    schedule: &Schedule,
    model: &NetworkModel,
    slot: u32,
    link: DirectedLink,
    rho: Rho,
) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (cell_len, offset)
    for offset in 0..schedule.channel_count() {
        let Some(len) = channel_fit(schedule, model, slot, offset, link, rho) else {
            continue;
        };
        if best.is_none_or(|(blen, _)| len < blen) {
            best = Some((len, offset));
            if len == 0 {
                break; // cannot do better than an empty cell
            }
        }
    }
    best.map(|(_, offset)| offset)
}

/// `findSlot()` of Algorithm 1: the earliest slot `s ∈ [earliest, latest]`
/// and channel offset `c` satisfying both the transmission-conflict
/// constraint and the channel constraint under `rho`.
///
/// Candidate slots are produced by the word-level
/// [`Schedule::free_slots`] scan; under `ρ = ∞` fully packed slots are
/// skipped outright (no offset of such a slot can accept a no-reuse
/// placement), so dense regions cost one bitset word per 64 slots.
///
/// Returns `None` when no slot in the window works — the caller treats that
/// as a deadline miss (or, in RC, as a cue to relax `ρ`).
pub fn find_slot(
    schedule: &Schedule,
    model: &NetworkModel,
    link: DirectedLink,
    earliest: u32,
    latest: u32,
    rho: Rho,
) -> Option<(u32, usize)> {
    // `Schedule::new` rejects empty grids, but guard the window arithmetic
    // anyway instead of underflowing `horizon - 1`.
    let last = schedule.horizon().checked_sub(1)?;
    let latest = latest.min(last);
    if earliest > latest {
        return None;
    }
    let skip_full = matches!(rho, Rho::NoReuse);
    for slot in schedule.free_slots(link.tx, link.rx, earliest, latest, skip_full) {
        if let Some(c) = best_offset(schedule, model, slot, link, rho) {
            return Some((slot, c));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduledTx;
    use wsan_flow::FlowId;
    use wsan_net::{NodeId, ReuseGraph};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn stx(a: usize, b: usize) -> ScheduledTx {
        ScheduledTx {
            flow: FlowId::new(0),
            job_index: 0,
            link: DirectedLink::new(n(a), n(b)),
            seq: 0,
            attempt: 0,
        }
    }

    /// Path 0-1-2-3-4-5: hop(0→5) = 5.
    fn path_model(channels: usize) -> NetworkModel {
        let edges: Vec<_> = (0..5).map(|i| (n(i), n(i + 1))).collect();
        NetworkModel::from_reuse_graph(&ReuseGraph::from_edges(6, &edges), channels)
    }

    #[test]
    fn no_reuse_requires_empty_cell() {
        let model = path_model(2);
        let mut s = Schedule::new(10, 2, 6);
        s.place(0, 0, stx(0, 1));
        let far = DirectedLink::new(n(4), n(5));
        assert!(!channel_ok(&s, &model, 0, 0, far, Rho::NoReuse));
        assert!(channel_ok(&s, &model, 0, 1, far, Rho::NoReuse));
    }

    #[test]
    fn channel_fit_reports_cell_occupancy() {
        let model = path_model(2);
        let mut s = Schedule::new(10, 2, 6);
        s.place(0, 0, stx(0, 1));
        s.place(0, 0, stx(5, 4));
        let cand = DirectedLink::new(n(0), n(1));
        assert_eq!(channel_fit(&s, &model, 0, 1, cand, Rho::NoReuse), Some(0));
        assert_eq!(channel_fit(&s, &model, 0, 0, cand, Rho::NoReuse), None);
        assert_eq!(channel_fit(&s, &model, 0, 0, cand, Rho::AtLeast(1)), Some(2));
    }

    #[test]
    fn reuse_respects_hop_distance_both_ways() {
        let model = path_model(1);
        let mut s = Schedule::new(10, 1, 6);
        s.place(0, 0, stx(0, 1));
        // candidate 4→5: sender 4 to receiver 1 = 3 hops; sender 0 to
        // receiver 5 = 5 hops. min = 3.
        let cand = DirectedLink::new(n(4), n(5));
        assert!(channel_ok(&s, &model, 0, 0, cand, Rho::AtLeast(3)));
        assert!(!channel_ok(&s, &model, 0, 0, cand, Rho::AtLeast(4)));
        // candidate 5→4: sender 5 to receiver 1 = 4; sender 0 to receiver 4 = 4.
        let cand2 = DirectedLink::new(n(5), n(4));
        assert!(channel_ok(&s, &model, 0, 0, cand2, Rho::AtLeast(4)));
        assert!(!channel_ok(&s, &model, 0, 0, cand2, Rho::AtLeast(5)));
    }

    #[test]
    fn reuse_checks_every_occupant() {
        let model = path_model(1);
        let mut s = Schedule::new(10, 1, 6);
        s.place(0, 0, stx(0, 1));
        s.place(0, 0, stx(5, 4)); // coexists with 0→1 at rho ≤ 4
                                  // now 2→3 is close to both occupants
        let cand = DirectedLink::new(n(2), n(3));
        assert!(!channel_ok(&s, &model, 0, 0, cand, Rho::AtLeast(2)));
    }

    #[test]
    fn best_offset_prefers_emptiest_cell() {
        let model = path_model(3);
        let mut s = Schedule::new(10, 3, 6);
        s.place(0, 0, stx(0, 1));
        // offsets 1 and 2 empty → lowest empty offset wins
        let cand = DirectedLink::new(n(4), n(5));
        assert_eq!(best_offset(&s, &model, 0, cand, Rho::NoReuse), Some(1));
    }

    #[test]
    fn best_offset_breaks_ties_among_occupied_cells() {
        let model = path_model(2);
        let mut s = Schedule::new(10, 2, 6);
        s.place(0, 0, stx(0, 1));
        s.place(0, 0, stx(4, 5)); // offset 0 holds 2 occupants (3+ hops apart)
        s.place(0, 1, stx(2, 3)); // offset 1 holds 1 occupant
                                  // A rho=1 candidate (distances ≥ 1 are trivially met by distinct
                                  // nodes) must pick offset 1, the cell with fewer occupants. The
                                  // candidate's own node-conflict is find_slot's concern, not
                                  // best_offset's, so reuse nodes 0→1 for the query.
        let cand = DirectedLink::new(n(0), n(1));
        assert_eq!(best_offset(&s, &model, 0, cand, Rho::AtLeast(1)), Some(1));
        // In an empty slot, the lowest empty offset wins.
        assert_eq!(best_offset(&s, &model, 5, cand, Rho::AtLeast(1)), Some(0));
    }

    #[test]
    #[should_panic(expected = "transmission conflict")]
    fn panicking_setup_is_detected() {
        // documents that the commented pitfall above really panics in debug
        let mut s = Schedule::new(10, 2, 6);
        s.place(0, 0, stx(0, 1));
        s.place(0, 1, stx(1, 2));
    }

    #[test]
    fn find_slot_skips_conflicts_and_full_cells() {
        let model = path_model(1);
        let mut s = Schedule::new(10, 1, 6);
        s.place(0, 0, stx(2, 3)); // slot 0: conflicts with 3→4
        s.place(1, 0, stx(0, 1)); // slot 1 cell occupied; 3→4 would need reuse
        let cand = DirectedLink::new(n(3), n(4));
        // NoReuse: slot 0 conflict, slot 1 cell occupied → slot 2
        assert_eq!(find_slot(&s, &model, cand, 0, 9, Rho::NoReuse), Some((2, 0)));
        // With reuse at rho=2: slot 1 occupant 0→1; sender 3 to receiver 1
        // = 2 hops; sender 0 to receiver 4 = 4 hops → feasible at slot 1.
        assert_eq!(find_slot(&s, &model, cand, 0, 9, Rho::AtLeast(2)), Some((1, 0)));
        // earliest bound respected
        assert_eq!(find_slot(&s, &model, cand, 5, 9, Rho::AtLeast(2)), Some((5, 0)));
    }

    #[test]
    fn find_slot_honours_latest_bound() {
        let model = path_model(1);
        let mut s = Schedule::new(10, 1, 6);
        for slot in 0..5 {
            s.place(slot, 0, stx(0, 1));
        }
        let cand = DirectedLink::new(n(1), n(2)); // conflicts with all of 0..5
        assert_eq!(find_slot(&s, &model, cand, 0, 4, Rho::NoReuse), None);
        assert_eq!(find_slot(&s, &model, cand, 0, 5, Rho::NoReuse), Some((5, 0)));
    }

    #[test]
    fn find_slot_clamps_latest_to_horizon() {
        let model = path_model(1);
        let s = Schedule::new(10, 1, 6);
        let cand = DirectedLink::new(n(0), n(1));
        assert_eq!(find_slot(&s, &model, cand, 0, 1_000_000, Rho::NoReuse), Some((0, 0)));
        assert_eq!(find_slot(&s, &model, cand, 20, 1_000_000, Rho::NoReuse), None);
    }

    #[test]
    fn find_slot_skips_packed_slots_only_without_reuse() {
        let model = path_model(1);
        let mut s = Schedule::new(10, 1, 6);
        s.place(0, 0, stx(0, 1)); // the single offset of slot 0 is taken
        let cand = DirectedLink::new(n(4), n(5));
        // no reuse: the packed slot is skipped at the bitset level
        assert_eq!(find_slot(&s, &model, cand, 0, 9, Rho::NoReuse), Some((1, 0)));
        // with reuse the packed slot is still a candidate
        assert_eq!(find_slot(&s, &model, cand, 0, 9, Rho::AtLeast(3)), Some((0, 0)));
    }
}
