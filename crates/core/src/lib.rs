//! Conservative channel reuse scheduling for real-time industrial WSANs —
//! the core contribution of the reproduced paper (ICDCS 2018).
//!
//! WirelessHART forbids *channel reuse*: within one gateway's network, a
//! dedicated TSCH slot carries at most one transmission per channel. That
//! protects reliability but caps a slot at `|M|` concurrent transmissions
//! and hurts schedulability. This crate implements the paper's middle road:
//!
//! * [`Schedule`] — a TSCH transmission schedule over one hyperperiod:
//!   each transmission is assigned a slot number and a channel offset,
//! * the *channel reuse constraints* of §V-A ([`constraints`]): transmission
//!   conflicts (shared half-duplex radios) and hop-distance-gated channel
//!   sharing on the reuse graph,
//! * *flow laxity* (Eq. 1, [`laxity`]): an estimate of how much further a
//!   flow's remaining transmissions can slip while still meeting the
//!   deadline,
//! * three fixed-priority schedulers behind the [`Scheduler`] trait:
//!   * [`NoReuse`] (NR) — standard WirelessHART, one transmission per
//!     channel per slot,
//!   * [`ReuseAggressively`] (RA) — reuse whenever the hop-based
//!     interference model allows (à la TASA),
//!   * [`ReuseConservatively`] (RC, Algorithm 1) — reuse *only when laxity
//!     would go negative*, starting from the largest hop distance (the
//!     reuse-graph diameter) and shrinking toward the floor `ρ_t` only as
//!     needed,
//! * schedule [`metrics`] (transmissions per channel, reuse hop counts —
//!   Figs. 4, 5, 9) and an independent post-hoc [`validate`] checker.
//!
//! The hot path ([`constraints`], [`laxity`]) runs word-level bitset scans
//! and rank caches; the pre-optimization slot-by-slot forms live on in
//! [`reference`] as the equivalence and benchmark baseline.
//!
//! # Example
//!
//! ```
//! use wsan_core::{NetworkModel, ReuseConservatively, Scheduler};
//! use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
//! use wsan_net::{testbeds, ChannelId, Prr};
//!
//! let topo = testbeds::wustl(1);
//! let channels = ChannelId::range(11, 14).unwrap();
//! let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
//! let model = NetworkModel::new(&topo, &channels);
//!
//! let cfg = FlowSetConfig::new(10, PeriodRange::new(0, 2).unwrap(), TrafficPattern::PeerToPeer);
//! let flows = FlowSetGenerator::new(7).generate(&comm, &cfg).unwrap();
//!
//! let rc = ReuseConservatively::new(2);
//! let schedule = rc.schedule(&flows, &model).expect("schedulable");
//! assert!(schedule.entry_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod constraints;
mod error;
pub mod export;
pub mod gateway;
pub mod laxity;
pub mod metrics;
mod model;
mod nr;
pub mod orchestra;
mod ra;
mod rc;
pub mod recovery;
pub mod reference;
pub mod render;
pub mod repair;
mod schedule;
mod scheduler;
pub mod shard;
mod transmission;
pub mod validate;

pub use error::ScheduleError;

pub use model::NetworkModel;
pub use nr::NoReuse;
pub use ra::ReuseAggressively;
pub use rc::{ReuseConservatively, ReuseTrigger, RhoReset};
pub use schedule::{Schedule, ScheduleEntry};
pub use scheduler::{Scheduler, SchedulerConfig};
pub use transmission::{Rho, ScheduledTx};

#[cfg(test)]
pub(crate) mod test_util {
    //! Hand-crafted networks and workloads for scheduler unit tests.

    use crate::NetworkModel;
    use wsan_flow::{priority, Flow, FlowId, FlowSet, Period};
    use wsan_net::{NodeId, ReuseGraph, Route};

    /// A path-graph reuse topology with `node_count` nodes.
    pub fn path_graph(node_count: usize) -> ReuseGraph {
        let edges: Vec<_> =
            (0..node_count - 1).map(|i| (NodeId::new(i), NodeId::new(i + 1))).collect();
        ReuseGraph::from_edges(node_count, &edges)
    }

    /// A model over `reuse` with `channels` channel offsets.
    pub fn model_for(reuse: &ReuseGraph, channels: usize) -> NetworkModel {
        NetworkModel::from_reuse_graph(reuse, channels)
    }

    /// `flow_count` flows all sharing the same multi-hop line
    /// `0 → 1 → … → node_count−1`: maximally conflicting traffic.
    pub fn line_set(
        flow_count: usize,
        node_count: usize,
        period: u32,
        deadline: u32,
    ) -> (FlowSet, ReuseGraph) {
        let route = Route::new((0..node_count).map(NodeId::new).collect());
        let flows = (0..flow_count)
            .map(|i| {
                Flow::new(
                    FlowId::new(i),
                    route.clone(),
                    Period::from_slots(period).expect("nonzero"),
                    deadline,
                )
                .expect("deadline ≤ period")
            })
            .collect();
        (priority::deadline_monotonic(flows, vec![]), path_graph(node_count))
    }

    /// `pairs` disjoint single-hop flows spread along a path graph with
    /// `stride` nodes between consecutive senders. With stride `k`, the
    /// minimum sender→other-receiver distance between neighboring pairs is
    /// `k − 1` reuse hops.
    pub fn parallel_set(
        pairs: usize,
        stride: usize,
        period: u32,
        deadline: u32,
    ) -> (FlowSet, ReuseGraph) {
        let node_count = (pairs - 1) * stride + 2;
        let flows = (0..pairs)
            .map(|i| {
                let a = NodeId::new(i * stride);
                let b = NodeId::new(i * stride + 1);
                Flow::new(
                    FlowId::new(i),
                    Route::new(vec![a, b]),
                    Period::from_slots(period).expect("nonzero"),
                    deadline,
                )
                .expect("deadline ≤ period")
            })
            .collect();
        (priority::deadline_monotonic(flows, vec![]), path_graph(node_count))
    }
}
