//! An Orchestra-style *autonomous* slotframe — the §II contrast case.
//!
//! Orchestra (Duquennoy et al., SenSys'15) needs no central scheduler: each
//! node derives its receive slot from its own identity, senders wake in the
//! receive slots of their next hops, and colliding transmissions simply
//! contend. The paper positions RC against exactly this trade-off:
//! "Orchestra incurs channel reuse in a best-effort manner, \[RC\] manages
//! channel reuse" (§II). This module implements the receiver-based unicast
//! slotframe so the autonomous approach can run on the same simulator and
//! workloads as NR/RA/RC (see `wsan_sim::AutonomousSimulator`).
//!
//! The slotframe is *stateless*: there is no admission, no deadline
//! awareness, and nothing to become unschedulable — packets queue and
//! retry every slotframe round until they are delivered or their deadline
//! passes. Reliability and latency are whatever contention leaves over.

use serde::{Deserialize, Serialize};
use wsan_net::NodeId;

/// A receiver-based autonomous unicast slotframe.
///
/// Node `v` listens in slot `hash(v) mod L` on channel offset
/// `hash'(v) mod m`; every node with a packet whose next hop is `v`
/// transmits in that slot. Shorter slotframes give more bandwidth and more
/// contention; Orchestra deployments typically use primes (7–47).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AutonomousSlotframe {
    slotframe_len: u32,
    channels: usize,
    rx_slot: Vec<u32>,
    rx_offset: Vec<usize>,
}

impl AutonomousSlotframe {
    /// Builds the receiver-based slotframe for `node_count` nodes with
    /// slotframe length `slotframe_len` over `channels` channel offsets.
    ///
    /// # Panics
    ///
    /// Panics if `slotframe_len` or `channels` is zero.
    pub fn receiver_based(node_count: usize, slotframe_len: u32, channels: usize) -> Self {
        assert!(slotframe_len >= 1, "slotframe needs at least one slot");
        assert!(channels >= 1, "slotframe needs at least one channel");
        let rx_slot =
            (0..node_count).map(|i| (hash(i as u64) % u64::from(slotframe_len)) as u32).collect();
        let rx_offset = (0..node_count)
            .map(|i| (hash(i as u64 ^ 0xABCD_EF12_3456_789A) % channels as u64) as usize)
            .collect();
        AutonomousSlotframe { slotframe_len, channels, rx_slot, rx_offset }
    }

    /// Slotframe length `L`.
    pub fn slotframe_len(&self) -> u32 {
        self.slotframe_len
    }

    /// Channel offsets available.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of nodes the frame was built for.
    pub fn node_count(&self) -> usize {
        self.rx_slot.len()
    }

    /// The slot (within the slotframe) in which `node` listens.
    pub fn rx_slot(&self, node: NodeId) -> u32 {
        self.rx_slot[node.index()]
    }

    /// The channel offset on which `node` listens.
    pub fn rx_offset(&self, node: NodeId) -> usize {
        self.rx_offset[node.index()]
    }

    /// Whether `node` listens in absolute slot `asn`.
    pub fn listens(&self, node: NodeId, asn: u64) -> bool {
        (asn % u64::from(self.slotframe_len)) as u32 == self.rx_slot(node)
    }
}

/// SplitMix64 — cheap deterministic hash for slot derivation.
fn hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_and_offsets_are_in_range() {
        let f = AutonomousSlotframe::receiver_based(60, 17, 4);
        for i in 0..60 {
            assert!(f.rx_slot(NodeId::new(i)) < 17);
            assert!(f.rx_offset(NodeId::new(i)) < 4);
        }
        assert_eq!(f.node_count(), 60);
    }

    #[test]
    fn derivation_is_deterministic_and_identity_based() {
        let a = AutonomousSlotframe::receiver_based(60, 17, 4);
        let b = AutonomousSlotframe::receiver_based(60, 17, 4);
        assert_eq!(a, b);
        // different nodes mostly land on different slots
        let distinct: std::collections::BTreeSet<u32> =
            (0..60).map(|i| a.rx_slot(NodeId::new(i))).collect();
        assert!(distinct.len() > 8, "hashing should spread receive slots");
    }

    #[test]
    fn listens_matches_modular_arithmetic() {
        let f = AutonomousSlotframe::receiver_based(10, 7, 2);
        let node = NodeId::new(3);
        let slot = f.rx_slot(node);
        assert!(f.listens(node, u64::from(slot)));
        assert!(f.listens(node, u64::from(slot) + 7 * 5));
        assert!(!f.listens(node, u64::from(slot) + 1));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_length_panics() {
        let _ = AutonomousSlotframe::receiver_based(4, 0, 2);
    }
}
