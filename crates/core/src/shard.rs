//! Multi-gateway sharded scheduling of city-scale plants.
//!
//! A single network manager cannot schedule a 10k-node plant as one
//! problem: the hop-matrix alone is quadratic and every admission would
//! touch the whole timeline. This module partitions a
//! [`Plant`](wsan_net::plants::Plant) into per-gateway *shards*, lets each
//! shard schedule independently (in parallel, on the campaign worker
//! pool — see `wsan_expr`), and stitches the per-shard schedules into one
//! whole-network schedule that provably respects the §V-A conservative
//! channel-reuse constraint:
//!
//! 1. **Partition** ([`plan`]): `k` gateway nodes are picked by seeded
//!    farthest-point traversal of the communication graph and every node
//!    joins its hop-nearest gateway (ties toward the lower gateway
//!    index). Graph-Voronoi regions grown this way are connected, so each
//!    shard can route its own flows.
//! 2. **Spectrum coloring**: two shards *conflict* when any cross-shard
//!    node pair is closer than the reuse floor `ρ_t` on the whole-plant
//!    reuse graph — exactly the §V-A test quantified over every
//!    transmission either shard could ever schedule. Conflicting shards
//!    get disjoint channel-offset blocks (greedy coloring); shards far
//!    enough apart *reuse the same block* — conservative channel reuse at
//!    shard granularity. Under NR (no reuse) every pair of shards
//!    conflicts and the spectrum is split `k` ways.
//! 3. **Per-shard scheduling** ([`build_problem`], [`schedule_shard`]):
//!    each shard schedules its own flow set over its offset block with an
//!    unmodified [`Scheduler`]. Its hop matrix holds *global* reuse
//!    distances restricted to the shard (an induced subgraph would
//!    overstate distances and un-conservatively allow reuse).
//! 4. **Stitch** ([`stitch`]): per-shard schedules are unrolled to the
//!    common hyperperiod and placed into one whole-network
//!    [`Schedule`], offsets translated by each shard's block base.
//! 5. **Validate** ([`validate_stitched`]): an independent whole-network
//!    pass re-checks every shared cell against the §V-A test on the
//!    whole-plant reuse graph, and every slot for node-level TDMA
//!    conflicts — proving the stitched schedule interference-free
//!    without trusting steps 1–4.

use crate::{NetworkModel, Schedule, ScheduleError, ScheduledTx, Scheduler, SchedulerConfig};
use wsan_flow::{
    FlowError, FlowId, FlowSet, FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern,
};
use wsan_net::parallel::parallel_map_with;
use wsan_net::plants::Plant;
use wsan_net::{ChannelSet, CommGraph, NodeId, Prr, UNREACHABLE};

/// Knobs of a sharded scheduling run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of gateways (= shards) to partition into.
    pub shards: usize,
    /// Base seed: drives gateway selection and per-shard flow generation.
    pub seed: u64,
    /// Flows generated per shard.
    pub flows_per_shard: usize,
    /// Harmonic period range of the generated flows.
    pub periods: PeriodRange,
    /// Traffic pattern of the generated flows.
    pub pattern: TrafficPattern,
    /// The reuse floor `ρ_t` the §V-A conflict test uses between shards
    /// (and the stitched validator re-checks). `None` means no reuse at
    /// all (NR): every shared cell is a violation and every pair of
    /// shards conflicts.
    pub reuse_floor: Option<u32>,
    /// Link-selection threshold for the communication graphs (paper: 0.9).
    pub prr_t: Prr,
}

impl ShardConfig {
    /// A configuration with the paper's defaults: periods `[2^0, 2^2]` s,
    /// peer-to-peer traffic, `PRR_t = 0.9`, reuse floor 2.
    ///
    /// # Panics
    ///
    /// Never — the default period range is valid.
    pub fn new(shards: usize, seed: u64, flows_per_shard: usize) -> Self {
        ShardConfig {
            shards,
            seed,
            flows_per_shard,
            periods: PeriodRange::new(0, 2).expect("constant range is valid"),
            pattern: TrafficPattern::PeerToPeer,
            reuse_floor: Some(2),
            prr_t: Prr::new(0.9).expect("0.9 is a valid PRR"),
        }
    }
}

/// Why a sharded run failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShardError {
    /// The configuration cannot be planned (zero shards, more shards than
    /// nodes, …).
    Config {
        /// What is wrong.
        reason: String,
    },
    /// The shard conflict graph needs more channel-offset blocks than
    /// there are channels.
    Channels {
        /// Colors the conflict graph required.
        colors: usize,
        /// Channels available to split.
        channels: usize,
    },
    /// Flow generation failed inside one shard.
    Flows {
        /// The shard index.
        shard: usize,
        /// The underlying flow error.
        source: FlowError,
    },
    /// Scheduling failed inside one shard.
    Schedule {
        /// The shard index.
        shard: usize,
        /// The underlying scheduling error.
        source: ScheduleError,
    },
    /// The per-shard schedules cannot be stitched.
    Stitch {
        /// What is wrong.
        reason: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Config { reason } => write!(f, "shard configuration invalid: {reason}"),
            ShardError::Channels { colors, channels } => write!(
                f,
                "shard conflict graph needs {colors} channel block(s) but only \
                 {channels} channel(s) are available"
            ),
            ShardError::Flows { shard, source } => {
                write!(f, "flow generation failed in shard {shard}: {source}")
            }
            ShardError::Schedule { shard, source } => {
                write!(f, "scheduling failed in shard {shard}: {source}")
            }
            ShardError::Stitch { reason } => write!(f, "cannot stitch shard schedules: {reason}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One shard of the partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Index of the shard within the plan.
    pub index: usize,
    /// The gateway node the shard grew from (a global node id).
    pub gateway: NodeId,
    /// The shard's nodes (global ids, ascending).
    pub nodes: Vec<NodeId>,
    /// Spectrum color: shards with equal color share a channel block.
    pub color: usize,
    /// First global channel offset of the shard's block.
    pub offset_base: usize,
    /// Width of the shard's channel block.
    pub offsets: usize,
    /// Maximum communication-graph hop distance from a member to the
    /// shard's gateway (on the *whole-plant* comm graph). Any two members
    /// `a, b` satisfy `d_reuse(a, b) ≤ d_comm(a, gw) + d_comm(gw, b) ≤
    /// 2 · comm_radius` (every comm edge is a reuse edge), so a capped
    /// distance extraction with `cap = 2 · comm_radius + 1` is provably
    /// exact for every intra-shard pair (DESIGN.md §16).
    pub comm_radius: u32,
}

/// A partition of a plant into per-gateway shards with a conflict-free
/// spectrum coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
    shard_of: Vec<u32>,
    /// Number of distinct spectrum colors used.
    pub color_count: usize,
    /// Total channels the coloring split.
    pub channels: usize,
    /// The reuse floor the conflict test used (`None` = NR).
    pub reuse_floor: Option<u32>,
}

impl ShardPlan {
    /// The shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Shard index of `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// Number of nodes across all shards.
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }
}

/// Splitmix64-style mixer deriving independent sub-seeds.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut x = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Partitions `plant` into `cfg.shards` per-gateway shards and colors the
/// shard conflict graph into channel-offset blocks.
///
/// The per-gateway Voronoi sweeps fan out over up to `jobs` workers
/// (`0` = all cores); the plan is byte-identical for any `jobs`.
///
/// # Errors
///
/// [`ShardError::Config`] for degenerate configurations and
/// [`ShardError::Channels`] when conflicting shards need more blocks than
/// `channels` provides.
pub fn plan(
    plant: &Plant,
    channels: &ChannelSet,
    cfg: &ShardConfig,
    jobs: usize,
) -> Result<ShardPlan, ShardError> {
    let n = plant.node_count();
    if cfg.shards == 0 {
        return Err(ShardError::Config { reason: "at least one shard is required".to_string() });
    }
    if cfg.shards > n {
        return Err(ShardError::Config {
            reason: format!("{} shards but only {n} nodes", cfg.shards),
        });
    }
    let comm = plant.comm_graph(channels, cfg.prr_t);
    if !comm.is_connected() {
        return Err(ShardError::Config {
            reason: "communication graph over the selected channels is disconnected".to_string(),
        });
    }

    // Seeded farthest-point gateway selection on the communication graph.
    // The comm graph is connected, so a cap of n never truncates a wave.
    let mut gateways = vec![NodeId::new((mix(cfg.seed, 0x67617465) % n as u64) as usize)];
    while gateways.len() < cfg.shards {
        let dist = comm.multi_bfs_capped(&gateways, n as u32);
        let far = (0..n).max_by_key(|&i| (dist[i], std::cmp::Reverse(i))).expect("plant has nodes");
        gateways.push(NodeId::new(far));
    }

    // Graph-Voronoi assignment: nearest gateway by hops, ties toward the
    // lower gateway index. Regions grown this way are connected. The
    // per-gateway sweeps are independent, so they fan out over the pool;
    // assignment consumes the rows in gateway order either way.
    let per_gateway: Vec<Vec<u32>> =
        parallel_map_with(gateways.len(), jobs, |s| comm.bfs_from(gateways[s]));
    let mut shard_of = vec![0u32; n];
    let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.shards];
    let mut comm_radius = vec![0u32; cfg.shards];
    for v in 0..n {
        let best =
            (0..cfg.shards).min_by_key(|&s| (per_gateway[s][v], s)).expect("at least one shard");
        shard_of[v] = best as u32;
        nodes[best].push(NodeId::new(v));
        comm_radius[best] = comm_radius[best].max(per_gateway[best][v]);
    }

    // Shard conflict graph: shards whose node sets come closer than the
    // reuse floor on the whole-plant reuse graph can interfere (§V-A
    // quantified over every possible cross-shard transmission pair).
    let reuse = plant.reuse_graph(channels);
    let mut conflicts = vec![vec![false; cfg.shards]; cfg.shards];
    match cfg.reuse_floor {
        None => {
            for (s, row) in conflicts.iter_mut().enumerate() {
                for (t, cell) in row.iter_mut().enumerate() {
                    *cell = s != t;
                }
            }
        }
        Some(rho) if rho > 0 => {
            // The test only asks `dist < rho`, so the wave is truncated at
            // depth rho — it never visits nodes beyond the shard's
            // rho-neighborhood (distances ≥ rho read back as rho).
            for s in 0..cfg.shards {
                let dist = reuse.multi_bfs_capped(&nodes[s], rho);
                for v in 0..n {
                    let t = shard_of[v] as usize;
                    if t != s && dist[v] < rho {
                        conflicts[s][t] = true;
                        conflicts[t][s] = true;
                    }
                }
            }
        }
        Some(_) => {}
    }

    // Greedy coloring in shard-index order.
    let mut colors = vec![usize::MAX; cfg.shards];
    let mut color_count = 0usize;
    for s in 0..cfg.shards {
        let mut used = vec![false; color_count + 1];
        for t in 0..s {
            if conflicts[s][t] && colors[t] < used.len() {
                used[colors[t]] = true;
            }
        }
        let c = (0..=color_count).find(|&c| !used[c]).expect("one color is always free");
        colors[s] = c;
        color_count = color_count.max(c + 1);
    }

    let m = channels.len();
    let width = m / color_count;
    if width == 0 {
        return Err(ShardError::Channels { colors: color_count, channels: m });
    }

    let shards = nodes
        .into_iter()
        .enumerate()
        .map(|(index, nodes)| Shard {
            index,
            gateway: gateways[index],
            nodes,
            color: colors[index],
            offset_base: colors[index] * width,
            offsets: width,
            comm_radius: comm_radius[index],
        })
        .collect();
    Ok(ShardPlan { shards, shard_of, color_count, channels: m, reuse_floor: cfg.reuse_floor })
}

/// One shard's self-contained scheduling problem.
#[derive(Debug)]
pub struct ShardProblem {
    /// Index of the shard within its plan.
    pub shard: usize,
    /// The shard's generated flow set (local node ids).
    pub flows: FlowSet,
    /// Scheduler inputs: whole-plant reuse distances restricted to the
    /// shard, and the shard's channel-block width.
    pub model: NetworkModel,
    /// Local dense node id → global plant node id.
    pub local_to_global: Vec<NodeId>,
    /// First global channel offset of the shard's block.
    pub offset_base: usize,
}

/// Builds shard `index`'s scheduling problem: local communication graph,
/// globally-derived hop distances, and a seeded flow set.
///
/// Deterministic in `(plant, plan, cfg, index)` — safe to run on any
/// worker of a parallel pool. `jobs` bounds the workers of the internal
/// distance extraction (`0` = all cores) and never changes the result.
///
/// # Errors
///
/// [`ShardError::Flows`] when flow generation fails (e.g. a shard too
/// small to host `cfg.flows_per_shard` routable flows).
pub fn build_problem(
    plant: &Plant,
    channels: &ChannelSet,
    plan: &ShardPlan,
    cfg: &ShardConfig,
    index: usize,
    jobs: usize,
) -> Result<ShardProblem, ShardError> {
    let shard = &plan.shards[index];
    let locals = &shard.nodes;
    let n_local = locals.len();
    let mut global_to_local = vec![u32::MAX; plant.node_count()];
    for (l, g) in locals.iter().enumerate() {
        global_to_local[g.index()] = l as u32;
    }

    // Local communication graph: the plant comm edges with both endpoints
    // inside the shard.
    let t = cfg.prr_t.value() as f32;
    let mut comm_edges = Vec::new();
    for link in plant.links() {
        let (la, lb) = (global_to_local[link.a.index()], global_to_local[link.b.index()]);
        if la == u32::MAX || lb == u32::MAX {
            continue;
        }
        let good = channels
            .iter()
            .all(|ch| link.prr_ab[ch.band_index()] >= t && link.prr_ba[ch.band_index()] >= t);
        if good {
            comm_edges.push((NodeId::new(la as usize), NodeId::new(lb as usize)));
        }
    }
    let comm = CommGraph::from_edges(n_local, &comm_edges);

    // Hop distances: *global* reuse distances restricted to the shard. An
    // induced-subgraph matrix would overstate distances (paths through
    // neighboring shards are invisible) and let RC/RA reuse
    // un-conservatively. The capped extraction with `cap = 2·comm_radius
    // + 1` is provably exact for every intra-shard pair (see
    // [`Shard::comm_radius`]), so the resulting schedule is byte-identical
    // to one built from unbounded whole-plant BFS — at a fraction of the
    // cost, since each wave stops at the shard's reuse neighborhood.
    let reuse = plant.reuse_graph(channels);
    let cap = shard.comm_radius.saturating_mul(2).saturating_add(1);
    let hops = reuse.capped_hops_restricted(locals, cap, jobs);
    debug_assert!(
        hops.diameter() < cap,
        "intra-shard distance reached the cap, violating the radius bound"
    );
    let model = NetworkModel::from_capped(hops, n_local, shard.offsets);

    let mut generator = FlowSetGenerator::new(mix(cfg.seed, 0x666c_6f77 ^ index as u64));
    let flow_cfg = FlowSetConfig {
        flow_count: cfg.flows_per_shard,
        periods: cfg.periods,
        pattern: cfg.pattern,
        access_points: 2,
    };
    let flows = generator
        .generate(&comm, &flow_cfg)
        .map_err(|source| ShardError::Flows { shard: index, source })?;

    Ok(ShardProblem {
        shard: index,
        flows,
        model,
        local_to_global: locals.clone(),
        offset_base: shard.offset_base,
    })
}

/// Schedules one shard's problem with an unmodified [`Scheduler`].
///
/// # Errors
///
/// [`ShardError::Schedule`] when the shard is unschedulable.
pub fn schedule_shard(
    problem: &ShardProblem,
    scheduler: &dyn Scheduler,
    config: &SchedulerConfig,
) -> Result<Schedule, ShardError> {
    scheduler
        .schedule_with(&problem.flows, &problem.model, config)
        .map_err(|source| ShardError::Schedule { shard: problem.shard, source })
}

/// One shard's contribution to the stitched whole-network schedule.
///
/// Serializable so a parallel campaign pool can hand parts back to the
/// (ordered, deterministic) consumer thread.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ShardPart {
    /// Index of the shard within its plan.
    pub shard: usize,
    /// The shard-local schedule (local node ids, block-local offsets).
    pub schedule: Schedule,
    /// Local dense node id → global plant node id.
    pub local_to_global: Vec<NodeId>,
    /// First global channel offset of the shard's block.
    pub offset_base: usize,
    /// Number of flows the shard scheduled (for global flow re-tagging).
    pub flow_count: usize,
}

/// Stitches per-shard schedules into one whole-network [`Schedule`].
///
/// Every shard schedule is unrolled to the common hyperperiod (the lcm of
/// the shard horizons — with the paper's harmonic periods, simply the
/// largest), node ids and channel offsets are translated to global, and
/// flow ids are re-tagged with a per-shard base so they stay unique.
/// Iterating shards and entries in order makes the result independent of
/// how the per-shard schedules were computed (sequentially or on a pool).
///
/// # Errors
///
/// [`ShardError::Stitch`] on dimension mismatches or a hyperperiod blowup
/// (non-harmonic horizons).
pub fn stitch(
    node_count: usize,
    channels: usize,
    parts: &[ShardPart],
) -> Result<Schedule, ShardError> {
    if parts.is_empty() {
        return Err(ShardError::Stitch { reason: "no shard schedules".to_string() });
    }
    let mut horizon = 1u64;
    for part in parts {
        let h = u64::from(part.schedule.horizon());
        let g = gcd(horizon, h);
        horizon = horizon / g * h;
        if horizon > (1 << 20) {
            return Err(ShardError::Stitch {
                reason: format!("stitched hyperperiod {horizon} exceeds 2^20 slots"),
            });
        }
        if part.offset_base + part.schedule.channel_count() > channels {
            return Err(ShardError::Stitch {
                reason: format!(
                    "shard {} offsets {}..{} exceed the {channels}-channel band",
                    part.shard,
                    part.offset_base,
                    part.offset_base + part.schedule.channel_count()
                ),
            });
        }
    }
    let horizon = horizon as u32;
    let mut stitched = Schedule::new(horizon, channels, node_count);
    let mut flow_base = 0usize;
    for part in parts {
        let h = part.schedule.horizon();
        for entry in part.schedule.entries() {
            let link = wsan_net::DirectedLink::new(
                part.local_to_global[entry.tx.link.tx.index()],
                part.local_to_global[entry.tx.link.rx.index()],
            );
            let tx = ScheduledTx {
                flow: FlowId::new(flow_base + entry.tx.flow.index()),
                job_index: entry.tx.job_index,
                link,
                seq: entry.tx.seq,
                attempt: entry.tx.attempt,
            };
            let mut slot = entry.slot;
            while slot < horizon {
                stitched.place(slot, part.offset_base + entry.offset, tx);
                slot += h;
            }
        }
        flow_base += part.flow_count;
    }
    Ok(stitched)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// One whole-network interference violation found by the stitched
/// validator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StitchViolation {
    /// Two transmissions in the same slot share a node (TDMA conflict).
    NodeConflict {
        /// The slot.
        slot: u32,
    },
    /// A shared cell violates the §V-A hop-distance test (or exists at
    /// all under NR).
    ChannelConflict {
        /// The slot.
        slot: u32,
        /// The channel offset.
        offset: usize,
        /// The smallest cross-pair hop distance observed in the cell.
        observed: u32,
    },
}

/// Whole-network validator: proves a stitched schedule interference-free
/// against the plant itself, without trusting the partition, coloring, or
/// stitching that produced it.
///
/// Checks every slot for node-level TDMA conflicts and every shared
/// `(slot, offset)` cell against the §V-A conservative test on the
/// whole-plant reuse graph: all concurrent pairs `a, b` must satisfy
/// `min(hops(a.tx, b.rx), hops(b.tx, a.rx)) ≥ reuse_floor`. With
/// `reuse_floor = None` (NR) any shared cell is a violation.
///
/// # Errors
///
/// The list of violations, if any.
pub fn validate_stitched(
    plant: &Plant,
    channels: &ChannelSet,
    reuse_floor: Option<u32>,
    schedule: &Schedule,
) -> Result<(), Vec<StitchViolation>> {
    let mut violations = Vec::new();

    // TDMA: a node participates in at most one transmission per slot.
    let mut by_slot: std::collections::BTreeMap<u32, Vec<wsan_net::DirectedLink>> =
        std::collections::BTreeMap::new();
    for (slot, _, cell) in schedule.occupied_cells() {
        by_slot.entry(slot).or_default().extend(cell.iter().map(|tx| tx.link));
    }
    for (&slot, links) in &by_slot {
        'outer: for (i, a) in links.iter().enumerate() {
            for b in &links[i + 1..] {
                if a.conflicts_with(*b) {
                    violations.push(StitchViolation::NodeConflict { slot });
                    break 'outer;
                }
            }
        }
    }

    // §V-A: shared cells must keep every cross pair at or beyond the
    // reuse floor on the whole-plant reuse graph. Distances are computed
    // by BFS from each distinct transmitter that appears in a shared
    // cell, *truncated at the reuse floor* — the test only asks
    // `dist < rho`, and a rho-capped wave (distances ≥ rho saturate to
    // rho) answers it exactly while visiting only each transmitter's
    // rho-neighborhood. No quadratic whole-plant hop matrix is needed.
    let reuse = plant.reuse_graph(channels);
    let mut dist_from: std::collections::BTreeMap<NodeId, Vec<u32>> =
        std::collections::BTreeMap::new();
    for (slot, offset, cell) in schedule.occupied_cells() {
        if cell.len() < 2 {
            continue;
        }
        let Some(rho) = reuse_floor else {
            violations.push(StitchViolation::ChannelConflict { slot, offset, observed: 0 });
            continue;
        };
        let mut worst = UNREACHABLE;
        for (i, a) in cell.iter().enumerate() {
            for b in &cell[i + 1..] {
                for (src, dst) in [(a.link.tx, b.link.rx), (b.link.tx, a.link.rx)] {
                    let dist =
                        dist_from.entry(src).or_insert_with(|| reuse.multi_bfs_capped(&[src], rho));
                    worst = worst.min(dist[dst.index()]);
                }
            }
        }
        if worst < rho {
            violations.push(StitchViolation::ChannelConflict { slot, offset, observed: worst });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReuseConservatively;
    use wsan_net::plants::{generate, PlantConfig};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::ChannelId;

    fn test_plant() -> Plant {
        let cfg = PlantConfig {
            name: "shard-test".to_string(),
            buildings_x: 2,
            buildings_y: 2,
            floors: 2,
            nodes_per_floor: 10,
            building_width_m: 40.0,
            building_depth_m: 20.0,
            street_gap_m: 12.0,
            model: PropagationModel::default(),
            channel_offset_sigma_db: 1.5,
        };
        generate(&cfg, 1)
    }

    fn schedule_all(
        plant: &Plant,
        channels: &ChannelSet,
        cfg: &ShardConfig,
    ) -> (ShardPlan, Schedule) {
        let plan = plan(plant, channels, cfg, 1).unwrap();
        let scheduler = ReuseConservatively::new(cfg.reuse_floor.unwrap_or(2));
        let sched_cfg = SchedulerConfig::default();
        let parts: Vec<ShardPart> = (0..cfg.shards)
            .map(|i| {
                let problem = build_problem(plant, channels, &plan, cfg, i, 1).unwrap();
                let schedule = schedule_shard(&problem, &scheduler, &sched_cfg).unwrap();
                ShardPart {
                    shard: i,
                    flow_count: problem.flows.len(),
                    local_to_global: problem.local_to_global.clone(),
                    offset_base: problem.offset_base,
                    schedule,
                }
            })
            .collect();
        let stitched = stitch(plant.node_count(), channels.len(), &parts).unwrap();
        (plan, stitched)
    }

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let plant = test_plant();
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(4, 7, 4);
        let plan = plan(&plant, &channels, &cfg, 1).unwrap();
        let mut seen = vec![0usize; plant.node_count()];
        for shard in plan.shards() {
            assert!(!shard.nodes.is_empty(), "shard {} is empty", shard.index);
            for &node in &shard.nodes {
                seen[node.index()] += 1;
                assert_eq!(plan.shard_of(node), shard.index);
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "partition must be exact");
    }

    #[test]
    fn conflicting_shards_get_disjoint_offset_blocks() {
        let plant = test_plant();
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(4, 3, 4);
        let plan = plan(&plant, &channels, &cfg, 1).unwrap();
        for a in plan.shards() {
            for b in plan.shards() {
                if a.index != b.index && a.color != b.color {
                    let a_range = a.offset_base..a.offset_base + a.offsets;
                    assert!(
                        !a_range.contains(&b.offset_base),
                        "blocks of different colors overlap"
                    );
                }
            }
        }
    }

    #[test]
    fn nr_splits_the_spectrum_k_ways() {
        let plant = test_plant();
        let channels = ChannelId::all();
        let mut cfg = ShardConfig::new(4, 3, 4);
        cfg.reuse_floor = None;
        let plan = plan(&plant, &channels, &cfg, 1).unwrap();
        assert_eq!(plan.color_count, 4);
        assert!(plan.shards().iter().all(|s| s.offsets == 4));
    }

    #[test]
    fn stitched_schedule_validates_whole_network() {
        let plant = test_plant();
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(3, 5, 4);
        let (plan, stitched) = schedule_all(&plant, &channels, &cfg);
        assert!(plan.color_count >= 1);
        validate_stitched(&plant, &channels, cfg.reuse_floor, &stitched)
            .expect("stitched schedule must be interference-free");
        assert!(stitched.entry_count() > 0);
    }

    #[test]
    fn validator_rejects_a_forged_close_reuse() {
        let plant = test_plant();
        let channels = ChannelId::all();
        // forge a schedule sharing one cell between two transmissions whose
        // endpoints are all direct reuse neighbors — §V-A distance 1 < ρ_t = 2
        let reuse = plant.reuse_graph(&channels);
        let hub = (0..plant.node_count())
            .map(NodeId::new)
            .find(|&v| reuse.degree(v) >= 3)
            .expect("a plant hub with three reuse neighbors exists");
        let near = reuse.neighbors(hub);
        let a = wsan_net::DirectedLink::new(hub, near[0]);
        let b = wsan_net::DirectedLink::new(near[1], near[2]);
        let mut forged = Schedule::new(4, channels.len(), plant.node_count());
        for (flow, link) in [(0, a), (1, b)] {
            forged.place(
                0,
                0,
                ScheduledTx { flow: FlowId::new(flow), job_index: 0, link, seq: 0, attempt: 0 },
            );
        }
        let violations = validate_stitched(&plant, &channels, Some(2), &forged).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, StitchViolation::ChannelConflict { observed: 1, .. })));
    }

    #[test]
    fn too_many_conflicting_shards_is_a_channels_error() {
        let plant = test_plant();
        // 2 channels but NR over 3 shards needs 3 disjoint blocks
        let channels = ChannelId::range(11, 12).unwrap();
        let mut cfg = ShardConfig::new(3, 1, 2);
        cfg.reuse_floor = None;
        match plan(&plant, &channels, &cfg, 1) {
            Err(ShardError::Channels { colors, channels }) => {
                assert_eq!(colors, 3);
                assert_eq!(channels, 2);
            }
            other => panic!("expected Channels error, got {other:?}"),
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let plant = test_plant();
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(4, 9, 4);
        assert_eq!(
            plan(&plant, &channels, &cfg, 1).unwrap(),
            plan(&plant, &channels, &cfg, 4).unwrap()
        );
    }
}
