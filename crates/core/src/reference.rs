//! The pre-optimization scheduler hot path, preserved as the equivalence
//! and performance baseline.
//!
//! Everything here computes slot by slot and cell by cell, exactly as the
//! seed implementation did before the word-level rewrite of
//! [`crate::constraints`] and [`crate::laxity`]:
//!
//! * [`channel_ok`] / [`best_offset`] / [`find_slot`] — linear slot scans
//!   over the full cell vectors (hop matrix re-fetched per occupant, cell
//!   length fetched separately, no full-slot skipping),
//! * [`conflict_slot_count`] — one busy-bit probe per slot of the range
//!   (deliberately *more* naive than the seed's word popcount, so it is an
//!   independent oracle for both the word-level and the rank-cached paths),
//! * [`flow_laxity`] — Eq. 1 over [`conflict_slot_count`],
//! * [`NoReuseRef`] / [`ReuseAggressivelyRef`] / [`ReuseConservativelyRef`]
//!   — the three schedulers driven entirely by the reference primitives.
//!
//! The proptest equivalence suite (`tests/proptest_invariants.rs`) pins the
//! optimized and reference paths to bit-identical answers, and the
//! `scheduler` bench + `sched_bench` binary measure the speedup of the
//! optimized path against this module.

use crate::scheduler::{run_fixed_priority, PlacePolicy, PlaceRequest};
use crate::{NetworkModel, Rho, Schedule, ScheduleError, Scheduler, SchedulerConfig};
use wsan_flow::FlowSet;
use wsan_net::{DirectedLink, NodeId};

/// Slot-by-slot form of [`crate::constraints::channel_ok`] (seed shape:
/// iterates the full cell vec, re-fetching the hop matrix per occupant).
pub fn channel_ok(
    schedule: &Schedule,
    model: &NetworkModel,
    slot: u32,
    offset: usize,
    link: DirectedLink,
    rho: Rho,
) -> bool {
    let cell = schedule.cell(slot, offset);
    match rho {
        Rho::NoReuse => cell.is_empty(),
        Rho::AtLeast(h) => cell.iter().all(|other| {
            let hops = model.hops();
            hops.at_least(link.tx, other.link.rx, h) && hops.at_least(other.link.tx, link.rx, h)
        }),
    }
}

/// Seed form of [`crate::constraints::best_offset`]: checks the constraint
/// and then fetches the cell length in a second lookup.
pub fn best_offset(
    schedule: &Schedule,
    model: &NetworkModel,
    slot: u32,
    link: DirectedLink,
    rho: Rho,
) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (cell_len, offset)
    for offset in 0..schedule.channel_count() {
        if !channel_ok(schedule, model, slot, offset, link, rho) {
            continue;
        }
        let len = schedule.cell_len(slot, offset);
        if best.is_none_or(|(blen, _)| len < blen) {
            best = Some((len, offset));
            if len == 0 {
                break;
            }
        }
    }
    best.map(|(_, offset)| offset)
}

/// Seed form of [`crate::constraints::find_slot`]: tests every slot of the
/// window one at a time.
pub fn find_slot(
    schedule: &Schedule,
    model: &NetworkModel,
    link: DirectedLink,
    earliest: u32,
    latest: u32,
    rho: Rho,
) -> Option<(u32, usize)> {
    let last = schedule.horizon().checked_sub(1)?;
    let latest = latest.min(last);
    let mut s = earliest;
    while s <= latest {
        if !schedule.conflicts(s, link.tx, link.rx) {
            if let Some(c) = best_offset(schedule, model, s, link, rho) {
                return Some((s, c));
            }
        }
        s += 1;
    }
    None
}

/// One busy-bit probe per slot of `[from, to]` — the fully naive oracle for
/// [`Schedule::conflict_slot_count`] and the rank-cached counterpart.
pub fn conflict_slot_count(schedule: &Schedule, a: NodeId, b: NodeId, from: u32, to: u32) -> u32 {
    if from > to || schedule.horizon() == 0 {
        return 0;
    }
    let to = to.min(schedule.horizon() - 1);
    let mut count = 0;
    let mut slot = from;
    while slot <= to {
        if schedule.node_busy_in_slot(a, slot) || schedule.node_busy_in_slot(b, slot) {
            count += 1;
        }
        slot += 1;
    }
    count
}

/// Eq. 1 over the naive [`conflict_slot_count`].
pub fn flow_laxity(
    schedule: &Schedule,
    slot: u32,
    deadline_slot: u32,
    remaining: &[DirectedLink],
) -> i64 {
    let slots_left = i64::from(deadline_slot) - i64::from(slot);
    let mut conflict_total: i64 = 0;
    if slot < deadline_slot {
        for t in remaining {
            conflict_total +=
                i64::from(conflict_slot_count(schedule, t.tx, t.rx, slot + 1, deadline_slot));
        }
    }
    slots_left - conflict_total - remaining.len() as i64
}

/// [`crate::NoReuse`] driven by the reference primitives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoReuseRef;

impl NoReuseRef {
    /// Creates the reference NR scheduler.
    pub fn new() -> Self {
        NoReuseRef
    }
}

struct NrRefPolicy;

impl PlacePolicy for NrRefPolicy {
    fn place(
        &mut self,
        schedule: &Schedule,
        model: &NetworkModel,
        req: &PlaceRequest<'_>,
    ) -> Option<(u32, usize)> {
        find_slot(schedule, model, req.link, req.earliest, req.deadline_slot, Rho::NoReuse)
    }
}

impl Scheduler for NoReuseRef {
    fn name(&self) -> &'static str {
        "NR-ref"
    }

    fn schedule_with(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority(flows, model, config, &mut NrRefPolicy)
    }
}

/// [`crate::ReuseAggressively`] driven by the reference primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseAggressivelyRef {
    rho: u32,
}

impl ReuseAggressivelyRef {
    /// Creates the reference RA scheduler with reuse hop distance `rho`.
    ///
    /// # Panics
    ///
    /// Panics if `rho == 0`.
    pub fn new(rho: u32) -> Self {
        assert!(rho >= 1, "reuse hop distance must be at least 1");
        ReuseAggressivelyRef { rho }
    }
}

struct RaRefPolicy {
    rho: Rho,
}

impl PlacePolicy for RaRefPolicy {
    fn place(
        &mut self,
        schedule: &Schedule,
        model: &NetworkModel,
        req: &PlaceRequest<'_>,
    ) -> Option<(u32, usize)> {
        find_slot(schedule, model, req.link, req.earliest, req.deadline_slot, self.rho)
    }
}

impl Scheduler for ReuseAggressivelyRef {
    fn name(&self) -> &'static str {
        "RA-ref"
    }

    fn schedule_with(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority(flows, model, config, &mut RaRefPolicy { rho: Rho::AtLeast(self.rho) })
    }
}

/// [`crate::ReuseConservatively`] (Algorithm 1) driven by the reference
/// primitives — the seed inner loop: a fresh full-window `findSlot` scan
/// per `ρ` value, laxity recounted from scratch each time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseConservativelyRef {
    rho_t: u32,
    reset: crate::RhoReset,
    trigger: crate::ReuseTrigger,
}

impl ReuseConservativelyRef {
    /// Creates the reference RC scheduler with minimum reuse hop distance
    /// `rho_t`, resetting `ρ` per transmission.
    ///
    /// # Panics
    ///
    /// Panics if `rho_t == 0`.
    pub fn new(rho_t: u32) -> Self {
        assert!(rho_t >= 1, "minimum reuse hop distance must be at least 1");
        ReuseConservativelyRef {
            rho_t,
            reset: crate::RhoReset::default(),
            trigger: crate::ReuseTrigger::default(),
        }
    }

    /// Selects when `ρ` resets to `∞` (mirrors
    /// [`crate::ReuseConservatively::with_reset`]).
    pub fn with_reset(mut self, reset: crate::RhoReset) -> Self {
        self.reset = reset;
        self
    }

    /// Selects the reuse trigger (mirrors
    /// [`crate::ReuseConservatively::with_trigger`]).
    pub fn with_trigger(mut self, trigger: crate::ReuseTrigger) -> Self {
        self.trigger = trigger;
        self
    }
}

struct RcRefPolicy {
    rho_t: u32,
    reset: crate::RhoReset,
    trigger: crate::ReuseTrigger,
    rho: Rho,
}

impl PlacePolicy for RcRefPolicy {
    fn begin_flow(&mut self) {
        self.rho = Rho::NoReuse;
    }

    fn begin_transmission(&mut self) {
        if self.reset == crate::RhoReset::PerTransmission {
            self.rho = Rho::NoReuse;
        }
    }

    fn place(
        &mut self,
        schedule: &Schedule,
        model: &NetworkModel,
        req: &PlaceRequest<'_>,
    ) -> Option<(u32, usize)> {
        let mut found: Option<(u32, usize)> = None;
        loop {
            let candidate =
                find_slot(schedule, model, req.link, req.earliest, req.deadline_slot, self.rho);
            if let Some((slot, offset)) = candidate {
                found = Some((slot, offset));
                let good_enough = match self.trigger {
                    crate::ReuseTrigger::NegativeLaxity => {
                        flow_laxity(schedule, slot, req.deadline_slot, req.remaining) >= 0
                    }
                    crate::ReuseTrigger::DeadlineMissOnly => true,
                };
                if good_enough {
                    return found;
                }
            }
            match self.rho.step_down(model.lambda_r(), self.rho_t) {
                Some(next) => self.rho = next,
                None => return found,
            }
        }
    }
}

impl Scheduler for ReuseConservativelyRef {
    fn name(&self) -> &'static str {
        "RC-ref"
    }

    fn schedule_with(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
    ) -> Result<Schedule, ScheduleError> {
        let mut policy = RcRefPolicy {
            rho_t: self.rho_t,
            reset: self.reset,
            trigger: self.trigger,
            rho: Rho::NoReuse,
        };
        run_fixed_priority(flows, model, config, &mut policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{NoReuse, ReuseAggressively, ReuseConservatively};

    #[test]
    fn reference_schedulers_match_optimized_on_contended_load() {
        let (flows, reuse) = parallel_set(8, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let ra = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let ra_ref = ReuseAggressivelyRef::new(2).schedule(&flows, &model).unwrap();
        assert_eq!(ra.entries(), ra_ref.entries());
        let rc = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
        let rc_ref = ReuseConservativelyRef::new(2).schedule(&flows, &model).unwrap();
        assert_eq!(rc.entries(), rc_ref.entries());
    }

    #[test]
    fn reference_nr_matches_optimized_nr() {
        let (flows, reuse) = parallel_set(4, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let nr = NoReuse::new().schedule(&flows, &model).unwrap();
        let nr_ref = NoReuseRef::new().schedule(&flows, &model).unwrap();
        assert_eq!(nr.entries(), nr_ref.entries());
    }

    #[test]
    fn reference_and_optimized_agree_on_unschedulability() {
        let (flows, reuse) = parallel_set(6, 2, 40, 3);
        let model = model_for(&reuse, 1);
        assert!(ReuseConservatively::new(2).schedule(&flows, &model).is_err());
        assert!(ReuseConservativelyRef::new(2).schedule(&flows, &model).is_err());
    }
}
