//! Schedule efficiency metrics: transmissions per channel and reuse hop
//! counts (the quantities behind Figs. 4, 5, and 9 of the paper).

use crate::{NetworkModel, Schedule};
use wsan_stats::Histogram;

/// Efficiency metrics of one schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleMetrics {
    /// Distribution of the number of transmissions sharing an occupied
    /// (slot, channel) cell. Category 1 means no reuse; categories ≥ 2 are
    /// reused channels (Figs. 4 and 9).
    pub tx_per_channel: Histogram,
    /// Distribution of the *minimum* channel-reuse hop count within each
    /// shared cell: over all pairs of concurrent transmissions, the smaller
    /// of the two sender→other-receiver distances (Fig. 5). Only cells with
    /// two or more transmissions contribute.
    pub reuse_hop_count: Histogram,
}

impl ScheduleMetrics {
    /// Fraction of occupied cells carrying exactly one transmission (no
    /// channel reuse) — higher is more conservative.
    pub fn no_reuse_fraction(&self) -> f64 {
        self.tx_per_channel.proportion(1)
    }

    /// Merges metrics from another schedule (to aggregate over many flow
    /// sets as the paper's figures do).
    pub fn merge(&mut self, other: &ScheduleMetrics) {
        self.tx_per_channel.merge(&other.tx_per_channel);
        self.reuse_hop_count.merge(&other.reuse_hop_count);
    }
}

/// Computes the metrics of `schedule` against the reuse-graph distances in
/// `model`.
///
/// Hop distances of disconnected pairs are clamped to `λ_R + 1` so the
/// histogram stays bounded; the paper's testbeds have connected reuse
/// graphs, so this only matters for synthetic corner cases.
pub fn compute(schedule: &Schedule, model: &NetworkModel) -> ScheduleMetrics {
    let mut metrics = ScheduleMetrics::default();
    let clamp = model.lambda_r() + 1;
    for (_, _, cell) in schedule.occupied_cells() {
        metrics.tx_per_channel.record(cell.len());
        if cell.len() >= 2 {
            let mut min_hops = u32::MAX;
            for (i, a) in cell.iter().enumerate() {
                for b in &cell[i + 1..] {
                    let d1 = model.hops().hops(a.link.tx, b.link.rx).min(clamp);
                    let d2 = model.hops().hops(b.link.tx, a.link.rx).min(clamp);
                    min_hops = min_hops.min(d1).min(d2);
                }
            }
            metrics.reuse_hop_count.record(min_hops as usize);
        }
    }
    metrics
}

/// End-to-end response time of every job in the schedule, in slots: the
/// slot of the job's last transmission minus its release slot, plus one.
///
/// The paper's schedulability experiments only ask *whether* deadlines are
/// met; response times expose *how much* channel reuse tightens the
/// schedule — reused schedules finish jobs earlier, which is the mechanism
/// behind the higher schedulable ratios.
///
/// Returns `(flow, job_index, response_slots)` triples in priority order.
pub fn response_times(
    schedule: &Schedule,
    flows: &wsan_flow::FlowSet,
) -> Vec<(wsan_flow::FlowId, u32, u32)> {
    let mut last_slot: std::collections::BTreeMap<(wsan_flow::FlowId, u32), u32> =
        std::collections::BTreeMap::new();
    for entry in schedule.entries() {
        let key = (entry.tx.flow, entry.tx.job_index);
        let slot = last_slot.entry(key).or_insert(entry.slot);
        *slot = (*slot).max(entry.slot);
    }
    last_slot
        .into_iter()
        .map(|((flow, job), slot)| {
            let release = job * flows.flow(flow).period().slots();
            (flow, job, slot - release + 1)
        })
        .collect()
}

/// Mean response time in slots over all jobs; `None` for empty schedules.
pub fn mean_response_time(schedule: &Schedule, flows: &wsan_flow::FlowSet) -> Option<f64> {
    let times = response_times(schedule, flows);
    if times.is_empty() {
        None
    } else {
        Some(times.iter().map(|(_, _, t)| f64::from(*t)).sum::<f64>() / times.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{ReuseAggressively, Scheduler};

    #[test]
    fn metrics_of_reused_schedule() {
        let (flows, reuse) = parallel_set(4, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let m = compute(&schedule, &model);
        // every occupied cell recorded
        assert_eq!(m.tx_per_channel.total() as usize, schedule.occupied_cells().count());
        // shared cells exist and their hop counts respect the floor
        assert!(m.tx_per_channel.max_category().unwrap() >= 2);
        for (hops, _) in m.reuse_hop_count.iter() {
            assert!(hops >= 2, "RA at rho=2 produced a shared cell at {hops} hops");
        }
    }

    #[test]
    fn no_reuse_fraction_of_exclusive_schedule() {
        let (flows, reuse) = parallel_set(3, 4, 100, 90);
        let model = model_for(&reuse, 3);
        let schedule = crate::NoReuse::new().schedule(&flows, &model).unwrap();
        let m = compute(&schedule, &model);
        assert_eq!(m.no_reuse_fraction(), 1.0);
        assert_eq!(m.reuse_hop_count.total(), 0);
    }

    #[test]
    fn response_times_measure_job_spans() {
        let (flows, reuse) = parallel_set(2, 4, 40, 20);
        let model = model_for(&reuse, 2);
        let schedule = crate::NoReuse::new().schedule(&flows, &model).unwrap();
        let times = response_times(&schedule, &flows);
        // 2 flows × 1 job (hyperperiod = period)
        assert_eq!(times.len(), 2);
        for (_, job, t) in &times {
            assert_eq!(*job, 0);
            // each job is 1 link × 2 attempts: finishes within a few slots
            assert!(*t >= 2 && *t <= 20, "span {t}");
        }
        let mean = mean_response_time(&schedule, &flows).unwrap();
        assert!(mean >= 2.0);
    }

    #[test]
    fn reuse_shortens_response_times_under_contention() {
        let (flows, reuse) = parallel_set(6, 4, 60, 30);
        let model = model_for(&reuse, 1);
        let nr = crate::NoReuse::new().schedule(&flows, &model).unwrap();
        let ra = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let nr_mean = mean_response_time(&nr, &flows).unwrap();
        let ra_mean = mean_response_time(&ra, &flows).unwrap();
        assert!(
            ra_mean < nr_mean,
            "reuse should finish jobs earlier: RA {ra_mean} vs NR {nr_mean}"
        );
    }

    #[test]
    fn merge_accumulates() {
        let (flows, reuse) = parallel_set(4, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let m = compute(&schedule, &model);
        let mut acc = ScheduleMetrics::default();
        acc.merge(&m);
        acc.merge(&m);
        assert_eq!(acc.tx_per_channel.total(), 2 * m.tx_per_channel.total());
    }
}
