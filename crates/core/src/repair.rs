//! Schedule repair: reassigning links whose reliability channel reuse has
//! degraded.
//!
//! The §VI detection policy exists so that the network manager can act:
//! "links can be reassigned to different channels or time slots to further
//! improve reliability". This module implements that action. Every
//! transmission over a rejected link that currently shares its channel is
//! re-placed into a contention-free cell; because pushing one transmission
//! later squeezes the rest of its job, the job's subsequent transmissions
//! are re-placed in cascade, all within the job's deadline window.
//!
//! Repair is *local*: jobs without degraded shared transmissions keep their
//! exact placement, so the disruption to the running network is limited to
//! the affected flows. When a transmission cannot be re-placed before the
//! deadline, the repair of that job fails and is reported, and the caller
//! can fall back to a full reschedule.

use crate::{NetworkModel, Rho, Schedule, ScheduleError, ScheduledTx};
use std::collections::HashSet;
use wsan_flow::{FlowId, FlowSet};
use wsan_net::DirectedLink;

/// Outcome of a repair pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Jobs `(flow, job_index)` whose transmissions were re-placed.
    pub repaired_jobs: Vec<(FlowId, u32)>,
    /// Jobs that could not be repaired within their deadline window.
    pub failed_jobs: Vec<(FlowId, u32)>,
    /// Number of transmissions that changed cells.
    pub moved_transmissions: usize,
}

impl RepairReport {
    /// Whether every affected job was repaired.
    pub fn is_complete(&self) -> bool {
        self.failed_jobs.is_empty()
    }
}

/// Rebuilds `schedule` so that no transmission over a `degraded` link shares
/// a (slot, channel offset) cell with any other transmission.
///
/// Jobs containing an affected transmission are re-placed from that
/// transmission onward: each moved transmission takes the earliest slot
/// after its predecessor with a *contention-free* cell if its link is
/// degraded, or any cell satisfying the original floor `rho_t` otherwise.
/// All other jobs keep their placement. On failure the job keeps its
/// original cells (the failure is reported instead).
///
/// Returns [`ScheduleError::Inconsistent`] when the schedule references a
/// job the flow set cannot produce (or vice versa) — the two inputs were
/// not built from each other, and repairing them would corrupt the
/// schedule further.
pub fn reassign_degraded(
    schedule: &Schedule,
    model: &NetworkModel,
    flows: &FlowSet,
    rho_t: u32,
    degraded: &[DirectedLink],
) -> Result<(Schedule, RepairReport), ScheduleError> {
    let degraded: HashSet<DirectedLink> = degraded.iter().copied().collect();
    // Jobs needing repair: they own a degraded-link transmission in a
    // shared cell.
    let mut affected: HashSet<(FlowId, u32)> = HashSet::new();
    for entry in schedule.entries() {
        if degraded.contains(&entry.tx.link) && schedule.cell(entry.slot, entry.offset).len() > 1 {
            affected.insert((entry.tx.flow, entry.tx.job_index));
        }
    }
    let mut report = RepairReport::default();
    if affected.is_empty() {
        return Ok((schedule.clone(), report));
    }
    // Base schedule: everything except affected jobs.
    let mut repaired =
        Schedule::new(schedule.horizon(), schedule.channel_count(), schedule.node_count());
    for entry in schedule.entries() {
        if !affected.contains(&(entry.tx.flow, entry.tx.job_index)) {
            repaired.place(entry.slot, entry.offset, entry.tx);
        }
    }
    // Re-place affected jobs in priority order.
    let mut affected: Vec<(FlowId, u32)> = affected.into_iter().collect();
    affected.sort();
    for (flow_id, job_index) in affected {
        let flow = flows.flow(flow_id);
        let Some(job) = flow.jobs(schedule.horizon()).into_iter().find(|j| j.index() == job_index)
        else {
            return Err(ScheduleError::Inconsistent {
                reason: format!(
                    "schedule places job {job_index} of {flow_id}, but the flow releases no \
                     such job within the horizon"
                ),
            });
        };
        let mut entries: Vec<ScheduledTx> = schedule
            .entries()
            .iter()
            .filter(|e| e.tx.flow == flow_id && e.tx.job_index == job_index)
            .map(|e| e.tx)
            .collect();
        entries.sort_by_key(|t| t.seq);
        // Tentatively place on a scratch copy so failures leave no residue.
        let mut scratch = repaired.clone();
        let d_i = job.deadline_slot() - 1;
        let mut prev: Option<u32> = None;
        let mut ok = true;
        for tx in &entries {
            let earliest = prev.map_or(job.release_slot(), |p| p + 1);
            let rho = if degraded.contains(&tx.link) { Rho::NoReuse } else { Rho::AtLeast(rho_t) };
            match find_slot_quarantined(&scratch, model, tx.link, earliest, d_i, rho, &degraded) {
                Some((slot, offset)) => {
                    scratch.place(slot, offset, *tx);
                    prev = Some(slot);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            // count moved transmissions against the original placement
            let moved = scratch
                .entries()
                .iter()
                .filter(|e| e.tx.flow == flow_id && e.tx.job_index == job_index)
                .filter(|e| {
                    !schedule
                        .entries()
                        .iter()
                        .any(|o| o.tx == e.tx && o.slot == e.slot && o.offset == e.offset)
                })
                .count();
            report.moved_transmissions += moved;
            report.repaired_jobs.push((flow_id, job_index));
            repaired = scratch;
        } else {
            // keep the original placement for this job
            for tx in &entries {
                let Some(original) = schedule.entries().iter().find(|e| e.tx == *tx) else {
                    return Err(ScheduleError::Inconsistent {
                        reason: format!(
                            "original cell of {flow_id} job {job_index} seq {} vanished \
                             mid-repair",
                            tx.seq
                        ),
                    });
                };
                repaired.place(original.slot, original.offset, *tx);
            }
            report.failed_jobs.push((flow_id, job_index));
        }
    }
    Ok((repaired, report))
}

/// `findSlot` with a quarantine: cells already holding a degraded link's
/// transmission are never joined (they must stay contention-free), and —
/// by virtue of `Rho::NoReuse` for degraded links themselves — a degraded
/// transmission only ever takes an empty cell.
fn find_slot_quarantined(
    schedule: &Schedule,
    model: &NetworkModel,
    link: DirectedLink,
    earliest: u32,
    latest: u32,
    rho: Rho,
    degraded: &HashSet<DirectedLink>,
) -> Option<(u32, usize)> {
    let latest = latest.min(schedule.horizon() - 1);
    let mut slot = earliest;
    while slot <= latest {
        if !schedule.conflicts(slot, link.tx, link.rx) {
            let mut best: Option<(usize, usize)> = None;
            for offset in 0..schedule.channel_count() {
                let cell = schedule.cell(slot, offset);
                if !cell.is_empty() && cell.iter().any(|t| degraded.contains(&t.link)) {
                    continue; // quarantined cell
                }
                if !crate::constraints::channel_ok(schedule, model, slot, offset, link, rho) {
                    continue;
                }
                let len = cell.len();
                if best.is_none_or(|(blen, _)| len < blen) {
                    best = Some((len, offset));
                    if len == 0 {
                        break;
                    }
                }
            }
            if let Some((_, offset)) = best {
                return Some((slot, offset));
            }
        }
        slot += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{ReuseAggressively, Scheduler};

    #[test]
    fn repair_removes_sharing_for_degraded_links() {
        let (flows, reuse) = parallel_set(6, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let degraded = schedule
            .occupied_cells()
            .find(|(_, _, c)| c.len() > 1)
            .map(|(_, _, c)| c[0].link)
            .expect("RA shares under this load");
        let (repaired, report) =
            reassign_degraded(&schedule, &model, &flows, 2, &[degraded]).unwrap();
        assert!(report.is_complete(), "failed jobs: {:?}", report.failed_jobs);
        assert!(report.moved_transmissions > 0);
        for (_, _, cell) in repaired.occupied_cells() {
            if cell.iter().any(|t| t.link == degraded) {
                assert_eq!(cell.len(), 1, "degraded link still shares a cell");
            }
        }
        assert_eq!(repaired.entry_count(), schedule.entry_count());
    }

    #[test]
    fn repaired_schedule_still_validates() {
        let (flows, reuse) = parallel_set(6, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let degraded: Vec<_> = schedule
            .occupied_cells()
            .filter(|(_, _, c)| c.len() > 1)
            .flat_map(|(_, _, c)| c.iter().map(|t| t.link))
            .take(2)
            .collect();
        let (repaired, _) = reassign_degraded(&schedule, &model, &flows, 2, &degraded).unwrap();
        crate::validate::check(&repaired, &flows, &model, Some(2)).unwrap();
    }

    #[test]
    fn repair_without_degraded_links_is_identity() {
        let (flows, reuse) = parallel_set(4, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let (repaired, report) = reassign_degraded(&schedule, &model, &flows, 2, &[]).unwrap();
        assert!(report.repaired_jobs.is_empty());
        assert_eq!(repaired.entries(), schedule.entries());
    }

    #[test]
    fn repair_of_unshared_link_is_identity() {
        let (flows, reuse) = parallel_set(3, 4, 100, 90);
        let model = model_for(&reuse, 2);
        let schedule = crate::NoReuse::new().schedule(&flows, &model).unwrap();
        let link = flows.iter().next().unwrap().links()[0];
        let (repaired, report) = reassign_degraded(&schedule, &model, &flows, 2, &[link]).unwrap();
        assert!(report.repaired_jobs.is_empty());
        assert_eq!(repaired.entries(), schedule.entries());
    }

    #[test]
    fn failed_repairs_keep_the_original_placement() {
        // 1 channel, very tight deadlines: exclusive re-placement cannot
        // fit — the job must be reported failed and keep its cells.
        let (flows, reuse) = parallel_set(8, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let degraded: Vec<_> = schedule
            .occupied_cells()
            .filter(|(_, _, c)| c.len() > 1)
            .flat_map(|(_, _, c)| c.iter().map(|t| t.link))
            .collect();
        assert!(!degraded.is_empty(), "test requires sharing");
        let (repaired, report) =
            reassign_degraded(&schedule, &model, &flows, 2, &degraded).unwrap();
        // at this load not everything fits exclusively (NR failed on it)
        assert!(!report.is_complete());
        // no transmission lost either way
        assert_eq!(repaired.entry_count(), schedule.entry_count());
        // schedule still structurally valid at the reuse floor
        crate::validate::check(&repaired, &flows, &model, Some(2)).unwrap();
    }
}
