//! RA — the aggressive channel reuse baseline.

use crate::constraints::find_slot;
use crate::scheduler::{run_fixed_priority, run_fixed_priority_onto, PlacePolicy, PlaceRequest};
use crate::{NetworkModel, Rho, Schedule, ScheduleError, Scheduler, SchedulerConfig};
use wsan_flow::FlowSet;

/// Deadline-monotonic fixed-priority scheduling with **aggressive channel
/// reuse**: every transmission goes to the earliest slot that has *any*
/// channel satisfying the hop-distance constraint at the fixed floor `ρ`,
/// whether or not reuse is needed to make the deadline. This mirrors
/// traditional spatial-reuse TDMA and TASA-style TSCH scheduling, and is the
/// paper's "RA" baseline (evaluated at `ρ = 2`).
///
/// Among feasible offsets in a slot, the one with the fewest scheduled
/// transmissions is chosen, so empty channels are preferred when available —
/// aggression is in *when* reuse happens (always, if it buys an earlier
/// slot), not in packing channels beyond need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseAggressively {
    rho: u32,
}

impl ReuseAggressively {
    /// Creates the RA scheduler with reuse hop distance `rho` (paper: 2).
    ///
    /// # Panics
    ///
    /// Panics if `rho == 0`; a hop distance of zero would let a node
    /// interfere with itself.
    pub fn new(rho: u32) -> Self {
        assert!(rho >= 1, "reuse hop distance must be at least 1");
        ReuseAggressively { rho }
    }

    /// The fixed reuse hop distance.
    pub fn rho(&self) -> u32 {
        self.rho
    }
}

struct RaPolicy {
    rho: Rho,
    /// Counts placements into already-occupied cells (i.e. actual channel
    /// reuse); present only when global metrics are on.
    reuse_placements: Option<wsan_obs::Counter>,
}

impl PlacePolicy for RaPolicy {
    fn place(
        &mut self,
        schedule: &Schedule,
        model: &NetworkModel,
        req: &PlaceRequest<'_>,
    ) -> Option<(u32, usize)> {
        let found = find_slot(schedule, model, req.link, req.earliest, req.deadline_slot, self.rho);
        if let (Some(counter), Some((slot, offset))) = (&self.reuse_placements, found) {
            if !schedule.cell(slot, offset).is_empty() {
                counter.inc();
            }
        }
        found
    }
}

impl Scheduler for ReuseAggressively {
    fn name(&self) -> &'static str {
        "RA"
    }

    fn schedule_with(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority(flows, model, config, &mut self.policy())
    }

    fn schedule_onto(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
        base: Schedule,
        skip: usize,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority_onto(flows, model, config, &mut self.policy(), base, skip)
    }
}

impl ReuseAggressively {
    fn policy(&self) -> RaPolicy {
        RaPolicy {
            rho: Rho::AtLeast(self.rho),
            reuse_placements: wsan_obs::metrics_enabled()
                .then(|| wsan_obs::global_metrics().counter("ra.placements.reuse")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::NoReuse;

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rho_panics() {
        let _ = ReuseAggressively::new(0);
    }

    #[test]
    fn ra_packs_distant_links_into_one_channel() {
        // 4 disjoint links, pairwise ≥ 3 reuse hops apart, 1 channel.
        let (flows, reuse) = parallel_set(4, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        // all four flows' primary transmissions land in slot 0 on offset 0
        let cell0 = schedule.cell(0, 0);
        assert_eq!(cell0.len(), 4, "RA should reuse the single channel for all distant links");
    }

    #[test]
    fn ra_schedules_where_nr_cannot() {
        // 8 links, 1 channel, deadline 10 slots: NR needs 16 exclusive
        // slots (with retries) and fails; RA packs them concurrently.
        let (flows, reuse) = parallel_set(8, 4, 40, 10);
        let model = model_for(&reuse, 1);
        assert!(NoReuse::new().schedule(&flows, &model).is_err());
        assert!(ReuseAggressively::new(2).schedule(&flows, &model).is_ok());
    }

    #[test]
    fn ra_respects_the_hop_floor() {
        // links only 1 hop apart (stride 2 ⇒ sender-to-receiver distance 1)
        // cannot share a channel at rho = 2
        let (flows, reuse) = parallel_set(2, 2, 40, 20);
        let model = model_for(&reuse, 1);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        for (_, _, cell) in schedule.occupied_cells() {
            assert_eq!(cell.len(), 1, "adjacent links must not share a channel at rho=2");
        }
    }

    #[test]
    fn ra_prefers_empty_channels() {
        // 2 distant links, 2 channels: both can go to slot 0, and the
        // second should take the empty offset 1 rather than reuse offset 0.
        let (flows, reuse) = parallel_set(2, 4, 40, 20);
        let model = model_for(&reuse, 2);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        assert_eq!(schedule.cell(0, 0).len(), 1);
        assert_eq!(schedule.cell(0, 1).len(), 1);
    }

    #[test]
    fn ra_output_validates() {
        let (flows, reuse) = parallel_set(6, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        crate::validate::check(&schedule, &flows, &model, Some(2)).unwrap();
    }
}
