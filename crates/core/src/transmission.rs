//! Scheduled transmissions and the reuse hop distance `ρ`.

use serde::{Deserialize, Serialize};
use std::fmt;
use wsan_flow::FlowId;
use wsan_net::DirectedLink;

/// The channel reuse hop distance `ρ` of the channel constraints (§V-A).
///
/// `NoReuse` is the paper's `ρ = ∞`: a channel offset may hold at most one
/// transmission per slot. `AtLeast(h)` allows transmissions to share a
/// channel when every (sender, other receiver) pair is at least `h` hops
/// apart on the channel reuse graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rho {
    /// `ρ = ∞`: channel reuse disallowed.
    NoReuse,
    /// `ρ = h`: concurrent same-channel transmissions must keep senders at
    /// least `h` reuse-graph hops from the other transmissions' receivers.
    AtLeast(u32),
}

impl Rho {
    /// Whether this distance permits any channel sharing at all.
    pub fn allows_reuse(self) -> bool {
        matches!(self, Rho::AtLeast(_))
    }

    /// The next, less restrictive step of Algorithm 1's inner loop:
    /// `∞ → λ_R`, then `h → h−1`. Returns `None` once stepping would fall
    /// below the floor `rho_t`.
    pub fn step_down(self, lambda_r: u32, rho_t: u32) -> Option<Rho> {
        match self {
            Rho::NoReuse => {
                if lambda_r >= rho_t {
                    Some(Rho::AtLeast(lambda_r))
                } else {
                    None
                }
            }
            Rho::AtLeast(h) => {
                if h > rho_t {
                    Some(Rho::AtLeast(h - 1))
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Display for Rho {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rho::NoReuse => write!(f, "∞"),
            Rho::AtLeast(h) => write!(f, "{h}"),
        }
    }
}

/// One scheduled transmission: a link transmission attempt of one job.
///
/// Under source routing every link gets a retry slot, so each hop of a route
/// appears as two `ScheduledTx` values (attempt 0, then attempt 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduledTx {
    /// Flow the packet belongs to.
    pub flow: FlowId,
    /// Release index of the job within the hyperperiod.
    pub job_index: u32,
    /// The directed link transmitted over.
    pub link: DirectedLink,
    /// Position of this transmission in the job's sequence (primary and
    /// retry count separately).
    pub seq: u16,
    /// 0 for the primary attempt, 1 for the retransmission slot.
    pub attempt: u8,
}

impl fmt::Display for ScheduledTx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}#{} {} (seq {}, try {})",
            self.flow, self.job_index, self.link, self.seq, self.attempt
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_down_from_infinity_lands_at_diameter() {
        assert_eq!(Rho::NoReuse.step_down(5, 2), Some(Rho::AtLeast(5)));
    }

    #[test]
    fn step_down_decrements_until_floor() {
        assert_eq!(Rho::AtLeast(4).step_down(5, 2), Some(Rho::AtLeast(3)));
        assert_eq!(Rho::AtLeast(3).step_down(5, 2), Some(Rho::AtLeast(2)));
        assert_eq!(Rho::AtLeast(2).step_down(5, 2), None);
    }

    #[test]
    fn step_down_with_tiny_diameter() {
        // diameter below the floor: reuse can never be introduced
        assert_eq!(Rho::NoReuse.step_down(1, 2), None);
    }

    #[test]
    fn allows_reuse() {
        assert!(!Rho::NoReuse.allows_reuse());
        assert!(Rho::AtLeast(2).allows_reuse());
    }

    #[test]
    fn display() {
        assert_eq!(Rho::NoReuse.to_string(), "∞");
        assert_eq!(Rho::AtLeast(3).to_string(), "3");
    }
}
