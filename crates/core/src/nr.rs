//! NR — the standard WirelessHART baseline without channel reuse.

use crate::constraints::find_slot;
use crate::scheduler::{run_fixed_priority, run_fixed_priority_onto, PlacePolicy, PlaceRequest};
use crate::{NetworkModel, Rho, Schedule, ScheduleError, Scheduler, SchedulerConfig};
use wsan_flow::FlowSet;

/// Deadline-monotonic fixed-priority scheduling with **no channel reuse**:
/// each (slot, channel offset) cell holds at most one transmission, so a
/// slot carries at most `|M|` concurrent transmissions. This is the
/// WirelessHART-standard behaviour the paper compares against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoReuse;

impl NoReuse {
    /// Creates the NR scheduler.
    pub fn new() -> Self {
        NoReuse
    }
}

struct NrPolicy;

impl PlacePolicy for NrPolicy {
    fn place(
        &mut self,
        schedule: &Schedule,
        model: &NetworkModel,
        req: &PlaceRequest<'_>,
    ) -> Option<(u32, usize)> {
        find_slot(schedule, model, req.link, req.earliest, req.deadline_slot, Rho::NoReuse)
    }
}

impl Scheduler for NoReuse {
    fn name(&self) -> &'static str {
        "NR"
    }

    fn schedule_with(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority(flows, model, config, &mut NrPolicy)
    }

    fn schedule_onto(
        &self,
        flows: &FlowSet,
        model: &NetworkModel,
        config: &SchedulerConfig,
        base: Schedule,
        skip: usize,
    ) -> Result<Schedule, ScheduleError> {
        run_fixed_priority_onto(flows, model, config, &mut NrPolicy, base, skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{line_set, model_for};

    #[test]
    fn nr_never_shares_a_cell() {
        let (flows, reuse) = line_set(3, 6, 100, 90);
        let model = model_for(&reuse, 2);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        for (_, _, cell) in schedule.occupied_cells() {
            assert_eq!(cell.len(), 1);
        }
    }

    #[test]
    fn nr_respects_sequencing_and_windows() {
        let (flows, reuse) = line_set(2, 6, 100, 100);
        let model = model_for(&reuse, 3);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        crate::validate::check(&schedule, &flows, &model, None).unwrap();
    }

    #[test]
    fn nr_fails_when_channels_cannot_carry_the_load() {
        // Many flows over the same 2-link line with 1 channel and tight
        // deadlines: the single channel saturates.
        let (flows, reuse) = line_set(12, 3, 50, 25);
        let model = model_for(&reuse, 1);
        let err = NoReuse::new().schedule(&flows, &model).unwrap_err();
        assert!(matches!(err, ScheduleError::Unschedulable { .. }));
    }
}
