//! Error type for scheduling.

use std::error::Error;
use std::fmt;
use wsan_flow::FlowId;

/// Errors produced by the schedulers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The flow set is unschedulable: a transmission of `flow` (job
    /// `job_index`) could not be placed before the job's deadline. Mirrors
    /// Algorithm 1 returning the empty schedule.
    Unschedulable {
        /// The flow whose transmission missed its deadline.
        flow: FlowId,
        /// Which release of the flow failed.
        job_index: u32,
    },
    /// The scheduler was configured with zero channels.
    NoChannels,
    /// The minimum reuse hop distance `ρ_t` must be at least 1 (a distance
    /// of 0 would allow a node to interfere with itself).
    InvalidRhoFloor(u32),
    /// The schedule and flow set disagree (a referenced job or placement is
    /// missing), so repair or recovery cannot proceed on them.
    Inconsistent {
        /// Human-readable explanation of the mismatch.
        reason: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unschedulable { flow, job_index } => {
                write!(f, "flow set unschedulable: {flow} job {job_index} misses its deadline")
            }
            ScheduleError::NoChannels => write!(f, "scheduling requires at least one channel"),
            ScheduleError::InvalidRhoFloor(rho) => {
                write!(f, "minimum channel reuse hop distance must be ≥ 1, got {rho}")
            }
            ScheduleError::Inconsistent { reason } => {
                write!(f, "schedule and flow set are inconsistent: {reason}")
            }
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_flow() {
        let e = ScheduleError::Unschedulable { flow: FlowId::new(3), job_index: 2 };
        assert!(e.to_string().contains("F3"));
        assert!(e.to_string().contains("job 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }
}
