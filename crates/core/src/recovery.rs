//! Supervised schedule recovery: repair when possible, reschedule when
//! necessary, shed flows when nothing else restores feasibility.
//!
//! The §VI detection policy tells the network manager *which* links channel
//! reuse degrades; [`repair`](crate::repair) moves those links'
//! transmissions into contention-free cells. But injected faults can exceed
//! what local repair fixes: a crashed relay or a fully collapsed link
//! carries no traffic on *any* channel, and a dense workload may leave no
//! contention-free cells to move into. This module implements the fallback
//! ladder the paper's network manager sketch implies:
//!
//! 1. **Repair in place** — minimal disruption, jobs keep their cells
//!    wherever possible.
//! 2. **Reschedule the survivors** — flows that cannot be served at all
//!    (their route crosses a dead link) are removed, the rest get a fresh
//!    schedule, and the degraded links are repaired on it.
//! 3. **Graceful degradation** — while the survivor set remains infeasible,
//!    shed flows in *inverse Deadline-Monotonic order* (longest relative
//!    deadline first): the flows the paper's priority assignment already
//!    ranks as least urgent are sacrificed first, and every sacrifice is
//!    reported.
//!
//! Every successful outcome is re-checked with the independent
//! [`validate`](crate::validate) checker before it is returned, so a
//! recovered schedule is never weaker than a freshly built one.

use crate::repair::{self, RepairReport};
use crate::{validate, NetworkModel, Schedule, ScheduleError, Scheduler};
use std::collections::HashSet;
use wsan_flow::{Flow, FlowId, FlowSet};
use wsan_net::DirectedLink;

/// Tunables of a recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Reuse hop-distance floor `ρ_t` used for repair and validation.
    pub rho_t: u32,
    /// Upper bound on scheduler invocations while shedding. The shedding
    /// loop is already bounded by the flow count; this caps the work spent
    /// on pathological workloads where every reschedule is slow. When the
    /// bound is hit, all remaining flows are shed (reported, not dropped
    /// silently).
    pub max_reschedules: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { rho_t: 2, max_reschedules: 64 }
    }
}

/// What a recovery pass produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// The recovered schedule, already accepted by [`validate::check`].
    pub schedule: Schedule,
    /// The surviving flow set the schedule serves (ids re-tagged dense).
    pub flows: FlowSet,
    /// Flows sacrificed to restore feasibility, by their id in the *input*
    /// flow set, in the order they were shed.
    pub shed: Vec<FlowId>,
    /// For each surviving flow (by its new dense id), its id in the input
    /// flow set.
    pub survivors: Vec<FlowId>,
    /// Scheduler invocations performed (0 = in-place repair sufficed).
    pub reschedules: u32,
    /// The repair report of the accepted schedule.
    pub repair: RepairReport,
}

impl RecoveryOutcome {
    /// Whether recovery had to sacrifice flows.
    pub fn is_degraded(&self) -> bool {
        !self.shed.is_empty()
    }
}

/// Recovers a valid schedule after faults.
///
/// `degraded` lists links the detection policy rejected (reuse hurts them:
/// their transmissions must become contention-free). `dead` lists links
/// that carry no traffic at all (crashed endpoint, fully collapsed PRR):
/// flows routed over them are unservable and are shed immediately.
///
/// The pass tries in-place [`repair`](repair::reassign_degraded) first;
/// when that cannot restore feasibility it reschedules the surviving flows
/// with `scheduler`, shedding flows in inverse Deadline-Monotonic order
/// (see the module docs) until the result validates.
///
/// # Errors
///
/// Returns [`ScheduleError::Inconsistent`] when `schedule` and `flows`
/// disagree structurally. Infeasibility is *not* an error: it is handled
/// by shedding, down to the empty schedule if need be.
pub fn recover(
    schedule: &Schedule,
    model: &NetworkModel,
    flows: &FlowSet,
    scheduler: &dyn Scheduler,
    policy: &RecoveryPolicy,
    degraded: &[DirectedLink],
    dead: &[DirectedLink],
) -> Result<RecoveryOutcome, ScheduleError> {
    let dead_set: HashSet<DirectedLink> = dead.iter().copied().collect();
    let mut shed: Vec<FlowId> = Vec::new();
    // Flows crossing a dead link cannot be served by any schedule.
    let mut survivors: Vec<(FlowId, Flow)> = Vec::new();
    for flow in flows.iter() {
        if flow.links().iter().any(|l| dead_set.contains(l)) {
            shed.push(flow.id());
        } else {
            survivors.push((flow.id(), flow.clone()));
        }
    }

    // Fast path: the topology still serves every flow — try minimal-
    // disruption in-place repair before touching anyone's cells.
    if shed.is_empty() {
        let (repaired, report) =
            repair::reassign_degraded(schedule, model, flows, policy.rho_t, degraded)?;
        if report.is_complete()
            && validate::check(&repaired, flows, model, Some(policy.rho_t)).is_ok()
        {
            return Ok(RecoveryOutcome {
                schedule: repaired,
                flows: flows.clone(),
                shed,
                survivors: flows.iter().map(Flow::id).collect(),
                reschedules: 0,
                repair: report,
            });
        }
    }

    // Reschedule survivors, shedding in inverse-DM order on infeasibility.
    let mut reschedules = 0;
    loop {
        let subset = FlowSet::new(
            survivors.iter().map(|(_, f)| f.clone()).collect(),
            flows.access_points().to_vec(),
        );
        if subset.is_empty() {
            // nothing left to serve: the empty schedule, trivially valid
            return Ok(RecoveryOutcome {
                schedule: Schedule::new(
                    schedule.horizon(),
                    schedule.channel_count(),
                    schedule.node_count(),
                ),
                flows: subset,
                shed,
                survivors: Vec::new(),
                reschedules,
                repair: RepairReport::default(),
            });
        }
        if reschedules < policy.max_reschedules {
            reschedules += 1;
            if let Ok(fresh) = scheduler.schedule(&subset, model) {
                let (repaired, report) =
                    repair::reassign_degraded(&fresh, model, &subset, policy.rho_t, degraded)?;
                if report.is_complete()
                    && validate::check(&repaired, &subset, model, Some(policy.rho_t)).is_ok()
                {
                    return Ok(RecoveryOutcome {
                        schedule: repaired,
                        flows: subset,
                        shed,
                        survivors: survivors.iter().map(|(orig, _)| *orig).collect(),
                        reschedules,
                        repair: report,
                    });
                }
            }
            // infeasible at this size: shed the lowest-priority survivor
            if let Some((orig, _)) = survivors.pop() {
                shed.push(orig);
            }
        } else {
            // retry budget exhausted: report everything left as shed
            while let Some((orig, _)) = survivors.pop() {
                shed.push(orig);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{NoReuse, ReuseAggressively, Scheduler};

    fn policy() -> RecoveryPolicy {
        RecoveryPolicy { rho_t: 2, max_reschedules: 64 }
    }

    #[test]
    fn nothing_wrong_is_identity() {
        let (flows, reuse) = parallel_set(4, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let scheduler = ReuseAggressively::new(2);
        let schedule = scheduler.schedule(&flows, &model).unwrap();
        let out = recover(&schedule, &model, &flows, &scheduler, &policy(), &[], &[]).unwrap();
        assert!(!out.is_degraded());
        assert_eq!(out.reschedules, 0);
        assert_eq!(out.schedule.entries(), schedule.entries());
        assert_eq!(out.survivors.len(), flows.len());
    }

    #[test]
    fn dead_link_sheds_exactly_the_crossing_flows() {
        // disjoint single-hop pairs: killing one pair's link dooms only it
        let (flows, reuse) = parallel_set(4, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let scheduler = ReuseAggressively::new(2);
        let schedule = scheduler.schedule(&flows, &model).unwrap();
        let victim = flows.flow(FlowId::new(2)).links()[0];
        let out =
            recover(&schedule, &model, &flows, &scheduler, &policy(), &[], &[victim]).unwrap();
        assert_eq!(out.shed, vec![FlowId::new(2)]);
        assert_eq!(out.flows.len(), 3);
        // survivors keep their relative priority order
        let origs: Vec<usize> = out.survivors.iter().map(|id| id.index()).collect();
        assert_eq!(origs, vec![0, 1, 3]);
        validate::check(&out.schedule, &out.flows, &model, Some(2)).unwrap();
        // the dead link carries nothing
        assert!(out.schedule.entries().iter().all(|e| e.tx.link != victim));
    }

    #[test]
    fn infeasible_repair_sheds_lowest_priority_first() {
        // 1 channel, tight deadlines: making every shared link contention-
        // free cannot fit the full set (repair.rs exercises the same load
        // to show failed repairs). Recovery must shed from the back.
        let (flows, reuse) = parallel_set(8, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let scheduler = ReuseAggressively::new(2);
        let schedule = scheduler.schedule(&flows, &model).unwrap();
        let degraded: Vec<_> = schedule
            .occupied_cells()
            .filter(|(_, _, c)| c.len() > 1)
            .flat_map(|(_, _, c)| c.iter().map(|t| t.link))
            .collect();
        assert!(!degraded.is_empty(), "test requires sharing");
        let out =
            recover(&schedule, &model, &flows, &scheduler, &policy(), &degraded, &[]).unwrap();
        assert!(out.is_degraded(), "this load cannot be made contention-free intact");
        assert!(out.flows.len() < flows.len());
        assert!(!out.flows.is_empty(), "some prefix must fit");
        // shed ids are exactly the lowest-priority suffix of the input set
        let mut expected: Vec<FlowId> = (out.flows.len()..flows.len()).map(FlowId::new).collect();
        let mut got = out.shed.clone();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
        validate::check(&out.schedule, &out.flows, &model, Some(2)).unwrap();
        // no degraded link shares a cell in the recovered schedule
        for (_, _, cell) in out.schedule.occupied_cells() {
            if cell.len() > 1 {
                assert!(cell.iter().all(|t| !degraded.contains(&t.link)));
            }
        }
    }

    #[test]
    fn killing_everything_yields_the_empty_schedule() {
        let (flows, reuse) = parallel_set(3, 4, 60, 30);
        let model = model_for(&reuse, 2);
        let scheduler = NoReuse::new();
        let schedule = scheduler.schedule(&flows, &model).unwrap();
        let dead: Vec<_> = flows.iter().map(|f| f.links()[0]).collect();
        let out = recover(&schedule, &model, &flows, &scheduler, &policy(), &[], &dead).unwrap();
        assert_eq!(out.shed.len(), 3);
        assert!(out.flows.is_empty());
        assert_eq!(out.schedule.entry_count(), 0);
    }

    #[test]
    fn exhausted_budget_sheds_rather_than_loops() {
        let (flows, reuse) = parallel_set(8, 4, 40, 10);
        let model = model_for(&reuse, 1);
        let scheduler = ReuseAggressively::new(2);
        let schedule = scheduler.schedule(&flows, &model).unwrap();
        let degraded: Vec<_> = schedule
            .occupied_cells()
            .filter(|(_, _, c)| c.len() > 1)
            .flat_map(|(_, _, c)| c.iter().map(|t| t.link))
            .collect();
        let tight = RecoveryPolicy { rho_t: 2, max_reschedules: 1 };
        let out = recover(&schedule, &model, &flows, &scheduler, &tight, &degraded, &[]).unwrap();
        // one reschedule attempt, then everything left is reported shed
        assert_eq!(out.reschedules, 1);
        assert_eq!(out.shed.len() + out.flows.len(), flows.len());
    }
}
