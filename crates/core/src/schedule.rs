//! The TSCH transmission schedule: (slot, channel offset) assignments.

use crate::ScheduledTx;
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};
use wsan_net::{DirectedLink, NodeId};

/// One row of the schedule: a transmission placed in a slot at a channel
/// offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Slot number within the hyperperiod, `0..horizon`.
    pub slot: u32,
    /// Channel offset, `0..channel_count`.
    pub offset: usize,
    /// The transmission occupying the cell.
    pub tx: ScheduledTx,
}

/// A transmission schedule over one hyperperiod.
///
/// The grid has `horizon` slots × `channel_count` channel offsets; a cell
/// may hold several transmissions when channel reuse is in effect. The
/// structure maintains the occupancy indexes used on schedulers' hot paths:
///
/// * per-slot node-busy bitsets — O(1) transmission-conflict checks,
/// * per-node slot-busy bitsets — word-at-a-time conflict-free slot scans
///   ([`Schedule::free_slots`]) and popcount-speed conflict-slot counts for
///   the laxity estimate (Eq. 1),
/// * a per-slot occupied-offset count plus a full-slot bitset, so no-reuse
///   scans skip fully packed slots at word speed,
/// * per-cell occupant *link* arrays — the channel constraint only needs
///   each occupant's endpoints, so checks touch a dense `DirectedLink`
///   slice instead of the wider [`ScheduledTx`] cell vec,
/// * per-node generation counters that let external rank caches
///   ([`crate::laxity::LaxityCache`]) invalidate lazily on [`Schedule::place`].
#[derive(Debug)]
pub struct Schedule {
    horizon: u32,
    channel_count: usize,
    node_count: usize,
    /// `cells[slot * channel_count + offset]` → transmissions in that cell.
    cells: Vec<Vec<ScheduledTx>>,
    /// `slot_busy[slot * node_words + w]`: bit `b` set ⇔ node `64w+b` is a
    /// sender or receiver in `slot`.
    slot_busy: Vec<u64>,
    node_words: usize,
    /// `node_busy[node * slot_words + w]`: bit `b` set ⇔ the node is busy in
    /// slot `64w+b`.
    node_busy: Vec<u64>,
    slot_words: usize,
    entries: Vec<ScheduleEntry>,
    /// Occupant endpoints per cell, parallel to `cells`. The channel
    /// constraint iterates these instead of the full `ScheduledTx` records.
    cell_links: Vec<Vec<DirectedLink>>,
    /// `occupied_offsets[slot]`: number of non-empty cells in the slot.
    occupied_offsets: Vec<u32>,
    /// Bit `slot` set ⇔ every channel offset of the slot is occupied (a
    /// no-reuse placement cannot land there).
    slot_full: Vec<u64>,
    /// `node_gen[node]` advances whenever the node's busy row changes;
    /// external per-pair rank caches compare it to detect staleness.
    node_gen: Vec<u32>,
    /// Advances on every placement.
    generation: u64,
}

impl Schedule {
    /// Creates an empty schedule grid.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` or `channel_count` is zero — a schedule with no
    /// slots or no channels cannot hold any transmission, and downstream
    /// window arithmetic (`horizon - 1`) relies on at least one slot
    /// existing.
    pub fn new(horizon: u32, channel_count: usize, node_count: usize) -> Self {
        assert!(horizon > 0, "schedule needs at least one slot");
        assert!(channel_count > 0, "schedule needs at least one channel");
        let node_words = node_count.div_ceil(64).max(1);
        let slot_words = (horizon as usize).div_ceil(64);
        Schedule {
            horizon,
            channel_count,
            node_count,
            cells: vec![Vec::new(); horizon as usize * channel_count],
            slot_busy: vec![0; horizon as usize * node_words],
            node_words,
            node_busy: vec![0; node_count * slot_words],
            slot_words,
            entries: Vec::new(),
            cell_links: vec![Vec::new(); horizon as usize * channel_count],
            occupied_offsets: vec![0; horizon as usize],
            slot_full: vec![0; slot_words],
            node_gen: vec![0; node_count],
            generation: 0,
        }
    }

    /// Number of slots in the hyperperiod.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Number of channel offsets `|M|`.
    pub fn channel_count(&self) -> usize {
        self.channel_count
    }

    /// Number of nodes the schedule was sized for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total number of scheduled transmissions.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// All entries in placement order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Transmissions sharing `(slot, offset)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `offset` is out of range.
    pub fn cell(&self, slot: u32, offset: usize) -> &[ScheduledTx] {
        assert!(slot < self.horizon && offset < self.channel_count);
        &self.cells[slot as usize * self.channel_count + offset]
    }

    /// The endpoints of the transmissions sharing `(slot, offset)` — the
    /// dense form of [`Schedule::cell`] the channel constraint iterates.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `offset` is out of range.
    pub fn cell_links(&self, slot: u32, offset: usize) -> &[DirectedLink] {
        assert!(slot < self.horizon && offset < self.channel_count);
        &self.cell_links[slot as usize * self.channel_count + offset]
    }

    /// Whether `node` is a sender or receiver in `slot`.
    pub fn node_busy_in_slot(&self, node: NodeId, slot: u32) -> bool {
        let base = slot as usize * self.node_words;
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.slot_busy[base + w] & (1u64 << b) != 0
    }

    /// Whether placing a transmission over `tx → rx` in `slot` would create
    /// a *transmission conflict* (§III-B): some scheduled transmission in
    /// the slot already uses either node.
    pub fn conflicts(&self, slot: u32, tx: NodeId, rx: NodeId) -> bool {
        self.node_busy_in_slot(tx, slot) || self.node_busy_in_slot(rx, slot)
    }

    /// Whether every channel offset of `slot` already holds at least one
    /// transmission — a no-reuse placement cannot land in the slot.
    pub fn slot_is_full(&self, slot: u32) -> bool {
        self.slot_full[(slot / 64) as usize] & (1u64 << (slot % 64)) != 0
    }

    /// Iterates the slots of `[from, to]` (clamped to the horizon) in which
    /// neither `tx` nor `rx` is busy — the transmission-conflict-free
    /// candidate slots of `findSlot()`. With `skip_full`, slots whose every
    /// channel offset is occupied are skipped too (sound only for no-reuse
    /// placements, which need an empty cell).
    ///
    /// The scan works a 64-slot word at a time: each word of candidates is
    /// computed as `!(busy_tx | busy_rx)` (optionally `& !full`) and bits
    /// are popped via trailing-zeros, so long busy stretches cost one load
    /// per 64 slots instead of one branch per slot.
    pub fn free_slots(
        &self,
        tx: NodeId,
        rx: NodeId,
        from: u32,
        to: u32,
        skip_full: bool,
    ) -> FreeSlots<'_> {
        let to = if self.horizon == 0 { 0 } else { to.min(self.horizon - 1) };
        let empty = self.horizon == 0 || from > to;
        let (first_word, last_word) =
            if empty { (1, 0) } else { ((from / 64) as usize, (to / 64) as usize) };
        let mut iter = FreeSlots {
            tx_row: self.busy_row(tx),
            rx_row: self.busy_row(rx),
            full: &self.slot_full,
            skip_full,
            word: first_word,
            last_word,
            bits: 0,
            lo_mask: u64::MAX << (from % 64),
            hi_mask: if to % 64 == 63 { u64::MAX } else { (1u64 << (to % 64 + 1)) - 1 },
        };
        if !empty {
            iter.bits = iter.word_bits(first_word) & iter.lo_mask;
        }
        iter
    }

    /// Number of slots in the inclusive range `[from, to]` in which some
    /// scheduled transmission conflicts with a transmission over `a ↔ b` —
    /// the `q_t` term of the laxity estimate (Eq. 1).
    ///
    /// Returns 0 when `from > to`.
    pub fn conflict_slot_count(&self, a: NodeId, b: NodeId, from: u32, to: u32) -> u32 {
        if from > to {
            return 0;
        }
        let to = to.min(self.horizon - 1);
        if from > to {
            return 0;
        }
        let base_a = a.index() * self.slot_words;
        let base_b = b.index() * self.slot_words;
        let mut count = 0u32;
        let first_word = (from / 64) as usize;
        let last_word = (to / 64) as usize;
        for w in first_word..=last_word {
            let mut bits = self.node_busy[base_a + w] | self.node_busy[base_b + w];
            if w == first_word {
                let lo = from % 64;
                bits &= u64::MAX << lo;
            }
            if w == last_word {
                let hi = to % 64;
                if hi < 63 {
                    bits &= (1u64 << (hi + 1)) - 1;
                }
            }
            count += bits.count_ones();
        }
        count
    }

    /// Places a transmission into `(slot, offset)`.
    ///
    /// The caller is responsible for having checked the channel reuse
    /// constraints; conflicts are asserted in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if `slot`/`offset` are out of range, and in debug builds if
    /// the placement creates a transmission conflict.
    pub fn place(&mut self, slot: u32, offset: usize, tx: ScheduledTx) {
        assert!(slot < self.horizon, "slot {slot} beyond horizon {}", self.horizon);
        assert!(offset < self.channel_count, "offset {offset} beyond channel count");
        debug_assert!(
            !self.conflicts(slot, tx.link.tx, tx.link.rx),
            "placement of {tx} at slot {slot} creates a transmission conflict"
        );
        let cell_index = slot as usize * self.channel_count + offset;
        if self.cells[cell_index].is_empty() {
            self.occupied_offsets[slot as usize] += 1;
            if self.occupied_offsets[slot as usize] as usize == self.channel_count {
                self.slot_full[(slot / 64) as usize] |= 1u64 << (slot % 64);
            }
        }
        self.cells[cell_index].push(tx);
        self.cell_links[cell_index].push(tx.link);
        for node in [tx.link.tx, tx.link.rx] {
            let (w, b) = (node.index() / 64, node.index() % 64);
            self.slot_busy[slot as usize * self.node_words + w] |= 1u64 << b;
            let (sw, sb) = ((slot / 64) as usize, slot % 64);
            self.node_busy[node.index() * self.slot_words + sw] |= 1u64 << sb;
            self.node_gen[node.index()] = self.node_gen[node.index()].wrapping_add(1);
        }
        self.generation += 1;
        self.entries.push(ScheduleEntry { slot, offset, tx });
    }

    /// Number of transmissions already sharing `(slot, offset)` — the
    /// tie-break key when several offsets satisfy the constraints ("choose a
    /// channel with the fewest number of scheduled transmissions").
    pub fn cell_len(&self, slot: u32, offset: usize) -> usize {
        self.cells[slot as usize * self.channel_count + offset].len()
    }

    /// Iterates over the non-empty cells as `(slot, offset, transmissions)`.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (u32, usize, &[ScheduledTx])> {
        self.cells.iter().enumerate().filter(|(_, c)| !c.is_empty()).map(move |(i, c)| {
            let slot = (i / self.channel_count) as u32;
            let offset = i % self.channel_count;
            (slot, offset, c.as_slice())
        })
    }

    /// A counter advancing on every [`Schedule::place`]; external caches use
    /// it to detect that the schedule changed at all.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-node change counter: advances whenever `node`'s busy row gains a
    /// slot. Rank caches over pairs of busy rows compare these to rebuild
    /// lazily — a placement only invalidates rows of the two nodes it
    /// touches.
    pub(crate) fn node_generation(&self, node: NodeId) -> u32 {
        self.node_gen[node.index()]
    }

    /// The busy-slot bitset words of `node` (`slot_word_count()` words).
    pub(crate) fn busy_row(&self, node: NodeId) -> &[u64] {
        let base = node.index() * self.slot_words;
        &self.node_busy[base..base + self.slot_words]
    }

    /// Number of 64-bit words per node busy row.
    pub(crate) fn slot_word_count(&self) -> usize {
        self.slot_words
    }
}

/// Word-at-a-time iterator over conflict-free slots; see
/// [`Schedule::free_slots`].
#[derive(Debug)]
pub struct FreeSlots<'a> {
    tx_row: &'a [u64],
    rx_row: &'a [u64],
    full: &'a [u64],
    skip_full: bool,
    word: usize,
    last_word: usize,
    bits: u64,
    lo_mask: u64,
    hi_mask: u64,
}

impl FreeSlots<'_> {
    fn word_bits(&self, w: usize) -> u64 {
        let mut busy = self.tx_row[w] | self.rx_row[w];
        if self.skip_full {
            busy |= self.full[w];
        }
        let mut bits = !busy;
        if w == self.last_word {
            bits &= self.hi_mask;
        }
        // `word` only starts at the window's first word, so the low mask is
        // applied exactly once, by the constructor's initial fill.
        bits
    }
}

impl Iterator for FreeSlots<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some((self.word as u32) * 64 + tz);
            }
            if self.word >= self.last_word {
                return None;
            }
            self.word += 1;
            self.bits = self.word_bits(self.word);
        }
    }
}

/// Hand-written so that `clone_from` propagates to every `Vec` field —
/// `Vec::clone_from` reuses the destination's allocations, which lets a
/// caller that clones schedules repeatedly (the gateway's delta path keeps
/// a scratch buffer) pay a memcpy instead of ~one allocation per occupied
/// cell. A derived `Clone` would fall back to `*self = source.clone()`.
impl Clone for Schedule {
    fn clone(&self) -> Self {
        Schedule {
            horizon: self.horizon,
            channel_count: self.channel_count,
            node_count: self.node_count,
            cells: self.cells.clone(),
            slot_busy: self.slot_busy.clone(),
            node_words: self.node_words,
            node_busy: self.node_busy.clone(),
            slot_words: self.slot_words,
            entries: self.entries.clone(),
            cell_links: self.cell_links.clone(),
            occupied_offsets: self.occupied_offsets.clone(),
            slot_full: self.slot_full.clone(),
            node_gen: self.node_gen.clone(),
            generation: self.generation,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.horizon = source.horizon;
        self.channel_count = source.channel_count;
        self.node_count = source.node_count;
        self.cells.clone_from(&source.cells);
        self.slot_busy.clone_from(&source.slot_busy);
        self.node_words = source.node_words;
        self.node_busy.clone_from(&source.node_busy);
        self.slot_words = source.slot_words;
        self.entries.clone_from(&source.entries);
        self.cell_links.clone_from(&source.cell_links);
        self.occupied_offsets.clone_from(&source.occupied_offsets);
        self.slot_full.clone_from(&source.slot_full);
        self.node_gen.clone_from(&source.node_gen);
        self.generation = source.generation;
    }
}

impl PartialEq for Schedule {
    /// Two schedules are equal when they have the same grid dimensions and
    /// the same entries in the same order — every occupancy index is a
    /// deterministic function of those.
    fn eq(&self, other: &Self) -> bool {
        self.horizon == other.horizon
            && self.channel_count == other.channel_count
            && self.node_count == other.node_count
            && self.entries == other.entries
    }
}

impl Serialize for Schedule {
    /// Emits the same wire shape the pre-optimization derive produced; the
    /// acceleration caches are derived data and never serialized.
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("horizon".to_string(), self.horizon.to_value()),
            ("channel_count".to_string(), self.channel_count.to_value()),
            ("node_count".to_string(), self.node_count.to_value()),
            ("cells".to_string(), self.cells.to_value()),
            ("slot_busy".to_string(), self.slot_busy.to_value()),
            ("node_words".to_string(), self.node_words.to_value()),
            ("node_busy".to_string(), self.node_busy.to_value()),
            ("slot_words".to_string(), self.slot_words.to_value()),
            ("entries".to_string(), self.entries.to_value()),
        ])
    }
}

impl Deserialize for Schedule {
    /// Reads the grid dimensions and entries, then replays the placements —
    /// bitsets and caches are rebuilt rather than trusted from the wire.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
            let f = v.get(name).ok_or_else(|| DeError::custom(format!("missing field {name}")))?;
            T::from_value(f).map_err(|e| e.context(name))
        }
        let horizon: u32 = field(v, "horizon")?;
        let channel_count: usize = field(v, "channel_count")?;
        let node_count: usize = field(v, "node_count")?;
        let entries: Vec<ScheduleEntry> = field(v, "entries")?;
        if horizon == 0 || channel_count == 0 {
            return Err(DeError::custom("schedule needs at least one slot and one channel"));
        }
        let mut schedule = Schedule::new(horizon, channel_count, node_count);
        for e in entries {
            if e.slot >= horizon || e.offset >= channel_count {
                return Err(DeError::custom(format!(
                    "entry at slot {} offset {} outside the {}×{} grid",
                    e.slot, e.offset, horizon, channel_count
                )));
            }
            let max_node = e.tx.link.tx.index().max(e.tx.link.rx.index());
            if max_node >= node_count {
                return Err(DeError::custom(format!(
                    "entry references node {max_node} beyond node count {node_count}"
                )));
            }
            schedule.place(e.slot, e.offset, e.tx);
        }
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_flow::FlowId;
    use wsan_net::DirectedLink;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn tx(a: usize, b: usize) -> ScheduledTx {
        ScheduledTx {
            flow: FlowId::new(0),
            job_index: 0,
            link: DirectedLink::new(n(a), n(b)),
            seq: 0,
            attempt: 0,
        }
    }

    #[test]
    fn empty_schedule_has_no_conflicts() {
        let s = Schedule::new(100, 4, 10);
        assert!(!s.conflicts(0, n(0), n(1)));
        assert_eq!(s.entry_count(), 0);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 0, 99), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_horizon_panics() {
        let _ = Schedule::new(0, 4, 10);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = Schedule::new(10, 0, 10);
    }

    #[test]
    fn place_updates_all_indexes() {
        let mut s = Schedule::new(100, 4, 10);
        s.place(5, 2, tx(1, 2));
        assert_eq!(s.cell(5, 2), &[tx(1, 2)]);
        assert_eq!(s.cell_links(5, 2), &[DirectedLink::new(n(1), n(2))]);
        assert!(s.node_busy_in_slot(n(1), 5));
        assert!(s.node_busy_in_slot(n(2), 5));
        assert!(!s.node_busy_in_slot(n(3), 5));
        assert!(s.conflicts(5, n(2), n(7)));
        assert!(s.conflicts(5, n(7), n(1)));
        assert!(!s.conflicts(5, n(7), n(8)));
        assert!(!s.conflicts(6, n(1), n(2)));
        assert_eq!(s.entry_count(), 1);
    }

    #[test]
    fn conflict_slot_count_over_ranges() {
        let mut s = Schedule::new(200, 2, 10);
        s.place(10, 0, tx(1, 2));
        s.place(20, 0, tx(2, 3));
        s.place(130, 1, tx(1, 4));
        // node 5-6 never busy
        assert_eq!(s.conflict_slot_count(n(5), n(6), 0, 199), 0);
        // link 1↔9: node 1 busy at 10 and 130
        assert_eq!(s.conflict_slot_count(n(1), n(9), 0, 199), 2);
        assert_eq!(s.conflict_slot_count(n(1), n(9), 11, 199), 1);
        assert_eq!(s.conflict_slot_count(n(1), n(9), 10, 10), 1);
        assert_eq!(s.conflict_slot_count(n(1), n(9), 11, 129), 0);
        // link 2↔9: node 2 busy at 10 and 20
        assert_eq!(s.conflict_slot_count(n(2), n(9), 0, 64), 2);
        // overlapping busy slots count once per slot: link 1↔2 busy at 10 (both), 20, 130
        assert_eq!(s.conflict_slot_count(n(1), n(2), 0, 199), 3);
    }

    #[test]
    fn conflict_slot_count_word_boundaries() {
        let mut s = Schedule::new(200, 1, 4);
        for slot in [63, 64, 127, 128] {
            s.place(slot, 0, tx(0, 1));
        }
        assert_eq!(s.conflict_slot_count(n(0), n(1), 63, 128), 4);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 64, 127), 2);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 0, 62), 0);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 129, 199), 0);
    }

    #[test]
    fn conflict_slot_count_clamps_to_horizon() {
        let mut s = Schedule::new(100, 1, 4);
        s.place(99, 0, tx(0, 1));
        assert_eq!(s.conflict_slot_count(n(0), n(1), 90, 5_000), 1);
    }

    #[test]
    fn inverted_range_is_empty() {
        let s = Schedule::new(100, 1, 4);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 50, 10), 0);
    }

    #[test]
    fn shared_cell_holds_multiple_transmissions() {
        let mut s = Schedule::new(10, 2, 10);
        s.place(3, 1, tx(0, 1));
        s.place(3, 1, tx(4, 5)); // disjoint nodes: no conflict
        assert_eq!(s.cell(3, 1).len(), 2);
        assert_eq!(s.cell_len(3, 1), 2);
        assert_eq!(s.cell_links(3, 1).len(), 2);
        let cells: Vec<_> = s.occupied_cells().collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, 3);
        assert_eq!(cells[0].1, 1);
    }

    #[test]
    #[should_panic(expected = "transmission conflict")]
    fn debug_placement_conflict_panics() {
        let mut s = Schedule::new(10, 2, 10);
        s.place(3, 0, tx(0, 1));
        s.place(3, 1, tx(1, 2)); // shares node 1 in the same slot
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn out_of_range_slot_panics() {
        let mut s = Schedule::new(10, 2, 10);
        s.place(10, 0, tx(0, 1));
    }

    #[test]
    fn node_count_above_64_uses_multiple_words() {
        let mut s = Schedule::new(10, 1, 130);
        s.place(1, 0, tx(100, 129));
        assert!(s.node_busy_in_slot(n(100), 1));
        assert!(s.node_busy_in_slot(n(129), 1));
        assert!(!s.node_busy_in_slot(n(64), 1));
        assert!(s.conflicts(1, n(129), n(3)));
    }

    #[test]
    fn slot_fullness_tracks_occupied_offsets() {
        let mut s = Schedule::new(10, 2, 20);
        assert!(!s.slot_is_full(3));
        s.place(3, 0, tx(0, 1));
        assert!(!s.slot_is_full(3));
        s.place(3, 0, tx(4, 5)); // same cell again: still one occupied offset
        assert!(!s.slot_is_full(3));
        s.place(3, 1, tx(8, 9));
        assert!(s.slot_is_full(3));
        assert!(!s.slot_is_full(4));
    }

    #[test]
    fn free_slots_skips_busy_and_respects_window() {
        let mut s = Schedule::new(200, 1, 4);
        for slot in [0, 1, 63, 64, 128] {
            s.place(slot, 0, tx(0, 1));
        }
        let free: Vec<u32> = s.free_slots(n(0), n(2), 0, 5, false).collect();
        assert_eq!(free, vec![2, 3, 4, 5]);
        // word-boundary busy slots are skipped
        let free: Vec<u32> = s.free_slots(n(1), n(2), 62, 66, false).collect();
        assert_eq!(free, vec![62, 65, 66]);
        // nodes not involved see every slot of the window
        let free: Vec<u32> = s.free_slots(n(2), n(3), 126, 130, false).collect();
        assert_eq!(free, vec![126, 127, 128, 129, 130]);
        // inverted and beyond-horizon windows are empty / clamped
        assert_eq!(s.free_slots(n(0), n(1), 50, 10, false).count(), 0);
        assert_eq!(s.free_slots(n(2), n(3), 198, 5_000, false).count(), 2);
    }

    #[test]
    fn free_slots_skip_full_excludes_packed_slots() {
        let mut s = Schedule::new(10, 1, 8);
        s.place(2, 0, tx(0, 1));
        s.place(4, 0, tx(0, 1));
        // node 5 is idle everywhere, but slots 2 and 4 are fully packed
        let free: Vec<u32> = s.free_slots(n(5), n(6), 0, 9, true).collect();
        assert_eq!(free, vec![0, 1, 3, 5, 6, 7, 8, 9]);
        // without skip_full the packed slots come back
        let free: Vec<u32> = s.free_slots(n(5), n(6), 0, 9, false).collect();
        assert_eq!(free, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn node_generations_advance_only_for_touched_nodes() {
        let mut s = Schedule::new(10, 2, 10);
        let before = s.generation();
        s.place(0, 0, tx(1, 2));
        assert_eq!(s.generation(), before + 1);
        assert_eq!(s.node_generation(n(1)), 1);
        assert_eq!(s.node_generation(n(2)), 1);
        assert_eq!(s.node_generation(n(3)), 0);
        s.place(1, 0, tx(2, 3));
        assert_eq!(s.node_generation(n(1)), 1);
        assert_eq!(s.node_generation(n(2)), 2);
        assert_eq!(s.node_generation(n(3)), 1);
    }

    #[test]
    fn serde_roundtrip_rebuilds_indexes() {
        let mut s = Schedule::new(100, 2, 10);
        s.place(10, 0, tx(1, 2));
        s.place(10, 1, tx(4, 5));
        s.place(70, 0, tx(1, 2));
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.entries(), s.entries());
        assert!(back.slot_is_full(10));
        assert!(back.conflicts(70, n(2), n(9)));
        assert_eq!(back.conflict_slot_count(n(1), n(2), 0, 99), 2);
    }

    #[test]
    fn deserialize_rejects_out_of_grid_entries() {
        let mut s = Schedule::new(10, 1, 4);
        s.place(3, 0, tx(0, 1));
        let json = serde_json::to_string(&s).unwrap();
        let bad = json.replace("\"slot\":3", "\"slot\":99");
        assert!(serde_json::from_str::<Schedule>(&bad).is_err());
    }
}
