//! The TSCH transmission schedule: (slot, channel offset) assignments.

use crate::ScheduledTx;
use serde::{Deserialize, Serialize};
use wsan_net::NodeId;

/// One row of the schedule: a transmission placed in a slot at a channel
/// offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// Slot number within the hyperperiod, `0..horizon`.
    pub slot: u32,
    /// Channel offset, `0..channel_count`.
    pub offset: usize,
    /// The transmission occupying the cell.
    pub tx: ScheduledTx,
}

/// A transmission schedule over one hyperperiod.
///
/// The grid has `horizon` slots × `channel_count` channel offsets; a cell
/// may hold several transmissions when channel reuse is in effect. The
/// structure maintains two occupancy indexes used on schedulers' hot paths:
///
/// * per-slot node-busy bitsets — O(1) transmission-conflict checks,
/// * per-node slot-busy bitsets — popcount-speed conflict-slot counts for
///   the laxity estimate (Eq. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    horizon: u32,
    channel_count: usize,
    node_count: usize,
    /// `cells[slot * channel_count + offset]` → transmissions in that cell.
    cells: Vec<Vec<ScheduledTx>>,
    /// `slot_busy[slot * node_words + w]`: bit `b` set ⇔ node `64w+b` is a
    /// sender or receiver in `slot`.
    slot_busy: Vec<u64>,
    node_words: usize,
    /// `node_busy[node * slot_words + w]`: bit `b` set ⇔ the node is busy in
    /// slot `64w+b`.
    node_busy: Vec<u64>,
    slot_words: usize,
    entries: Vec<ScheduleEntry>,
}

impl Schedule {
    /// Creates an empty schedule grid.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` or `channel_count` is zero.
    pub fn new(horizon: u32, channel_count: usize, node_count: usize) -> Self {
        assert!(horizon > 0, "schedule needs at least one slot");
        assert!(channel_count > 0, "schedule needs at least one channel");
        let node_words = node_count.div_ceil(64).max(1);
        let slot_words = (horizon as usize).div_ceil(64);
        Schedule {
            horizon,
            channel_count,
            node_count,
            cells: vec![Vec::new(); horizon as usize * channel_count],
            slot_busy: vec![0; horizon as usize * node_words],
            node_words,
            node_busy: vec![0; node_count * slot_words],
            slot_words,
            entries: Vec::new(),
        }
    }

    /// Number of slots in the hyperperiod.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Number of channel offsets `|M|`.
    pub fn channel_count(&self) -> usize {
        self.channel_count
    }

    /// Number of nodes the schedule was sized for.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Total number of scheduled transmissions.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// All entries in placement order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Transmissions sharing `(slot, offset)`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `offset` is out of range.
    pub fn cell(&self, slot: u32, offset: usize) -> &[ScheduledTx] {
        assert!(slot < self.horizon && offset < self.channel_count);
        &self.cells[slot as usize * self.channel_count + offset]
    }

    /// Whether `node` is a sender or receiver in `slot`.
    pub fn node_busy_in_slot(&self, node: NodeId, slot: u32) -> bool {
        let base = slot as usize * self.node_words;
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.slot_busy[base + w] & (1u64 << b) != 0
    }

    /// Whether placing a transmission over `tx → rx` in `slot` would create
    /// a *transmission conflict* (§III-B): some scheduled transmission in
    /// the slot already uses either node.
    pub fn conflicts(&self, slot: u32, tx: NodeId, rx: NodeId) -> bool {
        self.node_busy_in_slot(tx, slot) || self.node_busy_in_slot(rx, slot)
    }

    /// Number of slots in the inclusive range `[from, to]` in which some
    /// scheduled transmission conflicts with a transmission over `a ↔ b` —
    /// the `q_t` term of the laxity estimate (Eq. 1).
    ///
    /// Returns 0 when `from > to`.
    pub fn conflict_slot_count(&self, a: NodeId, b: NodeId, from: u32, to: u32) -> u32 {
        if from > to {
            return 0;
        }
        let to = to.min(self.horizon - 1);
        if from > to {
            return 0;
        }
        let base_a = a.index() * self.slot_words;
        let base_b = b.index() * self.slot_words;
        let mut count = 0u32;
        let first_word = (from / 64) as usize;
        let last_word = (to / 64) as usize;
        for w in first_word..=last_word {
            let mut bits = self.node_busy[base_a + w] | self.node_busy[base_b + w];
            if w == first_word {
                let lo = from % 64;
                bits &= u64::MAX << lo;
            }
            if w == last_word {
                let hi = to % 64;
                if hi < 63 {
                    bits &= (1u64 << (hi + 1)) - 1;
                }
            }
            count += bits.count_ones();
        }
        count
    }

    /// Places a transmission into `(slot, offset)`.
    ///
    /// The caller is responsible for having checked the channel reuse
    /// constraints; conflicts are asserted in debug builds.
    ///
    /// # Panics
    ///
    /// Panics if `slot`/`offset` are out of range, and in debug builds if
    /// the placement creates a transmission conflict.
    pub fn place(&mut self, slot: u32, offset: usize, tx: ScheduledTx) {
        assert!(slot < self.horizon, "slot {slot} beyond horizon {}", self.horizon);
        assert!(offset < self.channel_count, "offset {offset} beyond channel count");
        debug_assert!(
            !self.conflicts(slot, tx.link.tx, tx.link.rx),
            "placement of {tx} at slot {slot} creates a transmission conflict"
        );
        self.cells[slot as usize * self.channel_count + offset].push(tx);
        for node in [tx.link.tx, tx.link.rx] {
            let (w, b) = (node.index() / 64, node.index() % 64);
            self.slot_busy[slot as usize * self.node_words + w] |= 1u64 << b;
            let (sw, sb) = ((slot / 64) as usize, slot % 64);
            self.node_busy[node.index() * self.slot_words + sw] |= 1u64 << sb;
        }
        self.entries.push(ScheduleEntry { slot, offset, tx });
    }

    /// Number of transmissions already sharing `(slot, offset)` — the
    /// tie-break key when several offsets satisfy the constraints ("choose a
    /// channel with the fewest number of scheduled transmissions").
    pub fn cell_len(&self, slot: u32, offset: usize) -> usize {
        self.cells[slot as usize * self.channel_count + offset].len()
    }

    /// Iterates over the non-empty cells as `(slot, offset, transmissions)`.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (u32, usize, &[ScheduledTx])> {
        self.cells.iter().enumerate().filter(|(_, c)| !c.is_empty()).map(move |(i, c)| {
            let slot = (i / self.channel_count) as u32;
            let offset = i % self.channel_count;
            (slot, offset, c.as_slice())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_flow::FlowId;
    use wsan_net::DirectedLink;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn tx(a: usize, b: usize) -> ScheduledTx {
        ScheduledTx {
            flow: FlowId::new(0),
            job_index: 0,
            link: DirectedLink::new(n(a), n(b)),
            seq: 0,
            attempt: 0,
        }
    }

    #[test]
    fn empty_schedule_has_no_conflicts() {
        let s = Schedule::new(100, 4, 10);
        assert!(!s.conflicts(0, n(0), n(1)));
        assert_eq!(s.entry_count(), 0);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 0, 99), 0);
    }

    #[test]
    fn place_updates_all_indexes() {
        let mut s = Schedule::new(100, 4, 10);
        s.place(5, 2, tx(1, 2));
        assert_eq!(s.cell(5, 2), &[tx(1, 2)]);
        assert!(s.node_busy_in_slot(n(1), 5));
        assert!(s.node_busy_in_slot(n(2), 5));
        assert!(!s.node_busy_in_slot(n(3), 5));
        assert!(s.conflicts(5, n(2), n(7)));
        assert!(s.conflicts(5, n(7), n(1)));
        assert!(!s.conflicts(5, n(7), n(8)));
        assert!(!s.conflicts(6, n(1), n(2)));
        assert_eq!(s.entry_count(), 1);
    }

    #[test]
    fn conflict_slot_count_over_ranges() {
        let mut s = Schedule::new(200, 2, 10);
        s.place(10, 0, tx(1, 2));
        s.place(20, 0, tx(2, 3));
        s.place(130, 1, tx(1, 4));
        // node 5-6 never busy
        assert_eq!(s.conflict_slot_count(n(5), n(6), 0, 199), 0);
        // link 1↔9: node 1 busy at 10 and 130
        assert_eq!(s.conflict_slot_count(n(1), n(9), 0, 199), 2);
        assert_eq!(s.conflict_slot_count(n(1), n(9), 11, 199), 1);
        assert_eq!(s.conflict_slot_count(n(1), n(9), 10, 10), 1);
        assert_eq!(s.conflict_slot_count(n(1), n(9), 11, 129), 0);
        // link 2↔9: node 2 busy at 10 and 20
        assert_eq!(s.conflict_slot_count(n(2), n(9), 0, 64), 2);
        // overlapping busy slots count once per slot: link 1↔2 busy at 10 (both), 20, 130
        assert_eq!(s.conflict_slot_count(n(1), n(2), 0, 199), 3);
    }

    #[test]
    fn conflict_slot_count_word_boundaries() {
        let mut s = Schedule::new(200, 1, 4);
        for slot in [63, 64, 127, 128] {
            s.place(slot, 0, tx(0, 1));
        }
        assert_eq!(s.conflict_slot_count(n(0), n(1), 63, 128), 4);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 64, 127), 2);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 0, 62), 0);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 129, 199), 0);
    }

    #[test]
    fn conflict_slot_count_clamps_to_horizon() {
        let mut s = Schedule::new(100, 1, 4);
        s.place(99, 0, tx(0, 1));
        assert_eq!(s.conflict_slot_count(n(0), n(1), 90, 5_000), 1);
    }

    #[test]
    fn inverted_range_is_empty() {
        let s = Schedule::new(100, 1, 4);
        assert_eq!(s.conflict_slot_count(n(0), n(1), 50, 10), 0);
    }

    #[test]
    fn shared_cell_holds_multiple_transmissions() {
        let mut s = Schedule::new(10, 2, 10);
        s.place(3, 1, tx(0, 1));
        s.place(3, 1, tx(4, 5)); // disjoint nodes: no conflict
        assert_eq!(s.cell(3, 1).len(), 2);
        assert_eq!(s.cell_len(3, 1), 2);
        let cells: Vec<_> = s.occupied_cells().collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, 3);
        assert_eq!(cells[0].1, 1);
    }

    #[test]
    #[should_panic(expected = "transmission conflict")]
    fn debug_placement_conflict_panics() {
        let mut s = Schedule::new(10, 2, 10);
        s.place(3, 0, tx(0, 1));
        s.place(3, 1, tx(1, 2)); // shares node 1 in the same slot
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn out_of_range_slot_panics() {
        let mut s = Schedule::new(10, 2, 10);
        s.place(10, 0, tx(0, 1));
    }

    #[test]
    fn node_count_above_64_uses_multiple_words() {
        let mut s = Schedule::new(10, 1, 130);
        s.place(1, 0, tx(100, 129));
        assert!(s.node_busy_in_slot(n(100), 1));
        assert!(s.node_busy_in_slot(n(129), 1));
        assert!(!s.node_busy_in_slot(n(64), 1));
        assert!(s.conflicts(1, n(129), n(3)));
    }
}
