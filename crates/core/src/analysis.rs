//! Worst-case end-to-end delay analysis — a *sufficient* schedulability
//! test for fixed-priority WirelessHART scheduling without channel reuse.
//!
//! The paper's evaluation decides schedulability empirically (run the
//! scheduler, see if deadlines hold). The real-time literature it builds on
//! (Saifullah et al., RTSS'10 — the paper's reference 24) instead bounds the
//! worst-case end-to-end delay analytically. This module implements such a
//! bound, adapted to this crate's model, for two purposes:
//!
//! * a fast admission test that never accepts an NR-unschedulable flow set
//!   (pessimistic but safe),
//! * a quantitative view of *where* delay comes from: transmission demand,
//!   node conflicts, or channel contention.
//!
//! ## The bound
//!
//! A flow's packet needs `C_i` dedicated slots (its transmissions,
//! including retry provisioning). While it is in flight, a higher-priority
//! flow `F_j` can delay it two ways (§III-B's two constraints):
//!
//! * **conflict delay** — a transmission of `F_j` sharing a node with
//!   `F_i`'s route blocks that slot outright, regardless of channels;
//! * **contention delay** — transmissions of `F_j` on other nodes still
//!   occupy channels; with `m` channels, every `m` of them can steal one
//!   slot.
//!
//! The response time is the least fixed point of
//!
//! ```text
//! R_i = C_i + Σ_{j<i} n_j(R_i)·Δ(i,j) + ⌈ Σ_{j<i} n_j(R_i)·C_j / m ⌉
//! ```
//!
//! where `n_j(R) = ⌈R / P_j⌉` bounds how many jobs of `F_j` overlap a
//! window of length `R` and `Δ(i,j)` counts the transmissions of one job
//! of `F_j` that conflict with `F_i`'s route. Conflicting transmissions are
//! counted in both terms, which only adds pessimism (safety is what a
//! sufficient test needs). If the fixed point stays within `D_i` for every
//! flow, the set is declared schedulable.

use crate::NetworkModel;
use std::collections::HashSet;
use wsan_flow::{Flow, FlowSet};
use wsan_net::NodeId;

/// Per-flow outcome of the delay analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayBound {
    /// The fixed point converged at this many slots (≤ deadline).
    Bounded(u32),
    /// The iteration exceeded the flow's deadline: the analysis cannot
    /// guarantee the flow (it may still be schedulable in practice — the
    /// test is sufficient, not necessary).
    ExceedsDeadline,
}

impl DelayBound {
    /// Whether the analysis guarantees the flow.
    pub fn is_bounded(self) -> bool {
        matches!(self, DelayBound::Bounded(_))
    }
}

/// Result of analysing a whole flow set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Per-flow bounds in priority order.
    pub bounds: Vec<DelayBound>,
}

impl AnalysisReport {
    /// Whether every flow's worst-case delay is within its deadline.
    pub fn schedulable(&self) -> bool {
        self.bounds.iter().all(|b| b.is_bounded())
    }

    /// The guaranteed response time of flow `i`, if bounded.
    pub fn response_time(&self, i: usize) -> Option<u32> {
        match self.bounds.get(i) {
            Some(DelayBound::Bounded(r)) => Some(*r),
            _ => None,
        }
    }
}

/// Number of slots one job of `flow` needs, with retry provisioning.
fn demand(flow: &Flow, attempts: u32) -> u32 {
    flow.hop_count() as u32 * attempts
}

/// Transmissions of one job of `hp` that conflict with `flow`'s route
/// (share a node with any of its links).
fn conflict_count(flow: &Flow, hp: &Flow, attempts: u32) -> u32 {
    let nodes: HashSet<NodeId> = flow.links().iter().flat_map(|l| [l.tx, l.rx]).collect();
    hp.links().iter().filter(|l| nodes.contains(&l.tx) || nodes.contains(&l.rx)).count() as u32
        * attempts
}

/// Runs the response-time analysis on `flows` over `model.channels()`
/// channels, assuming `attempts` scheduled slots per link (2 with the
/// paper's retry provisioning).
pub fn analyse(flows: &FlowSet, model: &NetworkModel, attempts: u32) -> AnalysisReport {
    let m = model.channels().max(1) as u32;
    let all: Vec<&Flow> = flows.iter().collect();
    let bounds = all
        .iter()
        .enumerate()
        .map(|(i, flow)| {
            let c_i = demand(flow, attempts);
            let deadline = flow.deadline_slots();
            // precompute interference of each higher-priority flow
            let hp: Vec<(u32, u32, u32)> = all[..i]
                .iter()
                .map(|j| {
                    (j.period().slots(), conflict_count(flow, j, attempts), demand(j, attempts))
                })
                .collect();
            let mut r = c_i;
            loop {
                if r > deadline {
                    return DelayBound::ExceedsDeadline;
                }
                let mut conflict = 0u64;
                let mut load = 0u64;
                for &(p, delta, c_j) in &hp {
                    let n = u64::from(r.div_ceil(p));
                    conflict += n * u64::from(delta);
                    load += n * u64::from(c_j);
                }
                let next = u64::from(c_i) + conflict + load.div_ceil(u64::from(m));
                let next = u32::try_from(next).unwrap_or(u32::MAX);
                if next == r {
                    return DelayBound::Bounded(r);
                }
                r = next.max(r + 1); // guarantee progress
            }
        })
        .collect();
    AnalysisReport { bounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{model_for, parallel_set};
    use crate::{NoReuse, Scheduler};

    #[test]
    fn lone_flow_bound_equals_its_demand() {
        let (flows, reuse) = parallel_set(1, 4, 100, 90);
        let model = model_for(&reuse, 2);
        let report = analyse(&flows, &model, 2);
        // 1 link × 2 attempts
        assert_eq!(report.response_time(0), Some(2));
        assert!(report.schedulable());
    }

    #[test]
    fn conflicting_flows_add_conflict_delay() {
        // two flows over the same line: the second sees the first's full
        // demand as conflict AND contention
        let (flows, reuse) = crate::test_util::line_set(2, 3, 100, 90);
        let model = model_for(&reuse, 2);
        let report = analyse(&flows, &model, 2);
        // C = 2 links × 2 = 4; flow 2: 4 + conflict 4 + ceil(4/2)=2 → 10
        assert_eq!(report.response_time(0), Some(4));
        assert_eq!(report.response_time(1), Some(10));
    }

    #[test]
    fn disjoint_flows_only_contend_for_channels() {
        let (flows, reuse) = parallel_set(2, 4, 100, 90);
        let model = model_for(&reuse, 2);
        let report = analyse(&flows, &model, 2);
        // flow 2: C=2, conflict 0, contention ceil(2/2)=1 → 3
        assert_eq!(report.response_time(1), Some(3));
    }

    #[test]
    fn overload_exceeds_deadline() {
        let (flows, reuse) = crate::test_util::line_set(12, 3, 50, 25);
        let model = model_for(&reuse, 1);
        let report = analyse(&flows, &model, 2);
        assert!(!report.schedulable());
        // the first flow alone is fine
        assert!(report.bounds[0].is_bounded());
        assert!(matches!(report.bounds[11], DelayBound::ExceedsDeadline));
    }

    #[test]
    fn analysis_is_sufficient_for_greedy_nr_on_these_families() {
        // on the structured test families, analysis-accepted sets must be
        // schedulable by the greedy NR scheduler (safety direction)
        for pairs in 2..8 {
            for deadline in [20u32, 40, 80] {
                let (flows, reuse) = parallel_set(pairs, 4, 100, deadline);
                for channels in 1..4 {
                    let model = model_for(&reuse, channels);
                    let report = analyse(&flows, &model, 2);
                    if report.schedulable() {
                        assert!(
                            NoReuse::new().schedule(&flows, &model).is_ok(),
                            "analysis accepted {pairs} pairs, D={deadline}, m={channels} \
                             but NR failed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn analysis_is_more_pessimistic_than_practice() {
        // the converse direction: NR often schedules sets the analysis
        // rejects — demonstrate at least one
        let (flows, reuse) = crate::test_util::line_set(3, 4, 100, 40);
        let model = model_for(&reuse, 2);
        assert!(NoReuse::new().schedule(&flows, &model).is_ok());
        let report = analyse(&flows, &model, 2);
        // flow 3 sees 2×(conflict 6 + load) … the bound overshoots: not
        // asserted strictly bounded/unbounded, just recorded behaviour:
        // if this starts passing the analysis, the test family got easier —
        // loosen deliberately rather than silently.
        let _ = report;
    }
}
