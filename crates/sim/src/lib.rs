//! TSCH network simulator for WSAN schedules.
//!
//! The paper measures reliability (Figs. 8–11) by running schedules on the
//! physical 60-node WUSTL testbed. This crate is the synthetic stand-in: it
//! executes a [`Schedule`](wsan_core::Schedule) slot by slot against a
//! probabilistic PHY and reports exactly the quantities the testbed
//! experiments collect:
//!
//! * per-flow **Packet Delivery Ratio** (fraction of released packets that
//!   reach their destination within the deadline) — Fig. 8,
//! * per-link **PRR samples split by condition** (slots where the link's
//!   channel is shared vs. contention-free) — the input of the §VI
//!   detection policy and Figs. 10–11.
//!
//! ## PHY model
//!
//! Each reception first passes the link's measured per-channel PRR (drawn
//! from the same [`Topology`](wsan_net::Topology) tables the scheduler
//! planned with), then survives concurrent interference with a
//! capture-effect probability driven by the signal-to-interference ratio at
//! the receiver. Interference powers come from the same propagation model
//! and frozen shadowing that produced the PRR tables, so "2 reuse hops
//! apart" means what it meant to the scheduler. External WiFi interference
//! ([`WifiInterferer`]) raises the interference floor on overlapping
//! channels for nearby receivers in both reuse and contention-free slots —
//! which is what lets the K-S classifier tell the two causes apart.
//!
//! Channel hopping follows the standard formula: in absolute slot `asn`,
//! channel offset `c` maps to physical channel `(asn + c) mod |M|` of the
//! channel set, with `asn` running across schedule repetitions.
//!
//! # Example
//!
//! ```
//! use wsan_core::{NetworkModel, ReuseConservatively, Scheduler};
//! use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
//! use wsan_net::{testbeds, ChannelId, Prr};
//! use wsan_sim::{SimConfig, Simulator};
//!
//! let topo = testbeds::wustl(3);
//! let channels = ChannelId::range(11, 14).unwrap();
//! let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
//! let model = NetworkModel::new(&topo, &channels);
//! let cfg = FlowSetConfig::new(8, PeriodRange::new(0, 1).unwrap(), TrafficPattern::PeerToPeer);
//! let flows = FlowSetGenerator::new(1).generate(&comm, &cfg).unwrap();
//! let schedule = ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
//!
//! let sim = Simulator::new(&topo, &channels, &flows, &schedule);
//! let report = sim.run(&SimConfig { repetitions: 50, ..SimConfig::default() });
//! assert!(report.network_pdr() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autonomous;
pub mod coexistence;
mod config;
mod engine;
mod error;
mod events;
pub mod faults;
pub mod interference;
mod phy;
mod report;
pub mod trace;

pub use autonomous::AutonomousSimulator;
pub use config::{CaptureModel, FadingModel, SimConfig, SimEngine};
pub use engine::Simulator;
pub use error::SimError;
pub use faults::{FaultEvent, FaultKind, FaultLog, FaultPlan, FaultRecord, FaultTrigger};
pub use interference::WifiInterferer;
pub use report::{FlowStats, LinkCondition, PrrSample, SimReport};
pub use trace::{TraceBuffer, TraceEvent};
