//! The probabilistic PHY: reception success under interference.

use crate::{CaptureModel, WifiInterferer};
use wsan_net::propagation::{dbm_to_mw, PropagationModel};
use wsan_net::{ChannelId, NodeId, Topology};

/// Resolves signal and interference powers against the topology's frozen
/// propagation state, and turns them into reception-success probabilities.
pub(crate) struct Phy<'a> {
    topo: &'a Topology,
    model: PropagationModel,
    capture: CaptureModel,
}

impl<'a> Phy<'a> {
    pub fn new(topo: &'a Topology, capture: CaptureModel) -> Self {
        let model = topo.propagation_model().cloned().unwrap_or_default();
        Phy { topo, model, capture }
    }

    /// Received power (dBm) at `rx` of a signal from `tx` on `channel`,
    /// using the same frozen shadowing that generated the PRR tables.
    pub fn received_power_dbm(&self, tx: NodeId, rx: NodeId, channel: ChannelId) -> f64 {
        let pa = self.topo.position(tx);
        let pb = self.topo.position(rx);
        let mean = self
            .model
            .mean_rssi_dbm(pa.distance(&pb), pa.floors_between(&pb, self.model.floor_height_m));
        mean + self.topo.shadowing_db(tx, rx, channel)
    }

    /// External interference power (mW) at `rx` on `channel` from the
    /// active interferers. Accepts any iterator of interferer references so
    /// hot loops can chain their sources without materializing a vector.
    pub fn external_mw<'w>(
        &self,
        rx: NodeId,
        channel: ChannelId,
        active: impl IntoIterator<Item = &'w WifiInterferer>,
    ) -> f64 {
        let pos = self.topo.position(rx);
        active
            .into_iter()
            .filter(|w| w.affects(channel))
            .map(|w| dbm_to_mw(w.power_at(&pos, &self.model)))
            .sum()
    }

    /// Probability that the transmission `tx → rx` on `channel` succeeds
    /// given `interferer_senders` transmitting concurrently on the same
    /// physical channel, `external_mw` of external interference power at
    /// the receiver, and a per-reception temporal fading draw `fading_db`
    /// added to the signal-to-interference ratio (0 for the no-fading
    /// expectation; the engine draws it from
    /// `N(0, capture.fading_sigma_db²)`).
    ///
    /// The link's measured PRR (which already encodes the quiet-environment
    /// noise floor) gates the reception; the capture model then discounts it
    /// by the faded signal-to-interference ratio.
    pub fn success_probability(
        &self,
        tx: NodeId,
        rx: NodeId,
        channel: ChannelId,
        interferer_senders: &[NodeId],
        external_mw: f64,
        fading_db: f64,
    ) -> f64 {
        self.success_probability_faulted(
            tx,
            rx,
            channel,
            interferer_senders,
            external_mw,
            fading_db,
            None,
        )
    }

    /// Like [`Self::success_probability`], but with an optional injected
    /// fault ceiling on the link's base PRR: when `base_override` is set,
    /// the measured PRR is capped at that value (a collapse can only make a
    /// link worse, never better).
    #[allow(clippy::too_many_arguments)]
    pub fn success_probability_faulted(
        &self,
        tx: NodeId,
        rx: NodeId,
        channel: ChannelId,
        interferer_senders: &[NodeId],
        external_mw: f64,
        fading_db: f64,
        base_override: Option<f64>,
    ) -> f64 {
        let measured = self.topo.prr(tx, rx, channel).value();
        let base = base_override.map_or(measured, |o| measured.min(o.clamp(0.0, 1.0)));
        if base == 0.0 {
            return 0.0;
        }
        let interference_mw: f64 = interferer_senders
            .iter()
            .map(|&s| dbm_to_mw(self.received_power_dbm(s, rx, channel)))
            .sum::<f64>()
            + external_mw;
        if interference_mw <= 0.0 {
            return base;
        }
        let signal_mw = dbm_to_mw(self.received_power_dbm(tx, rx, channel));
        let sir_db = 10.0 * (signal_mw / interference_mw).log10() + fading_db;
        base * self.capture.capture_probability(sir_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::{Position, Prr};

    fn ch(n: u8) -> ChannelId {
        ChannelId::new(n).unwrap()
    }

    /// Three nodes on a line: 0 --10m-- 1 --30m-- 2.
    fn topo() -> Topology {
        let mut t = Topology::new(
            "phy-test",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
                Position::new(40.0, 0.0, 0.0),
            ],
        );
        t.set_propagation_model(PropagationModel::default());
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    t.set_prr(NodeId::new(a), NodeId::new(b), ch(11), Prr::new(0.95).unwrap())
                        .unwrap();
                }
            }
        }
        t
    }

    #[test]
    fn no_interference_returns_base_prr() {
        let t = topo();
        let phy = Phy::new(&t, CaptureModel::default());
        let p = phy.success_probability(NodeId::new(0), NodeId::new(1), ch(11), &[], 0.0, 0.0);
        // PRR tables store f32; compare at f32 precision.
        assert!((p - 0.95).abs() < 1e-6);
    }

    #[test]
    fn zero_base_prr_never_succeeds() {
        let t = topo();
        let phy = Phy::new(&t, CaptureModel::default());
        let p = phy.success_probability(NodeId::new(0), NodeId::new(1), ch(12), &[], 0.0, 0.0);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn nearby_interferer_hurts_more_than_distant() {
        let t = topo();
        let phy = Phy::new(&t, CaptureModel::default());
        // reception 0 → 1 (10 m). Interferer at node 2 is 30 m from rx.
        let with_far = phy.success_probability(
            NodeId::new(0),
            NodeId::new(1),
            ch(11),
            &[NodeId::new(2)],
            0.0,
            0.0,
        );
        // reception 2 → 1 (30 m) with interferer node 0 at 10 m from rx:
        // signal weaker than interference → collapse.
        let with_near = phy.success_probability(
            NodeId::new(2),
            NodeId::new(1),
            ch(11),
            &[NodeId::new(0)],
            0.0,
            0.0,
        );
        assert!(with_far > with_near);
        assert!(with_far > 0.8, "distant interferer should barely matter, got {with_far}");
        assert!(with_near < 0.1, "near interferer should break capture, got {with_near}");
    }

    #[test]
    fn interference_is_cumulative() {
        // like topo(), with a fourth node 35 m out
        let mut t2 = Topology::new(
            "phy-test4",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
                Position::new(40.0, 0.0, 0.0),
                Position::new(0.0, 35.0, 0.0),
            ],
        );
        t2.set_propagation_model(PropagationModel::default());
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    t2.set_prr(NodeId::new(a), NodeId::new(b), ch(11), Prr::new(0.95).unwrap())
                        .unwrap();
                }
            }
        }
        let t = t2;
        let phy = Phy::new(&t, CaptureModel::default());
        let one = phy.success_probability(
            NodeId::new(0),
            NodeId::new(1),
            ch(11),
            &[NodeId::new(2)],
            0.0,
            0.0,
        );
        let two = phy.success_probability(
            NodeId::new(0),
            NodeId::new(1),
            ch(11),
            &[NodeId::new(2), NodeId::new(3)],
            0.0,
            0.0,
        );
        assert!(two < one, "adding an interferer must not help ({two} !< {one})");
    }

    #[test]
    fn external_power_behaves_like_interference() {
        let t = topo();
        let phy = Phy::new(&t, CaptureModel::default());
        let clean = phy.success_probability(NodeId::new(0), NodeId::new(1), ch(11), &[], 0.0, 0.0);
        let strong_external = dbm_to_mw(-60.0);
        let noisy = phy.success_probability(
            NodeId::new(0),
            NodeId::new(1),
            ch(11),
            &[],
            strong_external,
            0.0,
        );
        assert!(noisy < clean);
    }

    #[test]
    fn shadowing_feeds_received_power() {
        let mut t = topo();
        let before = {
            let phy = Phy::new(&t, CaptureModel::default());
            phy.received_power_dbm(NodeId::new(0), NodeId::new(1), ch(11))
        };
        t.set_shadowing_db(NodeId::new(0), NodeId::new(1), ch(11), 6.0);
        let after = {
            let phy = Phy::new(&t, CaptureModel::default());
            phy.received_power_dbm(NodeId::new(0), NodeId::new(1), ch(11))
        };
        assert!((after - before - 6.0).abs() < 1e-9);
    }
}
