//! The slot-by-slot simulation engine.

use crate::error::SimError;
use crate::faults::{FaultInjector, FaultLog};
use crate::phy::Phy;
use crate::{FlowStats, LinkCondition, PrrSample, SimConfig, SimReport, WifiInterferer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use wsan_core::Schedule;
use wsan_flow::FlowSet;
use wsan_net::{ChannelSet, DirectedLink, NodeId, Topology};

/// One transmission opportunity of the slotframe, precomputed for fast
/// repetition. Shared with the event engine (`crate::events`), which
/// resolves the same records in the same order — just without visiting the
/// slots between them.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotTx {
    pub(crate) offset: usize,
    pub(crate) link: DirectedLink,
    pub(crate) job_flat: usize,
    pub(crate) hop_index: u32,
    pub(crate) reuse: bool,
}

/// Instrument handles for the per-slot loop, built once per run and only
/// when global metrics are on. Recording never touches the engine RNG, so
/// an instrumented run stays bit-identical to a plain one.
pub(crate) struct SimMetrics {
    pub(crate) tx: wsan_obs::Counter,
    pub(crate) ack: wsan_obs::Counter,
    pub(crate) collisions: wsan_obs::Counter,
    pub(crate) fault_events: wsan_obs::Counter,
    pub(crate) deliveries: wsan_obs::Counter,
    pub(crate) expiries: wsan_obs::Counter,
    pub(crate) prr: wsan_obs::Histogram,
    /// Wall time spent resolving one busy slot's transmissions, with
    /// p50/p90/p99/p999 quantiles (both engines record into it).
    pub(crate) slot_batch_ns: wsan_obs::HdrHistogram,
}

impl SimMetrics {
    pub(crate) fn new() -> Self {
        let reg = wsan_obs::global_metrics();
        SimMetrics {
            tx: reg.counter("sim.tx"),
            ack: reg.counter("sim.ack"),
            collisions: reg.counter("sim.collisions"),
            fault_events: reg.counter("sim.fault_events"),
            deliveries: reg.counter("sim.deliveries"),
            expiries: reg.counter("sim.expiries"),
            prr: reg.histogram("sim.prr", &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]),
            slot_batch_ns: reg.quantile("sim.slot_batch_ns"),
        }
    }

    /// Publishes per-flow end-to-end gauges from a finished report:
    /// `sim.flow.<i>.pdr` and `sim.flow.<i>.latency_mean_slots`. Cold path
    /// (once per run); gauge registration takes the registry write lock.
    pub(crate) fn record_flow_gauges(report: &crate::SimReport) {
        let reg = wsan_obs::global_metrics();
        for (fi, stats) in report.flows.iter().enumerate() {
            let pdr = if stats.released == 0 {
                0.0
            } else {
                stats.delivered as f64 / stats.released as f64
            };
            reg.gauge(&format!("sim.flow.{fi}.pdr")).set(pdr);
            let lat = &report.latencies[fi];
            if !lat.is_empty() {
                let mean = lat.iter().map(|&l| f64::from(l)).sum::<f64>() / lat.len() as f64;
                reg.gauge(&format!("sim.flow.{fi}.latency_mean_slots")).set(mean);
            }
        }
    }
}

/// Executes a schedule against the probabilistic PHY.
///
/// The simulator borrows the planning artifacts — the topology whose PRR
/// tables the scheduler used, the channel set, the flow set, and the
/// schedule — and can then be run any number of times with different
/// [`SimConfig`]s (seeds, interference environments).
#[derive(Debug)]
pub struct Simulator<'a> {
    pub(crate) topo: &'a Topology,
    pub(crate) channels: &'a ChannelSet,
    pub(crate) flows: &'a FlowSet,
    pub(crate) horizon: u32,
    /// transmission opportunities grouped by slot
    pub(crate) per_slot: Vec<Vec<SlotTx>>,
    /// flat job index base per flow
    pub(crate) job_base: Vec<usize>,
    /// route hop count per flow
    pub(crate) flow_hops: Vec<u32>,
    pub(crate) total_jobs: usize,
    /// flow index of each flat job
    pub(crate) job_flow: Vec<usize>,
    /// release slot of each flat job
    pub(crate) job_release: Vec<u32>,
    /// distinct links appearing in the schedule, for discovery probes
    pub(crate) scheduled_links: Vec<DirectedLink>,
    /// slots of the slotframe holding at least one scheduled transmission,
    /// ascending — the event engine's itinerary
    pub(crate) busy_slots: Vec<u32>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator for `schedule` as planned on `topo` over
    /// `channels` for `flows`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule references flows or nodes outside the given
    /// flow set / topology, or if `channels` does not match the schedule's
    /// channel-offset count.
    pub fn new(
        topo: &'a Topology,
        channels: &'a ChannelSet,
        flows: &'a FlowSet,
        schedule: &Schedule,
    ) -> Self {
        match Self::try_new(topo, channels, flows, schedule) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Simulator::new`]: validates that the schedule,
    /// channel set, flow set, and topology are mutually consistent, and
    /// returns a typed [`SimError`] instead of panicking when they are not.
    ///
    /// # Errors
    ///
    /// [`SimError::ChannelMismatch`] when `channels` does not match the
    /// schedule's channel-offset count; [`SimError::UnknownFlow`] /
    /// [`SimError::NodeOutOfRange`] when the schedule references a flow or
    /// node outside `flows` / `topo`.
    pub fn try_new(
        topo: &'a Topology,
        channels: &'a ChannelSet,
        flows: &'a FlowSet,
        schedule: &Schedule,
    ) -> Result<Self, SimError> {
        if channels.len() != schedule.channel_count() {
            return Err(SimError::ChannelMismatch {
                schedule: schedule.channel_count(),
                channels: channels.len(),
            });
        }
        for e in schedule.entries() {
            if e.tx.flow.index() >= flows.len() {
                return Err(SimError::UnknownFlow {
                    flow_index: e.tx.flow.index(),
                    flows: flows.len(),
                });
            }
            for node in [e.tx.link.tx, e.tx.link.rx] {
                if node.index() >= topo.node_count() {
                    return Err(SimError::NodeOutOfRange {
                        node: node.index(),
                        nodes: topo.node_count(),
                    });
                }
            }
        }
        let horizon = schedule.horizon();
        // flat job indexing
        let mut job_base = Vec::with_capacity(flows.len());
        let mut total_jobs = 0usize;
        let mut flow_hops = Vec::with_capacity(flows.len());
        let mut job_flow = Vec::new();
        let mut job_release = Vec::new();
        for (fi, flow) in flows.iter().enumerate() {
            job_base.push(total_jobs);
            let jobs = horizon.div_ceil(flow.period().slots());
            for k in 0..jobs {
                job_flow.push(fi);
                job_release.push(k * flow.period().slots());
            }
            total_jobs += jobs as usize;
            flow_hops.push(flow.hop_count() as u32);
        }
        // The hop a transmission advances is the link's position on its
        // flow's route. (The historical inference `seq / attempts` assumed
        // every hop gets the same number of attempts; repaired or shed
        // schedules with uneven per-hop retries mislabeled hops, so
        // later-hop transmissions never matched the job's progress and
        // silently never fired.)
        let flow_links: Vec<Vec<DirectedLink>> = flows.iter().map(wsan_flow::Flow::links).collect();
        let mut per_slot: Vec<Vec<SlotTx>> = vec![Vec::new(); horizon as usize];
        for slot in 0..horizon {
            for offset in 0..schedule.channel_count() {
                let cell = schedule.cell(slot, offset);
                let reuse = cell.len() > 1;
                for tx in cell {
                    let fi = tx.flow.index();
                    let hop_index = flow_links[fi].iter().position(|l| *l == tx.link).ok_or(
                        SimError::LinkNotOnRoute {
                            flow_index: fi,
                            link: (tx.link.tx.index(), tx.link.rx.index()),
                        },
                    )? as u32;
                    per_slot[slot as usize].push(SlotTx {
                        offset,
                        link: tx.link,
                        job_flat: job_base[fi] + tx.job_index as usize,
                        hop_index,
                        reuse,
                    });
                }
            }
        }
        let busy_slots: Vec<u32> =
            (0..horizon).filter(|&s| !per_slot[s as usize].is_empty()).collect();
        let mut scheduled_links: Vec<DirectedLink> =
            schedule.entries().iter().map(|e| e.tx.link).collect();
        scheduled_links.sort();
        scheduled_links.dedup();
        Ok(Simulator {
            topo,
            channels,
            flows,
            horizon,
            per_slot,
            job_base,
            flow_hops,
            total_jobs,
            job_flow,
            job_release,
            scheduled_links,
            busy_slots,
        })
    }

    /// Runs the schedule `config.repetitions` times and reports delivery and
    /// link statistics. Deterministic in `(self, config)`.
    ///
    /// # Panics
    ///
    /// Panics if `config.faults` is inconsistent with the simulated world;
    /// use [`Simulator::try_run`] to get a typed error instead.
    pub fn run(&self, config: &SimConfig) -> SimReport {
        self.run_faulted(config).0
    }

    /// Like [`Simulator::run`], but also returns the [`FaultLog`] of fault
    /// events that fired during the run.
    ///
    /// # Panics
    ///
    /// Panics if `config.faults` is inconsistent with the simulated world;
    /// use [`Simulator::try_run_faulted`] to get a typed error instead.
    pub fn run_faulted(&self, config: &SimConfig) -> (SimReport, FaultLog) {
        match self.try_run_faulted(config) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] when `config.faults` references nodes or
    /// interferers outside the simulated world or carries out-of-range
    /// probabilities.
    pub fn try_run(&self, config: &SimConfig) -> Result<SimReport, SimError> {
        self.try_run_faulted(config).map(|(report, _)| report)
    }

    /// Fallible variant of [`Simulator::run_faulted`]: validates the fault
    /// plan up front so injected faults surface as recoverable errors, not
    /// panics mid-run.
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] under the same conditions as
    /// [`Simulator::try_run`].
    pub fn try_run_faulted(&self, config: &SimConfig) -> Result<(SimReport, FaultLog), SimError> {
        config.faults.validate(self.topo.node_count(), config.interferers.len())?;
        Ok(self.run_impl(config, None))
    }

    /// Like [`Simulator::run`], but records per-event history into `trace`
    /// (attempts with their interference counts, deliveries, expiries).
    /// Tracing does not perturb the RNG stream: a traced run returns the
    /// same report as an untraced one with the same config.
    ///
    /// # Panics
    ///
    /// Panics if `config.faults` is inconsistent with the simulated world;
    /// use [`Simulator::try_run_traced`] to get a typed error instead.
    pub fn run_traced(&self, config: &SimConfig, trace: &mut crate::TraceBuffer) -> SimReport {
        match self.try_run_traced(config, trace) {
            Ok((report, _)) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Simulator::run_traced`], completing the
    /// `run`/`try_run`/`run_faulted`/`try_run_faulted` ladder: validates the
    /// fault plan up front and also returns the [`FaultLog`].
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] under the same conditions as
    /// [`Simulator::try_run`].
    pub fn try_run_traced(
        &self,
        config: &SimConfig,
        trace: &mut crate::TraceBuffer,
    ) -> Result<(SimReport, FaultLog), SimError> {
        config.faults.validate(self.topo.node_count(), config.interferers.len())?;
        Ok(self.run_impl(config, Some(trace)))
    }

    /// Runs the schedule on the discrete-event engine (see
    /// [`crate::SimEngine`]). Equivalent to the slot-stepper — byte-identical
    /// under the draw-order contract, statistically equivalent otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `config.faults` is inconsistent with the simulated world;
    /// use [`Simulator::try_run_events`] to get a typed error instead.
    pub fn run_events(&self, config: &SimConfig) -> SimReport {
        match self.try_run_events(config) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Simulator::run_events`].
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] under the same conditions as
    /// [`Simulator::try_run`].
    pub fn try_run_events(&self, config: &SimConfig) -> Result<SimReport, SimError> {
        self.try_run_events_faulted(config).map(|(report, _)| report)
    }

    /// Event-engine variant of [`Simulator::try_run_faulted`].
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] under the same conditions as
    /// [`Simulator::try_run`].
    pub fn try_run_events_faulted(
        &self,
        config: &SimConfig,
    ) -> Result<(SimReport, FaultLog), SimError> {
        config.faults.validate(self.topo.node_count(), config.interferers.len())?;
        Ok(crate::events::run(self, config, None))
    }

    /// Runs on the selected engine. The dispatching twin of
    /// [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics if `config.faults` is inconsistent with the simulated world;
    /// use [`Simulator::try_run_with`] to get a typed error instead.
    pub fn run_with(&self, engine: crate::SimEngine, config: &SimConfig) -> SimReport {
        match self.try_run_with(engine, config) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible engine-dispatching run.
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] under the same conditions as
    /// [`Simulator::try_run`].
    pub fn try_run_with(
        &self,
        engine: crate::SimEngine,
        config: &SimConfig,
    ) -> Result<SimReport, SimError> {
        self.try_run_faulted_with(engine, config).map(|(report, _)| report)
    }

    /// Fallible engine-dispatching variant of [`Simulator::try_run_faulted`].
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] under the same conditions as
    /// [`Simulator::try_run`].
    pub fn try_run_faulted_with(
        &self,
        engine: crate::SimEngine,
        config: &SimConfig,
    ) -> Result<(SimReport, FaultLog), SimError> {
        match engine {
            crate::SimEngine::SlotStepper => self.try_run_faulted(config),
            crate::SimEngine::EventDriven => self.try_run_events_faulted(config),
        }
    }

    /// Fallible engine-dispatching variant of [`Simulator::try_run_traced`].
    ///
    /// # Errors
    ///
    /// [`SimError::BadFaultPlan`] under the same conditions as
    /// [`Simulator::try_run`].
    pub fn try_run_traced_with(
        &self,
        engine: crate::SimEngine,
        config: &SimConfig,
        trace: &mut crate::TraceBuffer,
    ) -> Result<(SimReport, FaultLog), SimError> {
        config.faults.validate(self.topo.node_count(), config.interferers.len())?;
        match engine {
            crate::SimEngine::SlotStepper => Ok(self.run_impl(config, Some(trace))),
            crate::SimEngine::EventDriven => Ok(crate::events::run(self, config, Some(trace))),
        }
    }

    fn run_impl(
        &self,
        config: &SimConfig,
        mut trace: Option<&mut crate::TraceBuffer>,
    ) -> (SimReport, FaultLog) {
        let metrics = wsan_obs::metrics_enabled().then(SimMetrics::new);
        let _span = wsan_obs::span(
            wsan_obs::Level::Debug,
            "sim.run",
            if wsan_obs::enabled(wsan_obs::Level::Debug) {
                vec![
                    wsan_obs::kv("seed", config.seed),
                    wsan_obs::kv("repetitions", config.repetitions),
                    wsan_obs::kv("horizon", self.horizon),
                ]
            } else {
                Vec::new()
            },
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut injector = FaultInjector::new(&config.faults);
        let phy = Phy::new(self.topo, config.capture);
        let mut flow_stats = vec![FlowStats::default(); self.flows.len()];
        let mut window_acc: BTreeMap<(DirectedLink, LinkCondition), PrrSample> = BTreeMap::new();
        let mut report = SimReport {
            flows: Vec::new(),
            link_samples: BTreeMap::new(),
            latencies: vec![Vec::new(); self.flows.len()],
        };
        let window = config.window_reps.max(1);

        let mut progress = vec![0u32; self.total_jobs];
        // Scratch buffers reused across every slot of every repetition: the
        // per-slot loop allocates nothing after the first iteration. RNG
        // draw order is identical to the historical collect-per-slot code
        // (pinned by the golden-report test).
        let mut spawned: Vec<WifiInterferer> = Vec::new();
        let mut env_active: Vec<bool> = vec![false; config.interferers.len()];
        let mut actives: Vec<&SlotTx> = Vec::new();
        let mut advanced: Vec<usize> = Vec::new();
        let mut interferers: Vec<NodeId> = Vec::new();
        for rep in 0..config.repetitions {
            progress.fill(0);
            for slot in 0..self.horizon {
                let asn = u64::from(rep) * u64::from(self.horizon) + u64::from(slot);
                injector.advance(asn);
                // Environment interferers gate on the engine RNG (one draw
                // each, silenced or not, so an active fault plan never
                // perturbs the fault-free stream); injected interferers
                // gate on the injector's own RNG.
                injector.sample_spawned_wifi_into(&mut spawned);
                for (i, w) in config.interferers.iter().enumerate() {
                    let duty = rng.gen::<f64>() < w.duty_cycle;
                    env_active[i] = duty && !injector.interferer_silenced(i);
                }
                let batch_started = (metrics.is_some() && !self.per_slot[slot as usize].is_empty())
                    .then(std::time::Instant::now);
                // Which scheduled transmissions actually fire this slot?
                // A crashed sender transmits nothing at all.
                actives.clear();
                actives.extend(self.per_slot[slot as usize].iter().filter(|t| {
                    progress[t.job_flat] == t.hop_index && !injector.node_down(t.link.tx)
                }));
                // Resolve receptions against the slot-start active set.
                advanced.clear();
                for t in &actives {
                    let channel = self.channels.physical(asn, t.offset);
                    interferers.clear();
                    interferers.extend(
                        actives
                            .iter()
                            .filter(|o| o.offset == t.offset && o.job_flat != t.job_flat)
                            .map(|o| o.link.tx),
                    );
                    let active_wifi = config
                        .interferers
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| env_active[*i])
                        .map(|(_, w)| w)
                        .chain(spawned.iter());
                    let external = phy.external_mw(t.link.rx, channel, active_wifi);
                    // temporal fading perturbs the SIR only when there is
                    // interference to compete with
                    let fading = if interferers.is_empty() && external <= 0.0 {
                        0.0
                    } else {
                        config.capture.fading.sample_db(&mut rng)
                    };
                    // A crashed receiver hears (and acknowledges) nothing;
                    // a collapsed link caps the base PRR the PHY sees.
                    let p = if injector.node_down(t.link.rx) {
                        0.0
                    } else {
                        phy.success_probability_faulted(
                            t.link.tx,
                            t.link.rx,
                            channel,
                            &interferers,
                            external,
                            fading,
                            injector.link_prr_override(t.link, channel),
                        )
                    };
                    let success = rng.gen::<f64>() < p;
                    if let Some(buf) = trace.as_deref_mut() {
                        buf.push(crate::TraceEvent::Attempt {
                            asn,
                            link: t.link,
                            flow: self
                                .flows
                                .flow(wsan_flow::FlowId::new(self.job_flow[t.job_flat]))
                                .id(),
                            interferers: interferers.len(),
                            success,
                        });
                    }
                    let cond =
                        if t.reuse { LinkCondition::Reuse } else { LinkCondition::ContentionFree };
                    let sample = window_acc.entry((t.link, cond)).or_default();
                    sample.sent += 1;
                    if success {
                        sample.acked += 1;
                        advanced.push(t.job_flat);
                    }
                    if let Some(m) = &metrics {
                        m.tx.inc();
                        if success {
                            m.ack.inc();
                        } else if !interferers.is_empty() || external > 0.0 {
                            // a loss with competing energy in the air
                            m.collisions.inc();
                        }
                    }
                }
                for &job in &advanced {
                    progress[job] += 1;
                    // record delivery latency the moment the last hop lands
                    if progress[job] == self.flow_hops[self.job_flow[job]] {
                        let latency = slot - self.job_release[job] + 1;
                        report.latencies[self.job_flow[job]].push(latency);
                        if let Some(m) = &metrics {
                            m.deliveries.inc();
                        }
                        if let Some(buf) = trace.as_deref_mut() {
                            buf.push(crate::TraceEvent::Delivered {
                                asn,
                                flow: wsan_flow::FlowId::new(self.job_flow[job]),
                                latency,
                            });
                        }
                    }
                }
                if let (Some(m), Some(started)) = (&metrics, batch_started) {
                    m.slot_batch_ns.record_nanos(started.elapsed());
                }
            }
            // neighbor-discovery probes: contention-free, cycling channels
            for _ in 0..config.discovery_probes {
                for (i, link) in self.scheduled_links.iter().enumerate() {
                    let channel = self.channels.at((rep as usize + i) % self.channels.len());
                    injector.sample_spawned_wifi_into(&mut spawned);
                    for (idx, w) in config.interferers.iter().enumerate() {
                        let duty = rng.gen::<f64>() < w.duty_cycle;
                        env_active[idx] = duty && !injector.interferer_silenced(idx);
                    }
                    let wifi_active = config
                        .interferers
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| env_active[*idx])
                        .map(|(_, w)| w)
                        .chain(spawned.iter());
                    let external = phy.external_mw(link.rx, channel, wifi_active);
                    let fading = if external <= 0.0 {
                        0.0
                    } else {
                        config.capture.fading.sample_db(&mut rng)
                    };
                    // a crashed sender probes nothing; a crashed receiver
                    // acknowledges nothing — probes see faults exactly like
                    // data slots so the §VI classifier gets honest CF samples
                    if injector.node_down(link.tx) {
                        continue;
                    }
                    let p = if injector.node_down(link.rx) {
                        0.0
                    } else {
                        phy.success_probability_faulted(
                            link.tx,
                            link.rx,
                            channel,
                            &[],
                            external,
                            fading,
                            injector.link_prr_override(*link, channel),
                        )
                    };
                    let sample =
                        window_acc.entry((*link, LinkCondition::ContentionFree)).or_default();
                    sample.sent += 1;
                    if rng.gen::<f64>() < p {
                        sample.acked += 1;
                    }
                }
            }
            // account deliveries
            for (fi, flow) in self.flows.iter().enumerate() {
                let jobs = self.horizon.div_ceil(flow.period().slots()) as usize;
                for j in 0..jobs {
                    flow_stats[fi].released += 1;
                    if progress[self.job_base[fi] + j] >= self.flow_hops[fi] {
                        flow_stats[fi].delivered += 1;
                    } else {
                        if let Some(m) = &metrics {
                            m.expiries.inc();
                        }
                        if let Some(buf) = trace.as_deref_mut() {
                            buf.push(crate::TraceEvent::Expired {
                                asn: u64::from(rep) * u64::from(self.horizon)
                                    + u64::from(self.horizon - 1),
                                flow: wsan_flow::FlowId::new(fi),
                            });
                        }
                    }
                }
            }
            // flush sample windows
            if (rep + 1) % window == 0 {
                flush(&mut window_acc, &mut report, metrics.as_ref());
            }
        }
        flush(&mut window_acc, &mut report, metrics.as_ref());
        report.flows = flow_stats;
        let log = injector.into_log();
        if let Some(m) = &metrics {
            m.fault_events.add(log.fired() as u64);
            SimMetrics::record_flow_gauges(&report);
        }
        if wsan_obs::enabled(wsan_obs::Level::Info) {
            wsan_obs::event(
                wsan_obs::Level::Info,
                "wsan_sim::engine",
                "simulation run complete",
                &[
                    wsan_obs::kv("network_pdr", report.network_pdr()),
                    wsan_obs::kv("faults_fired", log.fired()),
                ],
            );
        }
        (report, log)
    }
}

pub(crate) fn flush(
    acc: &mut BTreeMap<(DirectedLink, LinkCondition), PrrSample>,
    report: &mut SimReport,
    metrics: Option<&SimMetrics>,
) {
    for (key, sample) in std::mem::take(acc) {
        if sample.sent > 0 {
            if let Some(m) = metrics {
                // one PRR observation per flushed window sample
                m.prr.observe(f64::from(sample.acked) / f64::from(sample.sent));
            }
            report.link_samples.entry(key).or_default().push(sample);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_core::{NetworkModel, NoReuse, ReuseAggressively, Scheduler};
    use wsan_flow::{priority, Flow, FlowId, Period};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::{ChannelId, Position, Prr, Route};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Two disjoint parallel links far apart, plus perfect PRR everywhere on
    /// 2 channels: 0→1 at x=0, 2→3 at x=60 m.
    fn setup(perfect: bool) -> (Topology, ChannelSet, FlowSet) {
        let mut topo = Topology::new(
            "sim-test",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(8.0, 0.0, 0.0),
                Position::new(60.0, 0.0, 0.0),
                Position::new(68.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).unwrap();
        let prr = if perfect { Prr::ONE } else { Prr::new(0.8).unwrap() };
        for (a, b) in [(0, 1), (2, 3)] {
            for ch in &channels {
                topo.set_prr(n(a), n(b), ch, prr).unwrap();
                topo.set_prr(n(b), n(a), ch, prr).unwrap();
            }
        }
        let flows = priority::deadline_monotonic(
            vec![
                Flow::new(
                    FlowId::new(0),
                    Route::new(vec![n(0), n(1)]),
                    Period::from_slots(10).unwrap(),
                    10,
                )
                .unwrap(),
                Flow::new(
                    FlowId::new(1),
                    Route::new(vec![n(2), n(3)]),
                    Period::from_slots(10).unwrap(),
                    10,
                )
                .unwrap(),
            ],
            vec![],
        );
        (topo, channels, flows)
    }

    #[test]
    fn perfect_links_deliver_everything() {
        let (topo, channels, flows) = setup(true);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let report =
            sim.run(&SimConfig { repetitions: 20, discovery_probes: 0, ..SimConfig::default() });
        assert_eq!(report.network_pdr(), 1.0);
        assert_eq!(report.worst_flow_pdr(), 1.0);
        // with PRR 1.0 primaries always succeed: retries never fire
        let sent: u32 = report.link_samples.values().flat_map(|v| v.iter()).map(|s| s.sent).sum();
        // 2 flows × 1 primary × 1 job × 20 reps
        assert_eq!(sent, 40);
    }

    #[test]
    fn lossy_links_use_retries_and_still_deliver_most() {
        let (topo, channels, flows) = setup(false);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let report = sim.run(&SimConfig { repetitions: 500, seed: 42, ..SimConfig::default() });
        // per-hop success with one retry: 1 − 0.04 = 0.96
        let pdr = report.network_pdr();
        assert!((pdr - 0.96).abs() < 0.03, "pdr {pdr} should be near 0.96");
        // retries fired: more than 1 tx per job on average
        let sent: u32 = report.link_samples.values().flat_map(|v| v.iter()).map(|s| s.sent).sum();
        assert!(sent > 1000, "retransmissions should add transmissions, got {sent}");
    }

    #[test]
    fn simulation_is_deterministic() {
        let (topo, channels, flows) = setup(false);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let cfg = SimConfig { repetitions: 50, seed: 7, ..SimConfig::default() };
        assert_eq!(sim.run(&cfg), sim.run(&cfg));
        let other = SimConfig { repetitions: 50, seed: 8, ..SimConfig::default() };
        assert_ne!(sim.run(&cfg), sim.run(&other));
    }

    #[test]
    fn distant_reuse_is_nearly_harmless() {
        // Force both links into the same cell (1 channel, RA): 60 m apart,
        // capture holds, PDR stays high.
        let (topo, _channels, flows) = setup(true);
        let one = ChannelId::range(11, 11).unwrap();
        let model = NetworkModel::new(&topo, &one);
        let schedule = ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        assert!(
            schedule.occupied_cells().any(|(_, _, c)| c.len() > 1),
            "test needs an actual reuse cell"
        );
        let sim = Simulator::new(&topo, &one, &flows, &schedule);
        let report = sim.run(&SimConfig { repetitions: 300, ..SimConfig::default() });
        assert!(report.network_pdr() > 0.95, "pdr {}", report.network_pdr());
        // reuse-labeled samples were recorded
        assert!(!report.links_with_reuse().is_empty());
    }

    #[test]
    fn close_reuse_destroys_reliability() {
        // Crossed links: each sender sits right next to the *other* link's
        // receiver (0→1 with interferer 2 at 2 m from node 1, and 2→3 with
        // interferer 0 at 2 m from node 3). Both signals arrive ~21 dB below
        // the interference, capture fails, and because the schedule repeats,
        // the retries collide too.
        let mut topo = Topology::new(
            "sim-close",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
                Position::new(12.0, 0.0, 0.0),
                Position::new(2.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let one = ChannelId::range(11, 11).unwrap();
        for (a, b) in [(0, 1), (2, 3)] {
            for ch in &one {
                topo.set_prr(n(a), n(b), ch, Prr::ONE).unwrap();
                topo.set_prr(n(b), n(a), ch, Prr::ONE).unwrap();
            }
        }
        let flows = priority::deadline_monotonic(
            vec![
                Flow::new(
                    FlowId::new(0),
                    Route::new(vec![n(0), n(1)]),
                    Period::from_slots(4).unwrap(),
                    2,
                )
                .unwrap(),
                Flow::new(
                    FlowId::new(1),
                    Route::new(vec![n(2), n(3)]),
                    Period::from_slots(4).unwrap(),
                    2,
                )
                .unwrap(),
            ],
            vec![],
        );
        let model = NetworkModel::new(&topo, &one);
        // The reuse graph of this topology is (almost) complete, so pairwise
        // distances are 1; rho=1 lets RA share the single channel.
        let schedule = ReuseAggressively::new(1).schedule(&flows, &model).unwrap();
        let shared = schedule.occupied_cells().any(|(_, _, c)| c.len() > 1);
        assert!(shared, "RA at rho=1 should share the single channel");
        let sim = Simulator::new(&topo, &one, &flows, &schedule);
        let report = sim.run(&SimConfig { repetitions: 300, ..SimConfig::default() });
        assert!(
            report.network_pdr() < 0.3,
            "crossed concurrent transmissions should collapse, pdr {}",
            report.network_pdr()
        );
    }

    #[test]
    fn wifi_interference_degrades_nearby_links_without_reuse() {
        let (topo, channels, flows) = setup(true);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let clean = sim.run(&SimConfig { repetitions: 300, ..SimConfig::default() });
        let noisy = sim.run(&SimConfig {
            repetitions: 300,
            interferers: vec![WifiInterferer::wifi_channel_1(
                Position::new(4.0, 0.0, 0.0), // on top of link 0→1
                10.0,
                0.5,
            )],
            ..SimConfig::default()
        });
        assert!(
            noisy.flow_pdrs()[0] < clean.flow_pdrs()[0] - 0.1
                || noisy.flow_pdrs()[1] < clean.flow_pdrs()[1] - 0.1,
            "WiFi interference near a link must depress its PDR: clean {:?} noisy {:?}",
            clean.flow_pdrs(),
            noisy.flow_pdrs()
        );
    }

    /// Regression: `try_new` used to infer `hop_index = seq / attempts`,
    /// assuming every hop of a flow has the same number of attempts. On a
    /// repaired/shed schedule with uneven per-hop retries (here: two
    /// attempts on hop 0, one on hop 1) the old inference labeled the hop-0
    /// retry as hop 1 — so a "delivery" was counted without the final link
    /// ever transmitting, and the real last hop never fired at all.
    #[test]
    fn uneven_per_hop_attempts_keep_hop_labels_straight() {
        use wsan_core::{Schedule, ScheduledTx};
        let mut topo = Topology::new(
            "uneven",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(8.0, 0.0, 0.0),
                Position::new(16.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 11).unwrap();
        for (a, b) in [(0, 1), (1, 2)] {
            for ch in &channels {
                topo.set_prr(n(a), n(b), ch, Prr::ONE).unwrap();
                topo.set_prr(n(b), n(a), ch, Prr::ONE).unwrap();
            }
        }
        let flows = priority::deadline_monotonic(
            vec![Flow::new(
                FlowId::new(0),
                Route::new(vec![n(0), n(1), n(2)]),
                Period::from_slots(10).unwrap(),
                10,
            )
            .unwrap()],
            vec![],
        );
        // hand-built shed schedule: hop 0 keeps its retry, hop 1 lost its
        // retry slot — 3 entries over 2 hops
        let link01 = DirectedLink { tx: n(0), rx: n(1) };
        let link12 = DirectedLink { tx: n(1), rx: n(2) };
        let mut schedule = Schedule::new(10, 1, 3);
        let place = |s: &mut Schedule, slot: u32, link: DirectedLink, seq: u16, attempt: u8| {
            s.place(
                slot,
                0,
                ScheduledTx { flow: FlowId::new(0), job_index: 0, link, seq, attempt },
            );
        };
        place(&mut schedule, 0, link01, 0, 0);
        place(&mut schedule, 1, link01, 1, 1);
        place(&mut schedule, 2, link12, 2, 0);
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let report =
            sim.run(&SimConfig { repetitions: 10, discovery_probes: 0, ..SimConfig::default() });
        // the final hop must actually transmit…
        let last_hop_sent: u32 = report
            .link_samples
            .iter()
            .filter(|((l, _), _)| *l == link12)
            .flat_map(|(_, v)| v.iter())
            .map(|s| s.sent)
            .sum();
        assert!(last_hop_sent > 0, "hop 1→2 never fired: hops are mislabeled");
        // …and with perfect links the packet arrives via slot 0 and slot 2:
        // latency 3 slots, not the hop-0-only lie of 2
        assert_eq!(report.network_pdr(), 1.0);
        assert_eq!(report.latencies[0], vec![3; 10]);
    }

    /// A schedule placing a flow on a link outside its route is rejected
    /// with a typed error instead of silently mislabeling the hop.
    #[test]
    fn off_route_link_is_rejected() {
        let (topo, channels, flows) = setup(true);
        use wsan_core::{Schedule, ScheduledTx};
        let mut schedule = Schedule::new(10, 2, 4);
        schedule.place(
            0,
            0,
            ScheduledTx {
                flow: FlowId::new(0),
                job_index: 0,
                link: DirectedLink { tx: n(2), rx: n(3) }, // flow 0's route is 0→1
                seq: 0,
                attempt: 0,
            },
        );
        match Simulator::try_new(&topo, &channels, &flows, &schedule) {
            Err(SimError::LinkNotOnRoute { flow_index: 0, link: (2, 3) }) => {}
            other => panic!("expected LinkNotOnRoute, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "channel set size")]
    fn mismatched_channel_set_panics() {
        let (topo, channels, flows) = setup(true);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let wrong = ChannelId::range(11, 14).unwrap();
        let _ = Simulator::new(&topo, &wrong, &flows, &schedule);
    }
}

#[cfg(test)]
mod segment_tests {
    use super::*;
    use wsan_core::{NetworkModel, NoReuse, Scheduler};
    use wsan_flow::{priority, Flow, FlowId, Period};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::{ChannelId, Position, Prr, Route};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A centralized flow with two wireless segments joined by the wired
    /// backbone: 0→1 (up to AP 1), wired 1⇢2, 2→3 (down to actuator).
    #[test]
    fn two_segment_flow_delivers_across_the_wired_backbone() {
        let mut topo = Topology::new(
            "wired",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(8.0, 0.0, 0.0),
                Position::new(40.0, 0.0, 0.0),
                Position::new(48.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).unwrap();
        for (a, b) in [(0, 1), (2, 3)] {
            for ch in &channels {
                topo.set_prr(n(a), n(b), ch, Prr::ONE).unwrap();
                topo.set_prr(n(b), n(a), ch, Prr::ONE).unwrap();
            }
        }
        let flow = Flow::with_segments(
            FlowId::new(0),
            vec![Route::new(vec![n(0), n(1)]), Route::new(vec![n(2), n(3)])],
            Period::from_slots(20).unwrap(),
            20,
        )
        .unwrap();
        let flows = priority::deadline_monotonic(vec![flow], vec![n(1), n(2)]);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        // 2 links × 2 attempts
        assert_eq!(schedule.entry_count(), 4);
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let report =
            sim.run(&SimConfig { repetitions: 25, discovery_probes: 0, ..SimConfig::default() });
        assert_eq!(report.network_pdr(), 1.0, "perfect links must deliver across the backbone");
    }

    /// Discovery probes cover every scheduled link under the
    /// contention-free condition even when all data slots are shared.
    #[test]
    fn discovery_probes_provide_cf_samples() {
        let mut topo = Topology::new(
            "probes",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(8.0, 0.0, 0.0),
                Position::new(60.0, 0.0, 0.0),
                Position::new(68.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let one = ChannelId::range(11, 11).unwrap();
        for (a, b) in [(0, 1), (2, 3)] {
            for ch in &one {
                topo.set_prr(n(a), n(b), ch, Prr::ONE).unwrap();
                topo.set_prr(n(b), n(a), ch, Prr::ONE).unwrap();
            }
        }
        let flows = priority::deadline_monotonic(
            vec![
                Flow::new(
                    FlowId::new(0),
                    Route::new(vec![n(0), n(1)]),
                    Period::from_slots(10).unwrap(),
                    10,
                )
                .unwrap(),
                Flow::new(
                    FlowId::new(1),
                    Route::new(vec![n(2), n(3)]),
                    Period::from_slots(10).unwrap(),
                    10,
                )
                .unwrap(),
            ],
            vec![],
        );
        let model = NetworkModel::new(&topo, &one);
        let schedule = wsan_core::ReuseAggressively::new(2).schedule(&flows, &model).unwrap();
        let sim = Simulator::new(&topo, &one, &flows, &schedule);
        let report = sim.run(&SimConfig {
            repetitions: 20,
            window_reps: 5,
            discovery_probes: 1,
            ..SimConfig::default()
        });
        for flow in &flows {
            for link in flow.links() {
                assert!(
                    !report.prr_distribution(link, LinkCondition::ContentionFree).is_empty(),
                    "probes must give {link} contention-free samples"
                );
            }
        }
    }
}

#[cfg(test)]
mod latency_tracking_tests {
    use super::*;
    use wsan_core::{NetworkModel, NoReuse, Scheduler};
    use wsan_flow::{priority, Flow, FlowId, Period};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::{ChannelId, Position, Prr, Route};

    #[test]
    fn latencies_match_the_schedule_for_perfect_links() {
        let mut topo =
            Topology::new("lat", vec![Position::new(0.0, 0.0, 0.0), Position::new(8.0, 0.0, 0.0)]);
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).unwrap();
        for ch in &channels {
            topo.set_prr(NodeId::new(0), NodeId::new(1), ch, Prr::ONE).unwrap();
            topo.set_prr(NodeId::new(1), NodeId::new(0), ch, Prr::ONE).unwrap();
        }
        let flow = Flow::new(
            FlowId::new(0),
            Route::new(vec![NodeId::new(0), NodeId::new(1)]),
            Period::from_slots(10).unwrap(),
            10,
        )
        .unwrap();
        let flows = priority::deadline_monotonic(vec![flow], vec![]);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        // primary lands in slot 0: latency = 1 slot, every repetition
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let report =
            sim.run(&SimConfig { repetitions: 12, discovery_probes: 0, ..SimConfig::default() });
        assert_eq!(report.latencies[0], vec![1; 12]);
        assert_eq!(report.mean_latency(0), Some(1.0));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::{TraceBuffer, TraceEvent};
    use wsan_core::{NetworkModel, NoReuse, Scheduler};
    use wsan_flow::{priority, Flow, FlowId, Period};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::{ChannelId, Position, Prr, Route};

    #[test]
    fn tracing_does_not_change_the_outcome() {
        let mut topo = Topology::new(
            "traced",
            vec![Position::new(0.0, 0.0, 0.0), Position::new(8.0, 0.0, 0.0)],
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).unwrap();
        for ch in &channels {
            topo.set_prr(NodeId::new(0), NodeId::new(1), ch, Prr::new(0.7).unwrap()).unwrap();
            topo.set_prr(NodeId::new(1), NodeId::new(0), ch, Prr::new(0.7).unwrap()).unwrap();
        }
        let flow = Flow::new(
            FlowId::new(0),
            Route::new(vec![NodeId::new(0), NodeId::new(1)]),
            Period::from_slots(10).unwrap(),
            10,
        )
        .unwrap();
        let flows = priority::deadline_monotonic(vec![flow], vec![]);
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let cfg =
            SimConfig { repetitions: 40, seed: 9, discovery_probes: 0, ..SimConfig::default() };
        let plain = sim.run(&cfg);
        let mut buf = TraceBuffer::with_capacity(10_000);
        let traced = sim.run_traced(&cfg, &mut buf);
        assert_eq!(plain, traced);
        // trace is consistent with the report
        let delivered =
            buf.events().iter().filter(|e| matches!(e, TraceEvent::Delivered { .. })).count()
                as u32;
        let expired =
            buf.events().iter().filter(|e| matches!(e, TraceEvent::Expired { .. })).count() as u32;
        assert_eq!(delivered, traced.flows[0].delivered);
        assert_eq!(delivered + expired, traced.flows[0].released);
        // with PRR 0.7 both outcomes occur in 40 reps
        assert!(delivered > 0 && !buf.losses().is_empty());
    }
}
