//! Multi-network coexistence — §III's motivating scenario.
//!
//! "The WirelessHART standard does not allow channel reuse on a network
//! governed by the same gateway. However, channels may be reused when
//! multiple networks connected to different gateways coexist. In this case,
//! interferences may occur if those networks are located close to each
//! other." (§III)
//!
//! This module composes two independently planned networks into one
//! physical radio space: node ids of the second network are shifted, the
//! topologies' PRR tables are kept (cross-network PRR is zero — the
//! networks never talk), and the two schedules are overlaid onto one grid.
//! Cells that collide across networks become de-facto reuse cells, and the
//! ordinary [`Simulator`](crate::Simulator) resolves their interference
//! from the nodes' *positions* — coordination-free channel reuse, exactly
//! what a WirelessHART operator gets when deploying two gateways in one
//! plant.

use wsan_core::{Schedule, ScheduledTx};
use wsan_flow::{Flow, FlowId, FlowSet};
use wsan_net::{ChannelId, NodeId, Position, Route, Topology};

/// Two planned networks merged into one radio space.
#[derive(Debug, Clone)]
pub struct MergedDeployment {
    /// The combined topology (network B's nodes after network A's).
    pub topology: Topology,
    /// The combined flow set (B's flows re-tagged after A's).
    pub flows: FlowSet,
    /// The overlaid schedule.
    pub schedule: Schedule,
    /// Node-id offset applied to network B.
    pub b_node_offset: usize,
}

/// Merges two planned networks, translating network B by `b_shift` meters.
///
/// Both schedules must have the same horizon and channel count (use the
/// same channel set and workload periods for both networks).
///
/// # Panics
///
/// Panics if the schedules' dimensions differ.
pub fn merge(
    a: (&Topology, &FlowSet, &Schedule),
    b: (&Topology, &FlowSet, &Schedule),
    b_shift: Position,
) -> MergedDeployment {
    let (topo_a, flows_a, sched_a) = a;
    let (topo_b, flows_b, sched_b) = b;
    assert_eq!(sched_a.horizon(), sched_b.horizon(), "schedules must share a horizon");
    assert_eq!(
        sched_a.channel_count(),
        sched_b.channel_count(),
        "schedules must share a channel count"
    );
    let n_a = topo_a.node_count();
    let n_b = topo_b.node_count();

    // --- topology ---
    let mut positions: Vec<Position> = (0..n_a).map(|i| topo_a.position(NodeId::new(i))).collect();
    positions.extend((0..n_b).map(|i| {
        let p = topo_b.position(NodeId::new(i));
        Position::new(p.x + b_shift.x, p.y + b_shift.y, p.z + b_shift.z)
    }));
    let mut topology = Topology::new(format!("{}+{}", topo_a.name(), topo_b.name()), positions);
    if let Some(model) = topo_a.propagation_model() {
        topology.set_propagation_model(model.clone());
    }
    for ch in ChannelId::all().iter() {
        for x in 0..n_a {
            for y in 0..n_a {
                if x != y {
                    let p = topo_a.prr(NodeId::new(x), NodeId::new(y), ch);
                    topology.set_prr(NodeId::new(x), NodeId::new(y), ch, p).expect("in range");
                }
            }
        }
        for x in 0..n_a {
            for y in (x + 1)..n_a {
                topology.set_shadowing_db(
                    NodeId::new(x),
                    NodeId::new(y),
                    ch,
                    topo_a.shadowing_db(NodeId::new(x), NodeId::new(y), ch),
                );
            }
        }
        for x in 0..n_b {
            for y in 0..n_b {
                if x != y {
                    let p = topo_b.prr(NodeId::new(x), NodeId::new(y), ch);
                    topology
                        .set_prr(NodeId::new(x + n_a), NodeId::new(y + n_a), ch, p)
                        .expect("in range");
                }
            }
        }
        for x in 0..n_b {
            for y in (x + 1)..n_b {
                topology.set_shadowing_db(
                    NodeId::new(x + n_a),
                    NodeId::new(y + n_a),
                    ch,
                    topo_b.shadowing_db(NodeId::new(x), NodeId::new(y), ch),
                );
            }
        }
        // cross-network PRR stays zero: different gateways never exchange
        // packets; interference is computed from positions, not PRR.
    }

    // --- flows ---
    let remap_route =
        |r: &Route| Route::new(r.nodes().iter().map(|nd| NodeId::new(nd.index() + n_a)).collect());
    let mut flows: Vec<Flow> = flows_a.iter().cloned().collect();
    for f in flows_b.iter() {
        let segments: Vec<Route> = f.segments().iter().map(&remap_route).collect();
        flows.push(
            Flow::with_segments(FlowId::new(0), segments, f.period(), f.deadline_slots())
                .expect("deadline already validated"),
        );
    }
    let access_points = flows_a
        .access_points()
        .iter()
        .copied()
        .chain(flows_b.access_points().iter().map(|nd| NodeId::new(nd.index() + n_a)))
        .collect();
    let flows = FlowSet::new(flows, access_points);

    // --- schedule ---
    let mut schedule = Schedule::new(sched_a.horizon(), sched_a.channel_count(), n_a + n_b);
    for e in sched_a.entries() {
        schedule.place(e.slot, e.offset, e.tx);
    }
    let flow_offset = flows_a.len();
    for e in sched_b.entries() {
        let tx = ScheduledTx {
            flow: FlowId::new(e.tx.flow.index() + flow_offset),
            job_index: e.tx.job_index,
            link: wsan_net::DirectedLink::new(
                NodeId::new(e.tx.link.tx.index() + n_a),
                NodeId::new(e.tx.link.rx.index() + n_a),
            ),
            seq: e.tx.seq,
            attempt: e.tx.attempt,
        };
        schedule.place(e.slot, e.offset, tx);
    }
    MergedDeployment { topology, flows, schedule, b_node_offset: n_a }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use wsan_core::{NetworkModel, NoReuse, Scheduler};
    use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
    use wsan_net::{testbeds, Prr};

    fn plan(seed: u64) -> (Topology, FlowSet, Schedule) {
        let topo = testbeds::wustl(seed);
        let channels = ChannelId::range(11, 14).unwrap();
        let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
        let model = NetworkModel::new(&topo, &channels);
        let cfg =
            FlowSetConfig::new(20, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
        let flows = FlowSetGenerator::new(seed).generate(&comm, &cfg).unwrap();
        let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
        (topo, flows, schedule)
    }

    #[test]
    fn merge_preserves_both_networks() {
        let a = plan(1);
        let b = plan(2);
        let merged = merge((&a.0, &a.1, &a.2), (&b.0, &b.1, &b.2), Position::new(200.0, 0.0, 0.0));
        assert_eq!(merged.topology.node_count(), 120);
        assert_eq!(merged.flows.len(), 40);
        assert_eq!(merged.schedule.entry_count(), a.2.entry_count() + b.2.entry_count());
        // A's PRRs intact, B's shifted
        let ch = ChannelId::new(11).unwrap();
        for x in 0..3 {
            for y in 3..6 {
                assert_eq!(
                    merged.topology.prr(NodeId::new(x), NodeId::new(y), ch),
                    a.0.prr(NodeId::new(x), NodeId::new(y), ch)
                );
                assert_eq!(
                    merged.topology.prr(NodeId::new(x + 60), NodeId::new(y + 60), ch),
                    b.0.prr(NodeId::new(x), NodeId::new(y), ch)
                );
            }
        }
        // cross-network links carry nothing
        assert_eq!(merged.topology.prr(NodeId::new(0), NodeId::new(80), ch), Prr::ZERO);
    }

    #[test]
    fn distant_networks_do_not_interfere() {
        let a = plan(1);
        let b = plan(2);
        let channels = ChannelId::range(11, 14).unwrap();
        let sim_cfg = SimConfig { repetitions: 40, discovery_probes: 0, ..SimConfig::default() };
        // standalone baselines
        let solo_a = Simulator::new(&a.0, &channels, &a.1, &a.2).run(&sim_cfg).network_pdr();
        // merged at 1 km: radio-isolated
        let merged = merge((&a.0, &a.1, &a.2), (&b.0, &b.1, &b.2), Position::new(1000.0, 0.0, 0.0));
        let report = Simulator::new(&merged.topology, &channels, &merged.flows, &merged.schedule)
            .run(&sim_cfg);
        // network A's flows are the first 20 in the merged set
        let merged_a_pdr: f64 = report.flow_pdrs()[..20].iter().sum::<f64>() / 20.0;
        let solo_mean: f64 = Simulator::new(&a.0, &channels, &a.1, &a.2)
            .run(&sim_cfg)
            .flow_pdrs()
            .iter()
            .sum::<f64>()
            / 20.0;
        assert!(
            (merged_a_pdr - solo_mean).abs() < 0.02,
            "1 km apart the networks must not affect each other: {merged_a_pdr} vs {solo_mean} (solo {solo_a})"
        );
    }

    #[test]
    fn colocated_networks_interfere() {
        let a = plan(1);
        let b = plan(2);
        let channels = ChannelId::range(11, 14).unwrap();
        let sim_cfg = SimConfig { repetitions: 60, discovery_probes: 0, ..SimConfig::default() };
        let solo: f64 = {
            let r = Simulator::new(&a.0, &channels, &a.1, &a.2).run(&sim_cfg);
            r.network_pdr()
        };
        // overlapping buildings: B right on top of A
        let merged = merge((&a.0, &a.1, &a.2), (&b.0, &b.1, &b.2), Position::new(0.0, 0.0, 0.0));
        let report = Simulator::new(&merged.topology, &channels, &merged.flows, &merged.schedule)
            .run(&sim_cfg);
        let merged_a_released: u32 = report.flows[..20].iter().map(|f| f.released).sum();
        let merged_a_delivered: u32 = report.flows[..20].iter().map(|f| f.delivered).sum();
        let merged_a_pdr = f64::from(merged_a_delivered) / f64::from(merged_a_released);
        assert!(
            merged_a_pdr < solo - 0.03,
            "co-located uncoordinated networks must lose packets: {merged_a_pdr} vs solo {solo}"
        );
    }
}
