//! Typed simulation errors: construction-time validation failures surface
//! as values instead of panics, so fault campaigns and recovery loops can
//! react to them.

use std::fmt;

/// Why a simulator could not be built or a run could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The channel set's size differs from the schedule's channel-offset
    /// count, so channel hopping would be undefined.
    ChannelMismatch {
        /// Offsets the schedule was built for.
        schedule: usize,
        /// Channels actually supplied.
        channels: usize,
    },
    /// The schedule references a flow index the flow set does not contain.
    UnknownFlow {
        /// The out-of-range flow index.
        flow_index: usize,
        /// Flows available.
        flows: usize,
    },
    /// The schedule references a node the topology does not contain.
    NodeOutOfRange {
        /// The out-of-range node index.
        node: usize,
        /// Nodes available.
        nodes: usize,
    },
    /// The fault plan is inconsistent with the simulated world.
    BadFaultPlan {
        /// Human-readable explanation.
        reason: String,
    },
    /// The schedule places a flow's transmission on a link that is not part
    /// of the flow's route, so the hop it advances is undefined.
    LinkNotOnRoute {
        /// The flow whose route was searched.
        flow_index: usize,
        /// The offending link, rendered as `tx→rx` node indices.
        link: (usize, usize),
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ChannelMismatch { schedule, channels } => write!(
                f,
                "channel set size must match the schedule's channel offsets \
                 (schedule has {schedule}, channel set has {channels})"
            ),
            SimError::UnknownFlow { flow_index, flows } => {
                write!(f, "schedule references flow {flow_index}, flow set has {flows}")
            }
            SimError::NodeOutOfRange { node, nodes } => {
                write!(f, "schedule references node {node}, topology has {nodes}")
            }
            SimError::BadFaultPlan { reason } => write!(f, "invalid fault plan: {reason}"),
            SimError::LinkNotOnRoute { flow_index, link } => write!(
                f,
                "schedule places flow {flow_index} on link {}→{}, which is not on the \
                 flow's route",
                link.0, link.1
            ),
        }
    }
}

impl std::error::Error for SimError {}
