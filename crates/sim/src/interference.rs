//! External interference sources.
//!
//! The paper injects WiFi interference with three Raspberry-Pi pairs (one
//! per floor) streaming 1 Mbps UDP on WiFi channel 1, which overlaps
//! 802.15.4 channels 11–14. [`WifiInterferer`] models such a source: a
//! positioned wideband transmitter that is active in a random fraction of
//! slots (the stream's duty cycle) and raises the interference floor of
//! every nearby receiver on the overlapped channels.

use serde::{Deserialize, Serialize};
use wsan_net::propagation::PropagationModel;
use wsan_net::{ChannelId, Position};

/// A positioned external (WiFi-like) interference source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WifiInterferer {
    /// Location of the transmitter.
    pub position: Position,
    /// Effective transmit power in dBm as seen in the 802.15.4 band.
    pub power_dbm: f64,
    /// Fraction of slots in which the source is transmitting.
    pub duty_cycle: f64,
    /// The 802.15.4 channels its spectrum overlaps.
    pub channels: Vec<ChannelId>,
}

impl WifiInterferer {
    /// A 1 Mbps-UDP-style interferer overlapping WiFi channel 1
    /// (802.15.4 channels 11–14), matching the paper's setup.
    ///
    /// # Panics
    ///
    /// Never panics: channels 11–14 are always valid.
    pub fn wifi_channel_1(position: Position, power_dbm: f64, duty_cycle: f64) -> Self {
        WifiInterferer {
            position,
            power_dbm,
            duty_cycle,
            channels: ChannelId::range(11, 14).expect("11..=14 is in band").iter().collect(),
        }
    }

    /// Whether the source affects `channel` at all.
    pub fn affects(&self, channel: ChannelId) -> bool {
        self.channels.contains(&channel)
    }

    /// Interference power (dBm) this source inflicts on a receiver at
    /// `receiver` when active, under `model`'s path loss. Cross-floor
    /// attenuation applies like any other signal.
    pub fn power_at(&self, receiver: &Position, model: &PropagationModel) -> f64 {
        let distance = self.position.distance(receiver);
        let floors = self.position.floors_between(receiver, model.floor_height_m);
        self.power_dbm
            - model.ref_loss_db
            - 10.0 * model.path_loss_exponent * distance.max(0.5).log10()
            - f64::from(floors) * model.floor_loss_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_channel_1_overlaps_11_to_14() {
        let w = WifiInterferer::wifi_channel_1(Position::new(0.0, 0.0, 0.0), 10.0, 0.25);
        for ch in 11..=14 {
            assert!(w.affects(ChannelId::new(ch).unwrap()));
        }
        assert!(!w.affects(ChannelId::new(15).unwrap()));
        assert!((w.duty_cycle - 0.25).abs() < 1e-12);
    }

    #[test]
    fn interference_decays_with_distance_and_floors() {
        let w = WifiInterferer::wifi_channel_1(Position::new(0.0, 0.0, 0.0), 10.0, 0.25);
        let model = PropagationModel::default();
        let near = w.power_at(&Position::new(5.0, 0.0, 0.0), &model);
        let far = w.power_at(&Position::new(30.0, 0.0, 0.0), &model);
        let upstairs = w.power_at(&Position::new(5.0, 0.0, model.floor_height_m), &model);
        assert!(near > far);
        // upstairs pays the floor penalty plus the extra slant distance
        assert!(near - upstairs > model.floor_loss_db);
    }
}
