//! Event tracing for simulation debugging.
//!
//! The engine's reports aggregate; sometimes one needs the slot-by-slot
//! story of a single packet ("why did flow 7 miss at repetition 31?").
//! [`TraceBuffer`] collects bounded, structured events that tests and the
//! CLI can filter and print. Tracing is opt-in and zero-cost when no buffer
//! is installed.

use serde::{Deserialize, Serialize};
use std::fmt;
use wsan_flow::FlowId;
use wsan_net::DirectedLink;

/// One simulation event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A transmission attempt resolved.
    Attempt {
        /// Absolute slot number.
        asn: u64,
        /// The transmitting link.
        link: DirectedLink,
        /// Owning flow.
        flow: FlowId,
        /// Number of concurrent same-channel transmissions (0 = exclusive).
        interferers: usize,
        /// Whether the reception succeeded.
        success: bool,
    },
    /// A packet reached its destination.
    Delivered {
        /// Absolute slot number.
        asn: u64,
        /// Owning flow.
        flow: FlowId,
        /// Slots from release to delivery.
        latency: u32,
    },
    /// A packet passed its deadline undelivered.
    Expired {
        /// Absolute slot number.
        asn: u64,
        /// Owning flow.
        flow: FlowId,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Attempt { asn, link, flow, interferers, success } => write!(
                f,
                "t={asn} {flow} {link} {} (interferers {interferers})",
                if *success { "ok" } else { "LOST" }
            ),
            TraceEvent::Delivered { asn, flow, latency } => {
                write!(f, "t={asn} {flow} delivered after {latency} slots")
            }
            TraceEvent::Expired { asn, flow } => write!(f, "t={asn} {flow} EXPIRED"),
        }
    }
}

/// A bounded event buffer.
///
/// Keeps at most `capacity` events; once full, further events are counted
/// but dropped, so a runaway simulation cannot exhaust memory.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events that did not fit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events concerning one flow.
    pub fn for_flow(&self, flow: FlowId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::Attempt { flow: f, .. }
                | TraceEvent::Delivered { flow: f, .. }
                | TraceEvent::Expired { flow: f, .. } => *f == flow,
            })
            .collect()
    }

    /// Lost attempts (failed receptions), in order.
    pub fn losses(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Attempt { success: false, .. }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::NodeId;

    fn link() -> DirectedLink {
        DirectedLink::new(NodeId::new(0), NodeId::new(1))
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        let mut buf = TraceBuffer::with_capacity(2);
        for asn in 0..5 {
            buf.push(TraceEvent::Expired { asn, flow: FlowId::new(0) });
        }
        assert_eq!(buf.events().len(), 2);
        assert_eq!(buf.dropped(), 3);
    }

    #[test]
    fn flow_filter() {
        let mut buf = TraceBuffer::with_capacity(16);
        buf.push(TraceEvent::Attempt {
            asn: 1,
            link: link(),
            flow: FlowId::new(0),
            interferers: 0,
            success: true,
        });
        buf.push(TraceEvent::Delivered { asn: 2, flow: FlowId::new(1), latency: 2 });
        buf.push(TraceEvent::Expired { asn: 3, flow: FlowId::new(0) });
        assert_eq!(buf.for_flow(FlowId::new(0)).len(), 2);
        assert_eq!(buf.for_flow(FlowId::new(1)).len(), 1);
        assert_eq!(buf.for_flow(FlowId::new(9)).len(), 0);
    }

    #[test]
    fn losses_filter_and_display() {
        let mut buf = TraceBuffer::with_capacity(16);
        buf.push(TraceEvent::Attempt {
            asn: 7,
            link: link(),
            flow: FlowId::new(3),
            interferers: 2,
            success: false,
        });
        buf.push(TraceEvent::Attempt {
            asn: 8,
            link: link(),
            flow: FlowId::new(3),
            interferers: 0,
            success: true,
        });
        let losses = buf.losses();
        assert_eq!(losses.len(), 1);
        let text = losses[0].to_string();
        assert!(text.contains("LOST"));
        assert!(text.contains("interferers 2"));
    }
}
