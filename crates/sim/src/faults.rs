//! Fault injection: mid-run node crashes, link-PRR collapses, and WiFi
//! interferer spawn/kill, fired at scheduled slots or stochastically.
//!
//! A [`FaultPlan`] is a declarative list of [`FaultEvent`]s carried inside
//! [`SimConfig`](crate::SimConfig). The engine materialises it into a
//! [`FaultInjector`] at the start of each run and consults the injector
//! every slot, so the PHY sees faults the moment they fire.
//!
//! Determinism: the injector owns its *own* RNG stream (seeded from
//! [`FaultPlan::seed`]), entirely separate from the engine's reception RNG.
//! An empty plan therefore leaves the engine's random stream untouched and
//! the simulation output bit-identical to a fault-free run — the property
//! `tests/fault_recovery.rs` pins down.

use crate::error::SimError;
use crate::WifiInterferer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wsan_net::{ChannelId, DirectedLink, NodeId};

/// When a fault event fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultTrigger {
    /// Fire deterministically at this absolute slot number.
    AtSlot(u64),
    /// Fire once, stochastically: each slot while pending, the event fires
    /// with this probability (drawn from the injector's own seeded RNG).
    Stochastic {
        /// Per-slot firing probability in `[0, 1]`.
        per_slot: f64,
    },
}

/// What a fault event does while active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node stops transmitting, receiving, and acknowledging.
    CrashNode {
        /// The crashed node.
        node: NodeId,
    },
    /// The directed link's PRR collapses to `prr` on the given channels.
    CollapseLink {
        /// The affected link.
        link: DirectedLink,
        /// Affected channels; `None` collapses every channel.
        channels: Option<Vec<ChannelId>>,
        /// Replacement PRR in `[0, 1]`; the effective PRR is the minimum of
        /// this and the link's measured PRR (faults never improve a link).
        prr: f64,
    },
    /// A WiFi interferer appears mid-run (its duty-cycle gating draws come
    /// from the injector's RNG, not the engine's).
    SpawnInterferer {
        /// The interferer to activate.
        interferer: WifiInterferer,
    },
    /// Silences one of the *environment* interferers declared in
    /// [`SimConfig::interferers`](crate::SimConfig::interferers) — the
    /// "interferer killed mid-run" direction.
    SilenceInterferer {
        /// Index into `SimConfig::interferers`.
        index: usize,
    },
}

/// One fault: a trigger, an optional active duration, and an effect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// How many slots the fault stays active once fired; `None` is
    /// permanent. A finite duration on [`FaultKind::SpawnInterferer`] models
    /// an interferer that appears *and* disappears mid-run.
    pub duration: Option<u64>,
    /// The effect while active.
    pub kind: FaultKind,
}

/// A declarative, seedable fault schedule for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the injector's private RNG (stochastic triggers and spawned
    /// interferers' duty cycles).
    pub seed: u64,
    /// The fault events, in declaration order.
    pub events: Vec<FaultEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { seed: 0xFA_017, events: Vec::new() }
    }
}

impl FaultPlan {
    /// An empty plan with the given injector seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, events: Vec::new() }
    }

    /// Whether the plan contains no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds an arbitrary event (builder style).
    #[must_use]
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Crashes `node` permanently at slot `slot`.
    #[must_use]
    pub fn crash_at(self, slot: u64, node: NodeId) -> Self {
        self.with(FaultEvent {
            trigger: FaultTrigger::AtSlot(slot),
            duration: None,
            kind: FaultKind::CrashNode { node },
        })
    }

    /// Collapses `link` to `prr` on all channels, permanently, at `slot`.
    #[must_use]
    pub fn collapse_link_at(self, slot: u64, link: DirectedLink, prr: f64) -> Self {
        self.with(FaultEvent {
            trigger: FaultTrigger::AtSlot(slot),
            duration: None,
            kind: FaultKind::CollapseLink { link, channels: None, prr },
        })
    }

    /// Spawns `interferer` at `slot` for `duration` slots (`None` = forever).
    #[must_use]
    pub fn spawn_wifi_at(
        self,
        slot: u64,
        interferer: WifiInterferer,
        duration: Option<u64>,
    ) -> Self {
        self.with(FaultEvent {
            trigger: FaultTrigger::AtSlot(slot),
            duration,
            kind: FaultKind::SpawnInterferer { interferer },
        })
    }

    /// The plan as later epochs see it: scheduled permanent damage has
    /// already happened (its trigger moves to slot 0), scheduled transient
    /// events are over and disappear, and stochastic events keep their
    /// per-slot chance. A recovery supervisor re-running the simulator
    /// epoch by epoch passes the original plan to the onset epoch and the
    /// settled plan to every epoch after it.
    #[must_use]
    pub fn settled(&self) -> FaultPlan {
        let events = self
            .events
            .iter()
            .filter(|e| {
                e.duration.is_none() || matches!(e.trigger, FaultTrigger::Stochastic { .. })
            })
            .map(|e| {
                let mut e = e.clone();
                if matches!(e.trigger, FaultTrigger::AtSlot(_)) {
                    e.trigger = FaultTrigger::AtSlot(0);
                }
                e
            })
            .collect();
        FaultPlan { seed: self.seed, events }
    }

    /// Whether executing the plan consumes injector-RNG draws on every slot
    /// (pending stochastic triggers, active spawned interferers). Plans for
    /// which this is false fire at precomputable slots, which is half of the
    /// event engine's draw-order contract (DESIGN.md §13) — the other half
    /// is an empty [`SimConfig::interferers`](crate::SimConfig::interferers).
    pub fn draws_per_slot(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(e.trigger, FaultTrigger::Stochastic { .. })
                || matches!(e.kind, FaultKind::SpawnInterferer { .. })
        })
    }

    /// Event-engine hook: resolves every stochastic trigger to a concrete
    /// firing slot, sampled once from a per-event RNG stream instead of one
    /// Bernoulli draw per slot. The firing slot is geometric in the per-slot
    /// probability — statistically identical to the slot-stepper's
    /// draw-per-slot discipline — and events that would fire at or after
    /// `total_slots` resolve to `AtSlot(total_slots)`, which never fires
    /// within the run. Scheduled triggers and event order are untouched, so
    /// plans without stochastic triggers resolve to themselves.
    #[must_use]
    pub(crate) fn resolve_stochastic(&self, total_slots: u64) -> FaultPlan {
        if self.events.iter().all(|e| !matches!(e.trigger, FaultTrigger::Stochastic { .. })) {
            return self.clone();
        }
        let events = self
            .events
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let mut e = e.clone();
                if let FaultTrigger::Stochastic { per_slot } = e.trigger {
                    let mut rng =
                        StdRng::seed_from_u64(mix64(self.seed, STOCHASTIC_SALT ^ i as u64));
                    e.trigger =
                        FaultTrigger::AtSlot(geometric_slot(&mut rng, per_slot, total_slots));
                }
                e
            })
            .collect();
        FaultPlan { seed: self.seed, events }
    }

    /// Event-engine hook: the absolute slots at which this plan's *resolved*
    /// state machine changes — firings and expiries — clipped to
    /// `total_slots`. Only meaningful on a plan whose triggers are all
    /// `AtSlot` (i.e. after [`FaultPlan::resolve_stochastic`]). Sorted,
    /// deduplicated.
    pub(crate) fn change_slots(&self, total_slots: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for e in &self.events {
            let FaultTrigger::AtSlot(fire) = e.trigger else {
                debug_assert!(false, "change_slots needs a resolved plan");
                continue;
            };
            if fire >= total_slots {
                continue;
            }
            out.push(fire);
            if let Some(d) = e.duration {
                // the slot-stepper notices an expiry at `fired + duration`,
                // except duration 0 which it first re-examines one slot later
                let clear = fire.saturating_add(d.max(1));
                if clear < total_slots {
                    out.push(clear);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks the plan against the world it will be injected into.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadFaultPlan`] when a probability or PRR is
    /// outside `[0, 1]`, a crashed node is not in the topology, or a
    /// silenced interferer index is out of range.
    pub fn validate(&self, node_count: usize, interferer_count: usize) -> Result<(), SimError> {
        for (i, event) in self.events.iter().enumerate() {
            if let FaultTrigger::Stochastic { per_slot } = event.trigger {
                if !(0.0..=1.0).contains(&per_slot) || per_slot.is_nan() {
                    return Err(SimError::BadFaultPlan {
                        reason: format!("event {i}: per-slot probability {per_slot} not in [0, 1]"),
                    });
                }
            }
            match &event.kind {
                FaultKind::CrashNode { node } => {
                    if node.index() >= node_count {
                        return Err(SimError::BadFaultPlan {
                            reason: format!(
                                "event {i}: node {} outside topology of {node_count} nodes",
                                node.index()
                            ),
                        });
                    }
                }
                FaultKind::CollapseLink { prr, .. } => {
                    if !(0.0..=1.0).contains(prr) || prr.is_nan() {
                        return Err(SimError::BadFaultPlan {
                            reason: format!("event {i}: collapse PRR {prr} not in [0, 1]"),
                        });
                    }
                }
                FaultKind::SpawnInterferer { .. } => {}
                FaultKind::SilenceInterferer { index } => {
                    if *index >= interferer_count {
                        return Err(SimError::BadFaultPlan {
                            reason: format!(
                                "event {i}: interferer index {index} outside the \
                                 {interferer_count} configured interferers"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// What one fired fault looked like from inside the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Index of the event in [`FaultPlan::events`].
    pub event_index: usize,
    /// Absolute slot at which the event fired.
    pub fired_at: u64,
    /// Absolute slot at which the event expired (`None` = still active at
    /// the end of the run).
    pub cleared_at: Option<u64>,
}

/// Every fault that fired during a run, in firing order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    /// One record per fired event.
    pub records: Vec<FaultRecord>,
}

impl FaultLog {
    /// Number of events that fired.
    pub fn fired(&self) -> usize {
        self.records.len()
    }

    /// Whether no fault fired at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Salt of the per-event stochastic-trigger streams (`resolve_stochastic`).
const STOCHASTIC_SALT: u64 = 0x570C_4A57;

/// SplitMix64 finalizer over `base ^ salt`: derives well-separated seeds for
/// the event engine's dedicated RNG streams from one user-facing seed.
pub(crate) fn mix64(base: u64, salt: u64) -> u64 {
    let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples the firing slot of a per-slot-Bernoulli(`p`) trigger by inverting
/// the geometric CDF: one uniform draw replaces one draw per slot. Returns
/// `total_slots` (i.e. "never, within this run") for `p = 0` or a tail draw
/// past the end of the run.
fn geometric_slot<R: Rng + ?Sized>(rng: &mut R, p: f64, total_slots: u64) -> u64 {
    if p <= 0.0 {
        return total_slots;
    }
    if p >= 1.0 {
        return 0;
    }
    let u: f64 = rng.gen();
    // floor(ln(1-u) / ln(1-p)): the number of failures before the first
    // success of independent Bernoulli(p) trials
    let delay = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if !delay.is_finite() || delay >= total_slots as f64 {
        total_slots
    } else {
        delay.max(0.0) as u64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventStatus {
    Pending,
    Active { since: u64 },
    Expired,
}

/// The per-run materialisation of a [`FaultPlan`]: tracks which events are
/// pending / active / expired as the engine advances slot by slot, and
/// answers the PHY's per-transmission queries.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    events: Vec<FaultEvent>,
    status: Vec<EventStatus>,
    rng: StdRng,
    log: FaultLog,
}

impl FaultInjector {
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            events: plan.events.clone(),
            status: vec![EventStatus::Pending; plan.events.len()],
            rng: StdRng::seed_from_u64(plan.seed),
            log: FaultLog::default(),
        }
    }

    /// Advances the injector to `asn`: fires due triggers, expires finished
    /// events. Called once per slot, in slot order.
    pub fn advance(&mut self, asn: u64) {
        for i in 0..self.events.len() {
            match self.status[i] {
                EventStatus::Pending => {
                    let fire = match self.events[i].trigger {
                        FaultTrigger::AtSlot(s) => asn >= s,
                        FaultTrigger::Stochastic { per_slot } => {
                            let u: f64 = self.rng.gen();
                            u < per_slot
                        }
                    };
                    if fire {
                        self.status[i] = EventStatus::Active { since: asn };
                        self.log.records.push(FaultRecord {
                            event_index: i,
                            fired_at: asn,
                            cleared_at: None,
                        });
                    }
                }
                EventStatus::Active { since } => {
                    if let Some(duration) = self.events[i].duration {
                        if asn >= since.saturating_add(duration) {
                            self.status[i] = EventStatus::Expired;
                            if let Some(record) = self
                                .log
                                .records
                                .iter_mut()
                                .find(|r| r.event_index == i && r.cleared_at.is_none())
                            {
                                record.cleared_at = Some(asn);
                            }
                        }
                    }
                }
                EventStatus::Expired => {}
            }
        }
    }

    fn active_kinds(&self) -> impl Iterator<Item = &FaultKind> {
        self.events
            .iter()
            .zip(&self.status)
            .filter(|(_, s)| matches!(s, EventStatus::Active { .. }))
            .map(|(e, _)| &e.kind)
    }

    /// Whether `node` is currently crashed.
    pub fn node_down(&self, node: NodeId) -> bool {
        self.active_kinds().any(|k| matches!(k, FaultKind::CrashNode { node: n } if *n == node))
    }

    /// The collapsed PRR for `link` on `channel`, if any collapse fault is
    /// active for it (the minimum wins when several overlap).
    pub fn link_prr_override(&self, link: DirectedLink, channel: ChannelId) -> Option<f64> {
        self.active_kinds()
            .filter_map(|k| match k {
                FaultKind::CollapseLink { link: l, channels, prr }
                    if *l == link && channels.as_ref().is_none_or(|cs| cs.contains(&channel)) =>
                {
                    Some(*prr)
                }
                _ => None,
            })
            .reduce(f64::min)
    }

    /// Whether the environment interferer at `index` is currently silenced.
    pub fn interferer_silenced(&self, index: usize) -> bool {
        self.active_kinds()
            .any(|k| matches!(k, FaultKind::SilenceInterferer { index: i } if *i == index))
    }

    /// Spawned interferers that pass their duty-cycle gate for this slot.
    /// Draws come from the injector's RNG, never the engine's, so with no
    /// spawned interferers this consumes nothing.
    #[cfg(test)]
    pub fn sample_spawned_wifi(&mut self) -> Vec<WifiInterferer> {
        let mut active: Vec<WifiInterferer> = Vec::new();
        self.sample_spawned_wifi_into(&mut active);
        active
    }

    /// Clears and refills a caller-owned buffer with the spawned interferers
    /// that pass their duty-cycle gate for this slot, so per-slot hot loops
    /// allocate nothing. Draws come from the injector's RNG, never the
    /// engine's, so with no spawned interferers this consumes nothing.
    pub fn sample_spawned_wifi_into(&mut self, active: &mut Vec<WifiInterferer>) {
        active.clear();
        for i in 0..self.events.len() {
            if !matches!(self.status[i], EventStatus::Active { .. }) {
                continue;
            }
            if let FaultKind::SpawnInterferer { interferer } = &self.events[i].kind {
                let u: f64 = self.rng.gen();
                if u < interferer.duty_cycle {
                    active.push(interferer.clone());
                }
            }
        }
    }

    /// Event-engine hook: the currently active spawned interferers with
    /// their event indices, *without* consuming any duty-cycle draws — the
    /// event engine gates each spawn on its own dedicated RNG stream.
    pub fn active_spawns(&self) -> impl Iterator<Item = (usize, &WifiInterferer)> {
        self.events.iter().zip(&self.status).enumerate().filter_map(|(i, (e, s))| {
            match (&e.kind, s) {
                (FaultKind::SpawnInterferer { interferer }, EventStatus::Active { .. }) => {
                    Some((i, interferer))
                }
                _ => None,
            }
        })
    }

    /// Consumes the injector, returning what fired.
    pub fn into_log(self) -> FaultLog {
        self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::Position;

    fn link(a: usize, b: usize) -> DirectedLink {
        DirectedLink { tx: NodeId::new(a), rx: NodeId::new(b) }
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut inj = FaultInjector::new(&FaultPlan::default());
        for asn in 0..100 {
            inj.advance(asn);
        }
        assert!(!inj.node_down(NodeId::new(0)));
        assert!(inj.link_prr_override(link(0, 1), ChannelId::new(11).unwrap()).is_none());
        assert!(inj.sample_spawned_wifi().is_empty());
        assert!(inj.into_log().is_empty());
    }

    #[test]
    fn scheduled_crash_fires_at_its_slot() {
        let plan = FaultPlan::new(1).crash_at(10, NodeId::new(3));
        let mut inj = FaultInjector::new(&plan);
        inj.advance(9);
        assert!(!inj.node_down(NodeId::new(3)));
        inj.advance(10);
        assert!(inj.node_down(NodeId::new(3)));
        inj.advance(11);
        assert!(inj.node_down(NodeId::new(3)), "permanent faults stay active");
        let log = inj.into_log();
        assert_eq!(log.fired(), 1);
        assert_eq!(log.records[0].fired_at, 10);
        assert_eq!(log.records[0].cleared_at, None);
    }

    #[test]
    fn finite_duration_expires_and_is_logged() {
        let plan = FaultPlan::new(1).with(FaultEvent {
            trigger: FaultTrigger::AtSlot(5),
            duration: Some(3),
            kind: FaultKind::CrashNode { node: NodeId::new(0) },
        });
        let mut inj = FaultInjector::new(&plan);
        for asn in 0..12 {
            inj.advance(asn);
            let expect_down = (5..8).contains(&asn);
            assert_eq!(inj.node_down(NodeId::new(0)), expect_down, "asn {asn}");
        }
        let log = inj.into_log();
        assert_eq!(log.records[0].cleared_at, Some(8));
    }

    #[test]
    fn collapse_respects_channel_scope_and_takes_the_minimum() {
        let ch11 = ChannelId::new(11).unwrap();
        let ch12 = ChannelId::new(12).unwrap();
        let plan = FaultPlan::new(1)
            .with(FaultEvent {
                trigger: FaultTrigger::AtSlot(0),
                duration: None,
                kind: FaultKind::CollapseLink {
                    link: link(0, 1),
                    channels: Some(vec![ch11]),
                    prr: 0.4,
                },
            })
            .collapse_link_at(0, link(0, 1), 0.2);
        let mut inj = FaultInjector::new(&plan);
        inj.advance(0);
        assert_eq!(inj.link_prr_override(link(0, 1), ch11), Some(0.2));
        assert_eq!(inj.link_prr_override(link(0, 1), ch12), Some(0.2));
        assert_eq!(inj.link_prr_override(link(1, 0), ch11), None);
    }

    #[test]
    fn stochastic_trigger_is_deterministic_per_seed() {
        let plan = FaultPlan::new(99).with(FaultEvent {
            trigger: FaultTrigger::Stochastic { per_slot: 0.05 },
            duration: None,
            kind: FaultKind::CrashNode { node: NodeId::new(1) },
        });
        let fired_at = |seed: u64| {
            let mut p = plan.clone();
            p.seed = seed;
            let mut inj = FaultInjector::new(&p);
            for asn in 0..10_000 {
                inj.advance(asn);
            }
            let log = inj.into_log();
            assert_eq!(log.fired(), 1, "p=0.05 over 10k slots fires w.h.p.");
            log.records[0].fired_at
        };
        assert_eq!(fired_at(99), fired_at(99));
        assert_ne!(fired_at(99), fired_at(100));
    }

    #[test]
    fn spawned_wifi_gates_on_its_own_rng() {
        let wifi = WifiInterferer::wifi_channel_1(Position::new(0.0, 0.0, 0.0), 10.0, 0.5);
        let plan = FaultPlan::new(7).spawn_wifi_at(0, wifi, None);
        let mut inj = FaultInjector::new(&plan);
        inj.advance(0);
        let hits = (0..1000).filter(|_| !inj.sample_spawned_wifi().is_empty()).count();
        assert!((380..620).contains(&hits), "duty cycle 0.5 gates ≈half: {hits}");
    }

    #[test]
    fn settled_moves_permanent_damage_to_slot_zero() {
        let wifi = WifiInterferer::wifi_channel_1(Position::new(0.0, 0.0, 0.0), 10.0, 0.5);
        let plan = FaultPlan::new(3)
            .crash_at(40, NodeId::new(1))
            .spawn_wifi_at(50, wifi, Some(20))
            .with(FaultEvent {
                trigger: FaultTrigger::Stochastic { per_slot: 0.01 },
                duration: None,
                kind: FaultKind::CrashNode { node: NodeId::new(2) },
            });
        let settled = plan.settled();
        assert_eq!(settled.events.len(), 2, "transient scheduled event is over");
        assert_eq!(settled.events[0].trigger, FaultTrigger::AtSlot(0));
        assert_eq!(
            settled.events[1].trigger,
            FaultTrigger::Stochastic { per_slot: 0.01 },
            "stochastic events keep their chance"
        );
        assert_eq!(settled.seed, 3);
    }

    #[test]
    fn draws_per_slot_flags_stochastic_and_spawned_sources() {
        assert!(!FaultPlan::default().draws_per_slot());
        assert!(!FaultPlan::new(1).crash_at(5, NodeId::new(0)).draws_per_slot());
        let stochastic = FaultPlan::new(1).with(FaultEvent {
            trigger: FaultTrigger::Stochastic { per_slot: 0.1 },
            duration: None,
            kind: FaultKind::CrashNode { node: NodeId::new(0) },
        });
        assert!(stochastic.draws_per_slot());
        let wifi = WifiInterferer::wifi_channel_1(Position::new(0.0, 0.0, 0.0), 10.0, 0.5);
        assert!(FaultPlan::new(1).spawn_wifi_at(0, wifi, None).draws_per_slot());
    }

    #[test]
    fn resolve_stochastic_is_deterministic_and_geometric() {
        let scheduled = FaultPlan::new(4).crash_at(7, NodeId::new(1));
        assert_eq!(scheduled.resolve_stochastic(100), scheduled, "no stochastic → unchanged");
        let plan = FaultPlan::new(4).with(FaultEvent {
            trigger: FaultTrigger::Stochastic { per_slot: 0.1 },
            duration: None,
            kind: FaultKind::CrashNode { node: NodeId::new(0) },
        });
        assert_eq!(plan.resolve_stochastic(10_000), plan.resolve_stochastic(10_000));
        // the sampled firing slot is geometric: its mean over many seeds
        // approaches (1-p)/p = 9
        let mean = (0..2000u64)
            .map(|s| {
                let mut p = plan.clone();
                p.seed = s;
                match p.resolve_stochastic(1_000_000).events[0].trigger {
                    FaultTrigger::AtSlot(slot) => slot as f64,
                    FaultTrigger::Stochastic { .. } => panic!("must resolve"),
                }
            })
            .sum::<f64>()
            / 2000.0;
        assert!((8.0..11.0).contains(&mean), "geometric mean {mean} should be near 9");
        // p = 0 never fires within the run
        let never = FaultPlan::new(4).with(FaultEvent {
            trigger: FaultTrigger::Stochastic { per_slot: 0.0 },
            duration: None,
            kind: FaultKind::CrashNode { node: NodeId::new(0) },
        });
        assert_eq!(never.resolve_stochastic(50).events[0].trigger, FaultTrigger::AtSlot(50));
    }

    #[test]
    fn change_slots_cover_firings_and_expiries() {
        let plan = FaultPlan::new(1)
            .crash_at(10, NodeId::new(0))
            .with(FaultEvent {
                trigger: FaultTrigger::AtSlot(5),
                duration: Some(3),
                kind: FaultKind::CrashNode { node: NodeId::new(1) },
            })
            .crash_at(99, NodeId::new(2));
        assert_eq!(plan.change_slots(50), vec![5, 8, 10], "out-of-run firings are clipped");
        assert_eq!(plan.change_slots(9), vec![5, 8]);
        assert_eq!(plan.change_slots(8), vec![5], "expiry at the boundary is clipped");
        // duration 0 behaves like duration 1 (the stepper re-examines an
        // active event one slot after it fires at the earliest)
        let zero = FaultPlan::new(1).with(FaultEvent {
            trigger: FaultTrigger::AtSlot(4),
            duration: Some(0),
            kind: FaultKind::CrashNode { node: NodeId::new(0) },
        });
        assert_eq!(zero.change_slots(50), vec![4, 5]);
    }

    #[test]
    fn active_spawns_expose_live_interferers_without_draws() {
        let wifi = WifiInterferer::wifi_channel_1(Position::new(0.0, 0.0, 0.0), 10.0, 0.5);
        let plan =
            FaultPlan::new(7).crash_at(0, NodeId::new(0)).spawn_wifi_at(3, wifi.clone(), Some(4));
        let mut inj = FaultInjector::new(&plan);
        inj.advance(0);
        assert_eq!(inj.active_spawns().count(), 0);
        inj.advance(3);
        let spawns: Vec<_> = inj.active_spawns().map(|(i, _)| i).collect();
        assert_eq!(spawns, vec![1]);
        inj.advance(7);
        assert_eq!(inj.active_spawns().count(), 0, "expired spawn disappears");
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::new(1).crash_at(0, NodeId::new(9)).validate(4, 0).is_err());
        assert!(FaultPlan::new(1).collapse_link_at(0, link(0, 1), 1.5).validate(4, 0).is_err());
        let silence = FaultPlan::new(1).with(FaultEvent {
            trigger: FaultTrigger::AtSlot(0),
            duration: None,
            kind: FaultKind::SilenceInterferer { index: 2 },
        });
        assert!(silence.clone().validate(4, 2).is_err());
        assert!(silence.validate(4, 3).is_ok());
        let stochastic = FaultPlan::new(1).with(FaultEvent {
            trigger: FaultTrigger::Stochastic { per_slot: -0.1 },
            duration: None,
            kind: FaultKind::CrashNode { node: NodeId::new(0) },
        });
        assert!(stochastic.validate(4, 0).is_err());
    }
}
