//! Simulation configuration: capture model, fading, and run parameters.

use crate::faults::FaultPlan;
use crate::WifiInterferer;
use serde::{Deserialize, Serialize};

/// The capture-effect model: the probability that a reception survives
/// concurrent same-channel interference, as a logistic function of the
/// signal-to-interference(+external) ratio at the receiver.
///
/// `P(capture) = 1 / (1 + exp(−(SIR_dB − threshold_db) / slope_db))`
///
/// Above the threshold the intended frame captures the radio and the
/// reception behaves like an interference-free one; near and below it the
/// success probability collapses. Interference powers of multiple
/// concurrent senders are summed in linear (mW) space — interference is
/// cumulative, which is why scheduling *fewer* transmissions per channel is
/// one of the paper's explicit reliability levers (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptureModel {
    /// SIR at which the capture probability is 0.5, in dB. The co-channel
    /// rejection of an ideal 802.15.4 receiver is ≈3 dB, but a successful
    /// slot needs data *and* acknowledgement to survive, and deployed
    /// radios capture less cleanly, so the effective default is higher.
    pub threshold_db: f64,
    /// Logistic slope in dB.
    pub slope_db: f64,
    /// Per-reception temporal fading applied to the SIR.
    pub fading: FadingModel,
}

impl Default for CaptureModel {
    fn default() -> Self {
        CaptureModel { threshold_db: 8.0, slope_db: 2.5, fading: FadingModel::Rayleigh }
    }
}

impl CaptureModel {
    /// Probability that the intended frame is captured at `sir_db`.
    pub fn capture_probability(&self, sir_db: f64) -> f64 {
        let x = (sir_db - self.threshold_db) / self.slope_db;
        1.0 / (1.0 + (-x).exp())
    }
}

/// Per-reception temporal fading of the signal-to-interference ratio.
///
/// The topology's shadowing is frozen — it is what the PRR tables measured —
/// but the *relative* power of the signal and interference paths fluctuates
/// slot to slot with multipath fading. This fluctuation is what occasionally
/// drops an on-average-safe SIR below the capture threshold, producing the
/// paper's signature of stable *median* PDR but degraded *worst-case* PDR
/// under aggressive reuse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FadingModel {
    /// No temporal fading: the SIR is deterministic (useful for unit tests
    /// and idealized studies).
    None,
    /// Gaussian (log-normal) fading of the SIR with the given standard
    /// deviation in dB.
    LogNormal {
        /// Standard deviation of the dB-domain fade.
        sigma_db: f64,
    },
    /// Independent Rayleigh fading on the signal and interference paths:
    /// both powers are scaled by unit-mean exponential draws, so the SIR
    /// perturbation is the dB-ratio of two exponentials. This is the
    /// classic narrowband indoor multipath model; its heavy lower tail
    /// (a ≥10 dB SIR drop roughly 9 % of the time) is what makes marginal
    /// channel reuse genuinely risky on real deployments.
    Rayleigh,
    /// Rician fading on both paths: a dominant (line-of-sight-ish)
    /// component plus scattered multipath, with power ratio `k_factor`.
    /// Lighter tails than Rayleigh — the right default for static indoor
    /// industrial links, where deep fades are possible but uncommon.
    Rician {
        /// Ratio of dominant to scattered power (linear, not dB).
        k_factor: f64,
    },
}

impl FadingModel {
    /// Draws one SIR perturbation in dB.
    pub fn sample_db<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            FadingModel::None => 0.0,
            FadingModel::LogNormal { sigma_db } => gaussian(rng) * sigma_db,
            FadingModel::Rayleigh => {
                let s: f64 = -(rng.gen_range(f64::EPSILON..1.0f64)).ln();
                let i: f64 = -(rng.gen_range(f64::EPSILON..1.0f64)).ln();
                10.0 * (s / i).log10()
            }
            FadingModel::Rician { k_factor } => {
                let s = rician_power(rng, k_factor);
                let i = rician_power(rng, k_factor);
                10.0 * (s / i).log10()
            }
        }
    }
}

/// Unit-mean Rician power draw: `|v + σ·CN(0,1)|²` with
/// `v² = K/(K+1)`, `2σ² = 1/(K+1)`.
fn rician_power<R: rand::Rng + ?Sized>(rng: &mut R, k: f64) -> f64 {
    let k = k.max(0.0);
    let v = (k / (k + 1.0)).sqrt();
    let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
    let re = v + sigma * gaussian(rng);
    let im = sigma * gaussian(rng);
    (re * re + im * im).max(1e-12)
}

/// Standard normal draw via Box–Muller.
fn gaussian<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Which simulation core executes a run.
///
/// Both engines implement the same PHY semantics and produce a
/// [`SimReport`](crate::SimReport); they differ in how they traverse time.
/// The slot-stepper is the golden oracle; the event engine skips idle slots
/// and is byte-identical to the oracle whenever the *draw-order contract*
/// holds (no environment interferers, no stochastic fault triggers, no
/// spawned interferers — see DESIGN.md §13), and statistically equivalent
/// otherwise.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimEngine {
    /// The original engine: walks every `(repetition, slot)` pair. O(slots ×
    /// repetitions) regardless of occupancy, but the reference semantics.
    #[default]
    SlotStepper,
    /// The discrete-event engine: a time-ordered event queue over components
    /// (transmission batches, fault-plan changes, repetition boundaries)
    /// that visits only slots holding scheduled transmissions. O(busy slots
    /// × repetitions); the unlock for sparse long-horizon scenarios.
    EventDriven,
}

impl std::str::FromStr for SimEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "slots" | "slot" | "slot-stepper" | "oracle" => Ok(SimEngine::SlotStepper),
            "events" | "event" | "event-driven" => Ok(SimEngine::EventDriven),
            other => Err(format!("unknown engine '{other}' (expected 'slots' or 'events')")),
        }
    }
}

impl std::fmt::Display for SimEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimEngine::SlotStepper => write!(f, "slots"),
            SimEngine::EventDriven => write!(f, "events"),
        }
    }
}

/// Parameters of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; the same configuration and seed reproduce bit-identical
    /// reports.
    pub seed: u64,
    /// Number of times the schedule (one hyperperiod) is executed
    /// back-to-back (the paper runs each schedule 100 times).
    pub repetitions: u32,
    /// Repetitions aggregated into one PRR sample for the per-link
    /// condition statistics (a WirelessHART health-report granule).
    pub window_reps: u32,
    /// Capture-effect model.
    pub capture: CaptureModel,
    /// External interference sources (empty = clean environment).
    pub interferers: Vec<WifiInterferer>,
    /// Neighbor-discovery probe packets per scheduled link per repetition.
    ///
    /// WirelessHART nodes broadcast periodic neighbor-discovery packets in
    /// all channels, and the network manager reserves slots for them (§VI).
    /// Probes are contention-free by construction, so they feed the
    /// contention-free PRR distribution of every link — including links
    /// whose every *data* slot is shared under channel reuse.
    pub discovery_probes: u32,
    /// Scripted faults injected during the run (crashes, link collapses,
    /// roaming interferers). An empty plan — the default — leaves the
    /// simulation bit-identical to a build without fault support.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            repetitions: 100,
            window_reps: 10,
            capture: CaptureModel::default(),
            interferers: Vec::new(),
            discovery_probes: 1,
            faults: FaultPlan::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn capture_probability_is_monotone_in_sir() {
        let m = CaptureModel::default();
        let mut last = 0.0;
        for sir in -20..30 {
            let p = m.capture_probability(f64::from(sir));
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn capture_probability_anchors() {
        let m = CaptureModel { threshold_db: 4.0, slope_db: 2.0, fading: FadingModel::None };
        assert!((m.capture_probability(4.0) - 0.5).abs() < 1e-12);
        assert!(m.capture_probability(20.0) > 0.999);
        assert!(m.capture_probability(-15.0) < 0.001);
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("events".parse::<SimEngine>().unwrap(), SimEngine::EventDriven);
        assert_eq!("slot-stepper".parse::<SimEngine>().unwrap(), SimEngine::SlotStepper);
        assert_eq!("oracle".parse::<SimEngine>().unwrap(), SimEngine::SlotStepper);
        assert!("quantum".parse::<SimEngine>().is_err());
        assert_eq!(SimEngine::EventDriven.to_string(), "events");
        assert_eq!(SimEngine::default(), SimEngine::SlotStepper);
    }

    #[test]
    fn default_config_is_clean_environment() {
        let c = SimConfig::default();
        assert!(c.interferers.is_empty());
        assert_eq!(c.repetitions, 100);
    }

    #[test]
    fn no_fading_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(FadingModel::None.sample_db(&mut rng), 0.0);
        }
    }

    #[test]
    fn lognormal_fading_matches_sigma() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = 6.0;
        let draws: Vec<f64> = (0..20_000)
            .map(|_| FadingModel::LogNormal { sigma_db: sigma }.sample_db(&mut rng))
            .collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.2, "sd {}", var.sqrt());
    }

    #[test]
    fn rayleigh_fading_has_heavy_lower_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<f64> =
            (0..100_000).map(|_| FadingModel::Rayleigh.sample_db(&mut rng)).collect();
        // symmetric around 0 dB
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        // P(fade < -10 dB) for the ratio of two unit exponentials is
        // r/(1+r) at r = 0.1 ≈ 0.0909
        let deep = draws.iter().filter(|&&d| d < -10.0).count() as f64 / draws.len() as f64;
        assert!((deep - 0.0909).abs() < 0.01, "deep-fade rate {deep}");
    }
}
