//! Queue-based simulation of autonomous (Orchestra-style) slotframes.
//!
//! Unlike the centrally scheduled engine, packets here are not bound to
//! pre-assigned cells. A packet waits at its current node; whenever the
//! next hop's receive slot comes around, the node transmits. Several
//! packets heading to the same receiver — or to different receivers that
//! happen to share a physical channel — contend, and the capture model
//! decides who survives. Packets retry every slotframe round until
//! delivered or past their deadline.

use crate::phy::Phy;
use crate::{FlowStats, SimConfig, SimReport, WifiInterferer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use wsan_core::orchestra::AutonomousSlotframe;
use wsan_flow::FlowSet;
use wsan_net::{ChannelSet, DirectedLink, NodeId, Topology};

/// One in-flight packet.
#[derive(Debug, Clone, Copy)]
struct Packet {
    flow: usize,
    release: u64,
    deadline: u64,
    hop: usize,
}

/// Simulator for autonomous slotframes.
///
/// Shares the PHY (capture + fading + WiFi) with the scheduled
/// [`Simulator`](crate::Simulator), so NR/RA/RC and the autonomous baseline
/// are compared under identical radio conditions.
#[derive(Debug)]
pub struct AutonomousSimulator<'a> {
    topo: &'a Topology,
    channels: &'a ChannelSet,
    flows: &'a FlowSet,
    frame: &'a AutonomousSlotframe,
    /// per flow: the node sequence of its route (walk across segments)
    hops: Vec<Vec<DirectedLink>>,
}

impl<'a> AutonomousSimulator<'a> {
    /// Prepares the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the slotframe was built for fewer nodes than the topology
    /// has, or the channel set does not match its channel-offset count.
    pub fn new(
        topo: &'a Topology,
        channels: &'a ChannelSet,
        flows: &'a FlowSet,
        frame: &'a AutonomousSlotframe,
    ) -> Self {
        assert!(
            frame.node_count() >= topo.node_count(),
            "slotframe built for fewer nodes than the topology"
        );
        assert_eq!(
            channels.len(),
            frame.channels(),
            "channel set size must match the slotframe's channel offsets"
        );
        let hops = flows.iter().map(|f| f.links()).collect();
        AutonomousSimulator { topo, channels, flows, frame, hops }
    }

    /// Runs for `config.repetitions` hyperperiods of the flow set and
    /// reports deadline-constrained delivery (a packet counts as delivered
    /// only if it reaches the destination before its deadline).
    pub fn run(&self, config: &SimConfig) -> SimReport {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let phy = Phy::new(self.topo, config.capture);
        let hyperperiod = u64::from(self.flows.hyperperiod());
        let total_slots = hyperperiod * u64::from(config.repetitions.max(1));
        let mut flow_stats = vec![FlowStats::default(); self.flows.len()];
        let mut latencies: Vec<Vec<u32>> = vec![Vec::new(); self.flows.len()];
        let mut packets: Vec<Packet> = Vec::new();

        for asn in 0..total_slots {
            // releases
            for (fi, flow) in self.flows.iter().enumerate() {
                if asn % u64::from(flow.period().slots()) == 0 {
                    flow_stats[fi].released += 1;
                    packets.push(Packet {
                        flow: fi,
                        release: asn,
                        deadline: asn + u64::from(flow.deadline_slots()),
                        hop: 0,
                    });
                }
            }
            // drop expired packets
            packets.retain(|p| asn < p.deadline);

            // transmission attempts this slot: at most one packet per
            // sender, sender must not be listening itself this slot
            let mut attempt_of_sender: BTreeMap<NodeId, usize> = BTreeMap::new();
            for (pi, p) in packets.iter().enumerate() {
                let link = self.hops[p.flow][p.hop];
                if !self.frame.listens(link.rx, asn) {
                    continue; // next hop not listening now
                }
                attempt_of_sender.entry(link.tx).or_insert(pi); // FIFO per sender
            }
            // Transmission takes precedence over listening (Orchestra's
            // slot-priority rule); a half-duplex node that transmits this
            // slot is deaf, so attempts *to* a transmitting node fail.
            let transmitting: std::collections::BTreeSet<NodeId> =
                attempt_of_sender.keys().copied().collect();
            let deaf = transmitting.clone();
            attempt_of_sender.retain(|_, pi| {
                let link = self.hops[packets[*pi].flow][packets[*pi].hop];
                !deaf.contains(&link.rx)
            });
            if attempt_of_sender.is_empty() {
                continue;
            }
            let active_wifi: Vec<&WifiInterferer> =
                config.interferers.iter().filter(|w| rng.gen::<f64>() < w.duty_cycle).collect();
            // group attempts by physical channel
            let mut by_channel: BTreeMap<u8, Vec<usize>> = BTreeMap::new();
            for (&sender, &pi) in &attempt_of_sender {
                let _ = sender;
                let link = self.hops[packets[pi].flow][packets[pi].hop];
                let channel = self.channels.physical(asn, self.frame.rx_offset(link.rx));
                by_channel.entry(channel.number()).or_default().push(pi);
            }
            // resolve receptions; a receiver can decode at most one frame
            let mut advanced: Vec<usize> = Vec::new();
            for (ch_num, group) in &by_channel {
                let channel = wsan_net::ChannelId::new(*ch_num).expect("from the set");
                // per receiver: the strongest successful attempt wins
                let mut winner_of_rx: BTreeMap<NodeId, (usize, f64)> = BTreeMap::new();
                for &pi in group {
                    let link = self.hops[packets[pi].flow][packets[pi].hop];
                    let interferers: Vec<NodeId> = group
                        .iter()
                        .filter(|&&o| o != pi)
                        .map(|&o| self.hops[packets[o].flow][packets[o].hop].tx)
                        .collect();
                    let external = phy.external_mw(link.rx, channel, active_wifi.iter().copied());
                    let fading = if interferers.is_empty() && external <= 0.0 {
                        0.0
                    } else {
                        config.capture.fading.sample_db(&mut rng)
                    };
                    let p = phy.success_probability(
                        link.tx,
                        link.rx,
                        channel,
                        &interferers,
                        external,
                        fading,
                    );
                    if rng.gen::<f64>() < p {
                        let power = phy.received_power_dbm(link.tx, link.rx, channel);
                        let best = winner_of_rx.entry(link.rx).or_insert((pi, power));
                        if power > best.1 {
                            *best = (pi, power);
                        }
                    }
                }
                advanced.extend(winner_of_rx.values().map(|(pi, _)| *pi));
            }
            // apply progress, record deliveries
            let mut delivered: Vec<usize> = Vec::new();
            for pi in advanced {
                let p = &mut packets[pi];
                p.hop += 1;
                if p.hop == self.hops[p.flow].len() {
                    flow_stats[p.flow].delivered += 1;
                    latencies[p.flow].push((asn - p.release + 1) as u32);
                    delivered.push(pi);
                }
            }
            delivered.sort_unstable_by(|a, b| b.cmp(a));
            for pi in delivered {
                packets.swap_remove(pi);
            }
        }
        SimReport { flows: flow_stats, link_samples: BTreeMap::new(), latencies }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_flow::{priority, Flow, FlowId, Period};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::{ChannelId, Position, Prr, Route};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn perfect_pair_topo() -> (Topology, ChannelSet) {
        let mut topo = Topology::new(
            "auto",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(8.0, 0.0, 0.0),
                Position::new(60.0, 0.0, 0.0),
                Position::new(68.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).unwrap();
        for (a, b) in [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (2, 1)] {
            for ch in &channels {
                topo.set_prr(n(a), n(b), ch, Prr::ONE).unwrap();
            }
        }
        (topo, channels)
    }

    fn flows_one_hop(period: u32, deadline: u32) -> FlowSet {
        priority::deadline_monotonic(
            vec![
                Flow::new(
                    FlowId::new(0),
                    Route::new(vec![n(0), n(1)]),
                    Period::from_slots(period).unwrap(),
                    deadline,
                )
                .unwrap(),
                Flow::new(
                    FlowId::new(1),
                    Route::new(vec![n(2), n(3)]),
                    Period::from_slots(period).unwrap(),
                    deadline,
                )
                .unwrap(),
            ],
            vec![],
        )
    }

    #[test]
    fn roomy_deadlines_deliver_over_perfect_links() {
        let (topo, channels) = perfect_pair_topo();
        let flows = flows_one_hop(40, 40);
        let frame = AutonomousSlotframe::receiver_based(4, 7, 2);
        let sim = AutonomousSimulator::new(&topo, &channels, &flows, &frame);
        let report = sim.run(&SimConfig { repetitions: 20, ..SimConfig::default() });
        // a 7-slot frame always comes around within a 40-slot deadline
        assert_eq!(report.network_pdr(), 1.0, "{:?}", report.flows);
        // latency is bounded by the slotframe round per hop
        for lat in &report.latencies[0] {
            assert!(*lat <= 7 + 1);
        }
    }

    #[test]
    fn deadlines_shorter_than_the_slotframe_round_miss() {
        let (topo, channels) = perfect_pair_topo();
        // deadline 3 slots, but the receiver only wakes every 7 — most
        // releases miss by construction
        let flows = flows_one_hop(40, 3);
        let frame = AutonomousSlotframe::receiver_based(4, 7, 2);
        let sim = AutonomousSimulator::new(&topo, &channels, &flows, &frame);
        let report = sim.run(&SimConfig { repetitions: 30, ..SimConfig::default() });
        assert!(
            report.network_pdr() < 0.7,
            "tight deadlines should miss under autonomous scheduling, pdr {}",
            report.network_pdr()
        );
    }

    #[test]
    fn contention_for_one_receiver_serializes_packets() {
        // two flows with the SAME next hop: 0→1 and 2→1; both senders wake
        // in node 1's receive slot and contend every round.
        let (topo, channels) = perfect_pair_topo();
        let flows = priority::deadline_monotonic(
            vec![
                Flow::new(
                    FlowId::new(0),
                    Route::new(vec![n(0), n(1)]),
                    Period::from_slots(8).unwrap(),
                    8,
                )
                .unwrap(),
                Flow::new(
                    FlowId::new(1),
                    Route::new(vec![n(2), n(1)]),
                    Period::from_slots(8).unwrap(),
                    8,
                )
                .unwrap(),
            ],
            vec![],
        );
        let frame = AutonomousSlotframe::receiver_based(4, 7, 2);
        let sim = AutonomousSimulator::new(&topo, &channels, &flows, &frame);
        let report = sim.run(&SimConfig { repetitions: 50, ..SimConfig::default() });
        // Node 1 wakes ~once per 8-slot period and decodes at most one
        // frame per wake; with both senders contending at every wake, one
        // of the two packets usually expires. PDR lands strictly between
        // free-flow and starvation.
        let pdr = report.network_pdr();
        assert!(pdr > 0.3 && pdr < 0.95, "contention should cost something: pdr {pdr}");
        // the stronger (nearer) sender captures more often
        let pdrs = report.flow_pdrs();
        assert!(pdrs[0] >= pdrs[1], "capture should favour the strong sender: {pdrs:?}");
    }

    #[test]
    fn determinism() {
        let (topo, channels) = perfect_pair_topo();
        let flows = flows_one_hop(40, 40);
        let frame = AutonomousSlotframe::receiver_based(4, 7, 2);
        let sim = AutonomousSimulator::new(&topo, &channels, &flows, &frame);
        let cfg = SimConfig { repetitions: 10, seed: 5, ..SimConfig::default() };
        assert_eq!(sim.run(&cfg), sim.run(&cfg));
    }
}

#[cfg(test)]
mod multi_hop_tests {
    use super::*;
    use wsan_flow::{priority, Flow, FlowId, Period};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::{ChannelId, Position, Prr, Route};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A 3-hop chain under an autonomous slotframe: the packet must catch
    /// three different receive slots in order.
    #[test]
    fn multi_hop_packets_ride_successive_receive_slots() {
        let mut topo = Topology::new(
            "chain",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(10.0, 0.0, 0.0),
                Position::new(20.0, 0.0, 0.0),
                Position::new(30.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).unwrap();
        for i in 0..3 {
            for ch in &channels {
                topo.set_prr(n(i), n(i + 1), ch, Prr::ONE).unwrap();
                topo.set_prr(n(i + 1), n(i), ch, Prr::ONE).unwrap();
            }
        }
        let flow = Flow::new(
            FlowId::new(0),
            Route::new(vec![n(0), n(1), n(2), n(3)]),
            Period::from_slots(60).unwrap(),
            60,
        )
        .unwrap();
        let flows = priority::deadline_monotonic(vec![flow], vec![]);
        let frame = AutonomousSlotframe::receiver_based(4, 7, 2);
        let sim = AutonomousSimulator::new(&topo, &channels, &flows, &frame);
        let report = sim.run(&SimConfig { repetitions: 15, ..SimConfig::default() });
        // three receive slots always come around within 3 slotframe rounds,
        // far inside the 60-slot deadline
        assert_eq!(report.network_pdr(), 1.0, "{:?}", report.flows);
        // end-to-end latency is at least 3 slots (one per hop)
        for lat in &report.latencies[0] {
            assert!(*lat >= 3, "3 hops need at least 3 slots, got {lat}");
            assert!(*lat <= 3 * 7 + 1, "latency {lat} exceeds 3 slotframe rounds");
        }
    }

    /// Expired packets stop transmitting — they must not keep interfering
    /// after their deadline.
    #[test]
    fn expired_packets_are_dropped() {
        let mut topo =
            Topology::new("exp", vec![Position::new(0.0, 0.0, 0.0), Position::new(10.0, 0.0, 0.0)]);
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 11).unwrap();
        // PRR zero: nothing ever gets through
        let flow = Flow::new(
            FlowId::new(0),
            Route::new(vec![n(0), n(1)]),
            Period::from_slots(10).unwrap(),
            10,
        )
        .unwrap();
        let flows = priority::deadline_monotonic(vec![flow], vec![]);
        let frame = AutonomousSlotframe::receiver_based(2, 7, 1);
        let sim = AutonomousSimulator::new(&topo, &channels, &flows, &frame);
        let report = sim.run(&SimConfig { repetitions: 10, ..SimConfig::default() });
        assert_eq!(report.network_pdr(), 0.0);
        assert_eq!(report.flows[0].released, 10);
    }
}
