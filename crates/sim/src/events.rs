//! The discrete-event simulation core.
//!
//! The slot-stepper (`engine::run_impl`) walks every `(repetition, slot)`
//! pair, which makes its cost proportional to the horizon even when almost
//! every slot is empty. This engine replaces the time axis with a
//! time-ordered queue of events over three component kinds:
//!
//! * **SlotBatch** — a slot of the slotframe holding at least one scheduled
//!   transmission. The transmission component schedules its next busy slot
//!   lazily from [`Simulator::busy_slots`], so idle slots are never visited.
//! * **FaultChange** — an absolute slot at which the fault plan's state
//!   machine changes (a firing or an expiry). Computed up front from the
//!   *resolved* plan ([`FaultPlan::resolve_stochastic`]); between change
//!   slots the injector's answers are constant, so it is only advanced at
//!   those slots.
//! * **RepBoundary** — end-of-repetition bookkeeping: neighbor-discovery
//!   probes, delivery accounting, PRR-window flushes.
//!
//! At equal time the processing order is RepBoundary < FaultChange <
//! SlotBatch: the boundary work of repetition `r` happens before a fault
//! firing at the first slot of repetition `r+1`, which in turn precedes that
//! slot's transmissions — exactly the slot-stepper's order.
//!
//! ## RNG draw-order contract (DESIGN.md §13)
//!
//! Within each visited slot the engine consumes the main RNG (fading and
//! success draws) in precisely the slot-stepper's order. The stepper's only
//! *per-slot* draws — environment-interferer duty gates, spawned-interferer
//! duty gates, and pending stochastic triggers — are replaced by dedicated
//! [`mix64`]-derived streams and a one-shot geometric resolution. Therefore:
//!
//! * when `config.interferers` is empty and the fault plan has no stochastic
//!   triggers and no spawned interferers, *no* engine draws ever happen in an
//!   idle slot, and skipping those slots reproduces the slot-stepper's output
//!   **byte for byte** (report and fault log);
//! * otherwise the engines draw the same distributions from independent
//!   streams and are *statistically* equivalent — pinned by the K-S suite in
//!   `tests/engine_equivalence.rs`.

use crate::engine::{flush, SimMetrics, Simulator, SlotTx};
use crate::faults::{mix64, FaultInjector, FaultKind, FaultLog};
use crate::phy::Phy;
use crate::{
    FlowStats, LinkCondition, PrrSample, SimConfig, SimReport, TraceBuffer, TraceEvent,
    WifiInterferer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use wsan_net::{DirectedLink, NodeId};

/// Salt of the per-interferer environment duty-gate streams.
const ENV_DUTY_SALT: u64 = 0xE57_D077;
/// Salt of the per-event spawned-interferer duty-gate streams.
const SPAWN_DUTY_SALT: u64 = 0x5AB_D077;

/// What a queued event does. Variant order is the tie-break priority at
/// equal time (derived `Ord` is declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// End-of-repetition bookkeeping: probes, accounting, window flush.
    RepBoundary,
    /// The fault plan's state machine changes (a firing or an expiry).
    FaultChange,
    /// A slot holding scheduled transmissions is resolved.
    SlotBatch,
}

impl EventKind {
    /// Display name used by dispatch tracing.
    fn as_str(self) -> &'static str {
        match self {
            EventKind::RepBoundary => "rep_boundary",
            EventKind::FaultChange => "fault_change",
            EventKind::SlotBatch => "slot_batch",
        }
    }
}

/// One queued event. Ordered by `(asn, kind)`; `rep` / `busy_idx` are
/// payload for the component that scheduled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    asn: u64,
    kind: EventKind,
    rep: u32,
    busy_idx: usize,
}

/// Runs `config` on the event queue. Interface twin of
/// `Simulator::run_impl`; the caller has already validated the fault plan.
pub(crate) fn run(
    sim: &Simulator<'_>,
    config: &SimConfig,
    trace: Option<&mut TraceBuffer>,
) -> (SimReport, FaultLog) {
    let metrics = wsan_obs::metrics_enabled().then(SimMetrics::new);
    let _span = wsan_obs::span(
        wsan_obs::Level::Debug,
        "sim.run_events",
        if wsan_obs::enabled(wsan_obs::Level::Debug) {
            vec![
                wsan_obs::kv("seed", config.seed),
                wsan_obs::kv("repetitions", config.repetitions),
                wsan_obs::kv("horizon", sim.horizon),
                wsan_obs::kv("busy_slots", sim.busy_slots.len()),
            ]
        } else {
            Vec::new()
        },
    );
    let horizon = u64::from(sim.horizon);
    let total_slots = u64::from(config.repetitions) * horizon;
    let resolved = config.faults.resolve_stochastic(total_slots);
    let mut run = EventRun {
        sim,
        config,
        phy: Phy::new(sim.topo, config.capture),
        rng: StdRng::seed_from_u64(config.seed),
        injector: FaultInjector::new(&resolved),
        env_streams: (0..config.interferers.len())
            .map(|i| StdRng::seed_from_u64(mix64(config.seed, ENV_DUTY_SALT ^ i as u64)))
            .collect(),
        spawn_streams: resolved
            .events
            .iter()
            .enumerate()
            .map(|(i, e)| {
                matches!(e.kind, FaultKind::SpawnInterferer { .. }).then(|| {
                    StdRng::seed_from_u64(mix64(resolved.seed, SPAWN_DUTY_SALT ^ i as u64))
                })
            })
            .collect(),
        flow_stats: vec![FlowStats::default(); sim.flows.len()],
        window_acc: BTreeMap::new(),
        report: SimReport {
            flows: Vec::new(),
            link_samples: BTreeMap::new(),
            latencies: vec![Vec::new(); sim.flows.len()],
        },
        window: config.window_reps.max(1),
        progress: vec![0u32; sim.total_jobs],
        spawned: Vec::new(),
        env_active: vec![false; config.interferers.len()],
        actives: Vec::new(),
        advanced: Vec::new(),
        interferers: Vec::new(),
        trace,
        metrics,
    };
    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    if config.repetitions > 0 {
        queue.push(Reverse(Event {
            asn: horizon,
            kind: EventKind::RepBoundary,
            rep: 0,
            busy_idx: 0,
        }));
        if let Some(&s) = sim.busy_slots.first() {
            queue.push(Reverse(Event {
                asn: u64::from(s),
                kind: EventKind::SlotBatch,
                rep: 0,
                busy_idx: 0,
            }));
        }
        for asn in resolved.change_slots(total_slots) {
            queue.push(Reverse(Event { asn, kind: EventKind::FaultChange, rep: 0, busy_idx: 0 }));
        }
    }
    while let Some(Reverse(ev)) = queue.pop() {
        // Per-event dispatch tracing (trace-level firehose). Fired inside
        // the `sim.run_events` span, so every dispatch record carries its
        // span id and any enclosing request id — the causal chain from a
        // gateway request down to a single event stays reconstructable from
        // a flight-recorder dump. Never touches the engine RNG.
        if wsan_obs::enabled(wsan_obs::Level::Trace) {
            wsan_obs::event(
                wsan_obs::Level::Trace,
                "wsan_sim::events",
                ev.kind.as_str(),
                &[wsan_obs::kv("asn", ev.asn), wsan_obs::kv("rep", ev.rep)],
            );
        }
        match ev.kind {
            EventKind::FaultChange => run.injector.advance(ev.asn),
            EventKind::SlotBatch => {
                run.slot_batch(ev.rep, ev.busy_idx, ev.asn);
                // the transmission component re-arms itself for its next
                // busy slot (FlowForge ComponentSlot style)
                if ev.busy_idx + 1 < sim.busy_slots.len() {
                    let slot = sim.busy_slots[ev.busy_idx + 1];
                    queue.push(Reverse(Event {
                        asn: u64::from(ev.rep) * horizon + u64::from(slot),
                        kind: EventKind::SlotBatch,
                        rep: ev.rep,
                        busy_idx: ev.busy_idx + 1,
                    }));
                }
            }
            EventKind::RepBoundary => {
                run.rep_boundary(ev.rep);
                let next = ev.rep + 1;
                if next < config.repetitions {
                    run.progress.fill(0);
                    queue.push(Reverse(Event {
                        asn: (u64::from(next) + 1) * horizon,
                        kind: EventKind::RepBoundary,
                        rep: next,
                        busy_idx: 0,
                    }));
                    if let Some(&s) = sim.busy_slots.first() {
                        queue.push(Reverse(Event {
                            asn: u64::from(next) * horizon + u64::from(s),
                            kind: EventKind::SlotBatch,
                            rep: next,
                            busy_idx: 0,
                        }));
                    }
                }
            }
        }
    }
    run.finish()
}

/// The mutable state of one event-driven run. Mirrors the local variables of
/// `run_impl`; splitting it out lets the queue loop above stay readable.
struct EventRun<'s, 'w, 't> {
    sim: &'s Simulator<'w>,
    config: &'s SimConfig,
    phy: Phy<'w>,
    /// Main stream: fading + success draws, in slot-stepper order.
    rng: StdRng,
    /// Driven on the *resolved* plan, only at change slots.
    injector: FaultInjector,
    /// One duty-gate stream per environment interferer.
    env_streams: Vec<StdRng>,
    /// One duty-gate stream per `SpawnInterferer` plan event (by index).
    spawn_streams: Vec<Option<StdRng>>,
    flow_stats: Vec<FlowStats>,
    window_acc: BTreeMap<(DirectedLink, LinkCondition), PrrSample>,
    report: SimReport,
    window: u32,
    progress: Vec<u32>,
    spawned: Vec<WifiInterferer>,
    env_active: Vec<bool>,
    actives: Vec<&'s SlotTx>,
    advanced: Vec<usize>,
    interferers: Vec<NodeId>,
    trace: Option<&'t mut TraceBuffer>,
    metrics: Option<SimMetrics>,
}

impl<'s> EventRun<'s, '_, '_> {
    /// Refills the duty-gate state (spawned and environment interferers)
    /// from the dedicated streams. The slot-stepper draws these from the
    /// injector / main RNG once per slot; under the draw-order contract both
    /// sets are empty and neither engine consumes anything here.
    fn sample_duty_gates(&mut self) {
        self.spawned.clear();
        for (i, w) in self.injector.active_spawns() {
            let stream = self.spawn_streams[i].as_mut().expect("spawn event has a duty stream");
            let u: f64 = stream.gen();
            if u < w.duty_cycle {
                self.spawned.push(w.clone());
            }
        }
        for i in 0..self.config.interferers.len() {
            let u: f64 = self.env_streams[i].gen();
            let duty = u < self.config.interferers[i].duty_cycle;
            self.env_active[i] = duty && !self.injector.interferer_silenced(i);
        }
    }

    /// Resolves every transmission scheduled in busy slot `busy_idx` of
    /// repetition `rep`. Body is the slot-stepper's per-slot block.
    fn slot_batch(&mut self, _rep: u32, busy_idx: usize, asn: u64) {
        let batch_started = self.metrics.is_some().then(std::time::Instant::now);
        let slot = self.sim.busy_slots[busy_idx];
        self.sample_duty_gates();
        // Which scheduled transmissions actually fire this slot?
        // A crashed sender transmits nothing at all.
        self.actives.clear();
        let progress = &self.progress;
        let injector = &self.injector;
        self.actives.extend(
            self.sim.per_slot[slot as usize]
                .iter()
                .filter(|t| progress[t.job_flat] == t.hop_index && !injector.node_down(t.link.tx)),
        );
        // Resolve receptions against the slot-start active set.
        self.advanced.clear();
        for t in &self.actives {
            let channel = self.sim.channels.physical(asn, t.offset);
            self.interferers.clear();
            self.interferers.extend(
                self.actives
                    .iter()
                    .filter(|o| o.offset == t.offset && o.job_flat != t.job_flat)
                    .map(|o| o.link.tx),
            );
            let active_wifi = self
                .config
                .interferers
                .iter()
                .enumerate()
                .filter(|(i, _)| self.env_active[*i])
                .map(|(_, w)| w)
                .chain(self.spawned.iter());
            let external = self.phy.external_mw(t.link.rx, channel, active_wifi);
            // temporal fading perturbs the SIR only when there is
            // interference to compete with
            let fading = if self.interferers.is_empty() && external <= 0.0 {
                0.0
            } else {
                self.config.capture.fading.sample_db(&mut self.rng)
            };
            // A crashed receiver hears (and acknowledges) nothing;
            // a collapsed link caps the base PRR the PHY sees.
            let p = if self.injector.node_down(t.link.rx) {
                0.0
            } else {
                self.phy.success_probability_faulted(
                    t.link.tx,
                    t.link.rx,
                    channel,
                    &self.interferers,
                    external,
                    fading,
                    self.injector.link_prr_override(t.link, channel),
                )
            };
            let success = self.rng.gen::<f64>() < p;
            if let Some(buf) = self.trace.as_deref_mut() {
                buf.push(TraceEvent::Attempt {
                    asn,
                    link: t.link,
                    flow: self
                        .sim
                        .flows
                        .flow(wsan_flow::FlowId::new(self.sim.job_flow[t.job_flat]))
                        .id(),
                    interferers: self.interferers.len(),
                    success,
                });
            }
            let cond = if t.reuse { LinkCondition::Reuse } else { LinkCondition::ContentionFree };
            let sample = self.window_acc.entry((t.link, cond)).or_default();
            sample.sent += 1;
            if success {
                sample.acked += 1;
                self.advanced.push(t.job_flat);
            }
            if let Some(m) = &self.metrics {
                m.tx.inc();
                if success {
                    m.ack.inc();
                } else if !self.interferers.is_empty() || external > 0.0 {
                    // a loss with competing energy in the air
                    m.collisions.inc();
                }
            }
        }
        for i in 0..self.advanced.len() {
            let job = self.advanced[i];
            self.progress[job] += 1;
            // record delivery latency the moment the last hop lands
            if self.progress[job] == self.sim.flow_hops[self.sim.job_flow[job]] {
                let latency = slot - self.sim.job_release[job] + 1;
                self.report.latencies[self.sim.job_flow[job]].push(latency);
                if let Some(m) = &self.metrics {
                    m.deliveries.inc();
                }
                if let Some(buf) = self.trace.as_deref_mut() {
                    buf.push(TraceEvent::Delivered {
                        asn,
                        flow: wsan_flow::FlowId::new(self.sim.job_flow[job]),
                        latency,
                    });
                }
            }
        }
        if let (Some(m), Some(started)) = (&self.metrics, batch_started) {
            m.slot_batch_ns.record_nanos(started.elapsed());
        }
    }

    /// End-of-repetition bookkeeping: discovery probes, delivery accounting,
    /// window flushes. Body is the slot-stepper's per-repetition tail.
    fn rep_boundary(&mut self, rep: u32) {
        // neighbor-discovery probes: contention-free, cycling channels
        for _ in 0..self.config.discovery_probes {
            for i in 0..self.sim.scheduled_links.len() {
                let link = self.sim.scheduled_links[i];
                let channel = self.sim.channels.at((rep as usize + i) % self.sim.channels.len());
                self.sample_duty_gates();
                let wifi_active = self
                    .config
                    .interferers
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| self.env_active[*idx])
                    .map(|(_, w)| w)
                    .chain(self.spawned.iter());
                let external = self.phy.external_mw(link.rx, channel, wifi_active);
                let fading = if external <= 0.0 {
                    0.0
                } else {
                    self.config.capture.fading.sample_db(&mut self.rng)
                };
                // a crashed sender probes nothing; a crashed receiver
                // acknowledges nothing — probes see faults exactly like
                // data slots so the §VI classifier gets honest CF samples
                if self.injector.node_down(link.tx) {
                    continue;
                }
                let p = if self.injector.node_down(link.rx) {
                    0.0
                } else {
                    self.phy.success_probability_faulted(
                        link.tx,
                        link.rx,
                        channel,
                        &[],
                        external,
                        fading,
                        self.injector.link_prr_override(link, channel),
                    )
                };
                let sample =
                    self.window_acc.entry((link, LinkCondition::ContentionFree)).or_default();
                sample.sent += 1;
                if self.rng.gen::<f64>() < p {
                    sample.acked += 1;
                }
            }
        }
        // account deliveries
        for (fi, flow) in self.sim.flows.iter().enumerate() {
            let jobs = self.sim.horizon.div_ceil(flow.period().slots()) as usize;
            for j in 0..jobs {
                self.flow_stats[fi].released += 1;
                if self.progress[self.sim.job_base[fi] + j] >= self.sim.flow_hops[fi] {
                    self.flow_stats[fi].delivered += 1;
                } else {
                    if let Some(m) = &self.metrics {
                        m.expiries.inc();
                    }
                    if let Some(buf) = self.trace.as_deref_mut() {
                        buf.push(TraceEvent::Expired {
                            asn: u64::from(rep) * u64::from(self.sim.horizon)
                                + u64::from(self.sim.horizon - 1),
                            flow: wsan_flow::FlowId::new(fi),
                        });
                    }
                }
            }
        }
        // flush sample windows
        if (rep + 1).is_multiple_of(self.window) {
            flush(&mut self.window_acc, &mut self.report, self.metrics.as_ref());
        }
    }

    fn finish(mut self) -> (SimReport, FaultLog) {
        flush(&mut self.window_acc, &mut self.report, self.metrics.as_ref());
        self.report.flows = self.flow_stats;
        let log = self.injector.into_log();
        if let Some(m) = &self.metrics {
            m.fault_events.add(log.fired() as u64);
            SimMetrics::record_flow_gauges(&self.report);
        }
        if wsan_obs::enabled(wsan_obs::Level::Info) {
            wsan_obs::event(
                wsan_obs::Level::Info,
                "wsan_sim::events",
                "event-driven run complete",
                &[
                    wsan_obs::kv("network_pdr", self.report.network_pdr()),
                    wsan_obs::kv("faults_fired", log.fired()),
                ],
            );
        }
        (self.report, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ordering_is_rep_fault_slot_at_equal_time() {
        let rep = Event { asn: 10, kind: EventKind::RepBoundary, rep: 0, busy_idx: 0 };
        let fault = Event { asn: 10, kind: EventKind::FaultChange, rep: 0, busy_idx: 0 };
        let slot = Event { asn: 10, kind: EventKind::SlotBatch, rep: 1, busy_idx: 0 };
        let earlier = Event { asn: 9, kind: EventKind::SlotBatch, rep: 0, busy_idx: 3 };
        assert!(earlier < rep, "time dominates kind");
        assert!(rep < fault && fault < slot);
        let mut heap =
            BinaryHeap::from([Reverse(slot), Reverse(rep), Reverse(fault), Reverse(earlier)]);
        let order: Vec<EventKind> =
            std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e.kind)).collect();
        assert_eq!(
            order,
            vec![
                EventKind::SlotBatch,
                EventKind::RepBoundary,
                EventKind::FaultChange,
                EventKind::SlotBatch
            ]
        );
    }
}
