//! Simulation outputs: delivery ratios and per-link condition statistics.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wsan_net::DirectedLink;

/// Whether a transmission's slot shares its channel with other scheduled
/// transmissions.
///
/// The label comes from the *schedule*, not the runtime: a node knows from
/// the slotframe which of its cells are reuse cells, exactly as in §VI of
/// the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkCondition {
    /// The cell holds a single transmission.
    ContentionFree,
    /// The cell is shared under channel reuse.
    Reuse,
}

/// One PRR sample: transmissions attempted and acknowledged within one
/// sample window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrrSample {
    /// Packets transmitted.
    pub sent: u32,
    /// Packets acknowledged.
    pub acked: u32,
}

impl PrrSample {
    /// The packet reception ratio of the window; `None` when nothing was
    /// sent.
    pub fn prr(&self) -> Option<f64> {
        if self.sent == 0 {
            None
        } else {
            Some(f64::from(self.acked) / f64::from(self.sent))
        }
    }
}

/// Delivery accounting of one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Packets released (jobs × repetitions).
    pub released: u32,
    /// Packets delivered to the destination within the deadline.
    pub delivered: u32,
}

impl FlowStats {
    /// Packet Delivery Ratio of the flow.
    pub fn pdr(&self) -> f64 {
        if self.released == 0 {
            0.0
        } else {
            f64::from(self.delivered) / f64::from(self.released)
        }
    }
}

/// The full output of a simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-flow delivery statistics, indexed by flow priority position.
    pub flows: Vec<FlowStats>,
    /// Per-(link, condition) PRR samples, one per sample window in which the
    /// link transmitted under that condition.
    pub link_samples: BTreeMap<(DirectedLink, LinkCondition), Vec<PrrSample>>,
    /// Delivery latencies (slots from release to the delivering slot,
    /// inclusive) of every delivered packet, grouped per flow. Undelivered
    /// packets contribute nothing here — they are visible in
    /// [`FlowStats::pdr`].
    pub latencies: Vec<Vec<u32>>,
}

impl SimReport {
    /// PDR of each flow, in priority order.
    pub fn flow_pdrs(&self) -> Vec<f64> {
        self.flows.iter().map(FlowStats::pdr).collect()
    }

    /// Network-wide PDR: delivered / released over all flows.
    pub fn network_pdr(&self) -> f64 {
        let released: u32 = self.flows.iter().map(|f| f.released).sum();
        let delivered: u32 = self.flows.iter().map(|f| f.delivered).sum();
        if released == 0 {
            0.0
        } else {
            f64::from(delivered) / f64::from(released)
        }
    }

    /// The worst per-flow PDR (the paper's headline reliability number).
    ///
    /// A report with no flows has delivered nothing and returns 0.0,
    /// consistent with [`SimReport::network_pdr`] and [`FlowStats::pdr`] on
    /// empty input.
    pub fn worst_flow_pdr(&self) -> f64 {
        self.flow_pdrs().into_iter().reduce(f64::min).unwrap_or(0.0)
    }

    /// PRR values (one per window) of `link` under `condition`, skipping
    /// windows in which the link never transmitted.
    pub fn prr_distribution(&self, link: DirectedLink, condition: LinkCondition) -> Vec<f64> {
        self.link_samples
            .get(&(link, condition))
            .map(|samples| samples.iter().filter_map(PrrSample::prr).collect())
            .unwrap_or_default()
    }

    /// Links that have at least one sample under both conditions — the
    /// candidate set for the reuse-degradation classifier.
    pub fn links_with_reuse(&self) -> Vec<DirectedLink> {
        let mut out = Vec::new();
        for (link, cond) in self.link_samples.keys() {
            if *cond == LinkCondition::Reuse && !out.contains(link) {
                out.push(*link);
            }
        }
        out
    }

    /// Mean delivery latency of `flow` in slots, over delivered packets.
    pub fn mean_latency(&self, flow: usize) -> Option<f64> {
        let samples = self.latencies.get(flow)?;
        if samples.is_empty() {
            None
        } else {
            Some(samples.iter().map(|&v| f64::from(v)).sum::<f64>() / samples.len() as f64)
        }
    }

    /// Worst observed delivery latency of `flow` in slots.
    pub fn max_latency(&self, flow: usize) -> Option<u32> {
        self.latencies.get(flow)?.iter().max().copied()
    }

    /// Overall PRR of `link` under `condition` across all windows.
    pub fn overall_prr(&self, link: DirectedLink, condition: LinkCondition) -> Option<f64> {
        let samples = self.link_samples.get(&(link, condition))?;
        let sent: u32 = samples.iter().map(|s| s.sent).sum();
        let acked: u32 = samples.iter().map(|s| s.acked).sum();
        if sent == 0 {
            None
        } else {
            Some(f64::from(acked) / f64::from(sent))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::NodeId;

    fn link(a: usize, b: usize) -> DirectedLink {
        DirectedLink::new(NodeId::new(a), NodeId::new(b))
    }

    #[test]
    fn prr_sample_ratios() {
        assert_eq!(PrrSample { sent: 0, acked: 0 }.prr(), None);
        assert_eq!(PrrSample { sent: 4, acked: 3 }.prr(), Some(0.75));
    }

    #[test]
    fn flow_stats_pdr() {
        assert_eq!(FlowStats { released: 0, delivered: 0 }.pdr(), 0.0);
        assert_eq!(FlowStats { released: 10, delivered: 9 }.pdr(), 0.9);
    }

    #[test]
    fn report_aggregates() {
        let r = SimReport {
            flows: vec![
                FlowStats { released: 10, delivered: 10 },
                FlowStats { released: 10, delivered: 5 },
            ],
            ..SimReport::default()
        };
        assert_eq!(r.network_pdr(), 0.75);
        assert_eq!(r.worst_flow_pdr(), 0.5);
        assert_eq!(r.flow_pdrs(), vec![1.0, 0.5]);
    }

    /// Regression: the worst-flow fold used to start from `f64::INFINITY`
    /// and clamp with `.min(1.0)`, so a report with zero flows claimed a
    /// perfect worst-flow PDR of 1.0.
    #[test]
    fn empty_report_has_zero_worst_flow_pdr() {
        let r = SimReport::default();
        assert_eq!(r.worst_flow_pdr(), 0.0);
        assert_eq!(r.network_pdr(), 0.0, "worst_flow_pdr must agree with network_pdr on empty");
    }

    #[test]
    fn link_queries() {
        let mut r = SimReport::default();
        r.link_samples.insert(
            (link(0, 1), LinkCondition::Reuse),
            vec![PrrSample { sent: 2, acked: 1 }, PrrSample { sent: 0, acked: 0 }],
        );
        r.link_samples.insert(
            (link(0, 1), LinkCondition::ContentionFree),
            vec![PrrSample { sent: 4, acked: 4 }],
        );
        r.link_samples.insert(
            (link(2, 3), LinkCondition::ContentionFree),
            vec![PrrSample { sent: 4, acked: 2 }],
        );
        assert_eq!(r.prr_distribution(link(0, 1), LinkCondition::Reuse), vec![0.5]);
        assert_eq!(r.links_with_reuse(), vec![link(0, 1)]);
        assert_eq!(r.overall_prr(link(0, 1), LinkCondition::Reuse), Some(0.5));
        assert_eq!(r.overall_prr(link(2, 3), LinkCondition::Reuse), None);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn latency_summaries() {
        let r = SimReport { latencies: vec![vec![3, 5, 4], vec![]], ..SimReport::default() };
        assert!((r.mean_latency(0).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(r.max_latency(0), Some(5));
        assert_eq!(r.mean_latency(1), None);
        assert_eq!(r.max_latency(1), None);
        assert_eq!(r.mean_latency(9), None);
    }
}
