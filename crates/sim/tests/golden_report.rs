//! Golden-output pin for the simulation engine.
//!
//! The per-slot run loop is performance-sensitive and gets refactored
//! (scratch-buffer reuse, instrumentation); this test freezes the exact
//! serialized report of a seeded run so any behavioural drift — an RNG
//! draw added, removed, or reordered — fails loudly. The scenario
//! deliberately exercises every hot path: channel reuse cells, WiFi
//! interferers, discovery probes, a mid-run link collapse, a node crash,
//! and roaming (spawned) WiFi from the fault injector.
//!
//! If an *intentional* semantic change invalidates the digest, rerun with
//! `WSAN_GOLDEN_DUMP=1 cargo test -p wsan-sim --test golden_report -- --nocapture`
//! and update the constant after reviewing the diff.

use wsan_core::Scheduler;
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, NodeId, Position, Prr};
use wsan_sim::{FaultPlan, SimConfig, Simulator, WifiInterferer};

/// FNV-1a over the serialized report: stable, dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn seeded_run_matches_golden_digest() {
    let topo = testbeds::wustl(5);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = wsan_core::NetworkModel::new(&topo, &channels);
    let fsc = FlowSetConfig::new(12, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
    let flows = FlowSetGenerator::new(0xFEED).generate(&comm, &fsc).unwrap();
    let schedule = wsan_core::ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
    let victim = schedule.entries()[0].tx.link;
    let faults = FaultPlan::new(0xBAD)
        .collapse_link_at(u64::from(schedule.horizon()) * 10, victim, 0.0)
        .crash_at(u64::from(schedule.horizon()) * 20, NodeId::new(3))
        .spawn_wifi_at(
            u64::from(schedule.horizon()) * 5,
            WifiInterferer::wifi_channel_1(Position::new(30.0, 30.0, 0.0), 10.0, 0.3),
            None,
        );
    let config = SimConfig {
        seed: 42,
        repetitions: 40,
        window_reps: 5,
        discovery_probes: 1,
        interferers: vec![WifiInterferer::wifi_channel_1(Position::new(10.0, 5.0, 0.0), 10.0, 0.2)],
        faults,
        ..SimConfig::default()
    };
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let (report, log) = sim.run_faulted(&config);
    let json = serde_json::to_string(&report).unwrap();
    let digest = fnv1a(json.as_bytes());
    if std::env::var("WSAN_GOLDEN_DUMP").is_ok() {
        println!("json bytes: {}", json.len());
        println!("digest: {digest:#018x}");
        println!("faults fired: {}", log.fired());
    }
    assert_eq!(
        digest, GOLDEN_DIGEST,
        "seeded simulation output drifted from the pinned golden report \
         (rerun with WSAN_GOLDEN_DUMP=1 to inspect)"
    );
    // a second run of the same simulator must also be identical
    let (again, _) = sim.run_faulted(&config);
    assert_eq!(report, again);
}

const GOLDEN_DIGEST: u64 = 0x4bc0_51a1_e997_47a6;
