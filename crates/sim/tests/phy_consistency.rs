//! Statistical consistency of the simulator with the planning data: in the
//! absence of reuse and interference, a link's simulated PRR converges to
//! its table PRR — the property that makes scheduler decisions and
//! simulated outcomes commensurable.

use wsan_core::{NetworkModel, NoReuse, Scheduler};
use wsan_flow::{priority, Flow, FlowId, Period};
use wsan_net::propagation::PropagationModel;
use wsan_net::{ChannelId, NodeId, Position, Prr, Route, Topology};
use wsan_sim::{LinkCondition, SimConfig, Simulator};

#[test]
fn simulated_prr_matches_table_prr_without_interference() {
    let n = |i: usize| NodeId::new(i);
    let mut topo = Topology::new(
        "consistency",
        vec![Position::new(0.0, 0.0, 0.0), Position::new(10.0, 0.0, 0.0)],
    );
    topo.set_propagation_model(PropagationModel::default());
    let channels = ChannelId::range(11, 14).unwrap();
    // distinct PRR per channel to check the hopping average
    let per_channel = [0.95, 0.85, 0.75, 0.65];
    for (ch, p) in channels.iter().zip(per_channel) {
        topo.set_prr(n(0), n(1), ch, Prr::new(p).unwrap()).unwrap();
        topo.set_prr(n(1), n(0), ch, Prr::new(p).unwrap()).unwrap();
    }
    // Period 5 is coprime with the 4-channel set, so the cell's physical
    // channel rotates through all four across repetitions. (With a period
    // divisible by |M|, `(ASN + offset) mod |M|` pins a periodic cell to
    // one channel forever — real TSCH deployments pick coprime slotframe
    // lengths for exactly this reason.)
    let flow =
        Flow::new(FlowId::new(0), Route::new(vec![n(0), n(1)]), Period::from_slots(5).unwrap(), 5)
            .unwrap();
    let flows = priority::deadline_monotonic(vec![flow], vec![]);
    let model = NetworkModel::new(&topo, &channels);
    let schedule = NoReuse::new()
        .schedule_with(&flows, &model, &wsan_core::SchedulerConfig { retries: false })
        .unwrap();
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let report = sim.run(&SimConfig {
        repetitions: 4000,
        window_reps: 4000,
        discovery_probes: 0,
        ..SimConfig::default()
    });
    // the single scheduled slot hops over all four channels uniformly, so
    // the long-run PRR is the per-channel mean
    let expected = per_channel.iter().sum::<f64>() / 4.0;
    let measured = report
        .overall_prr(wsan_net::DirectedLink::new(n(0), n(1)), LinkCondition::ContentionFree)
        .expect("samples exist");
    assert!(
        (measured - expected).abs() < 0.02,
        "simulated PRR {measured:.3} should match the hopping mean {expected:.3}"
    );
    // PDR equals PRR for a single-link flow without retries
    assert!((report.network_pdr() - expected).abs() < 0.02);
}
