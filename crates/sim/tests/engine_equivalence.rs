//! Oracle-equivalence suite: the event-driven engine against the
//! slot-stepper.
//!
//! The slot-stepper is the golden oracle (its own output is pinned by
//! `golden_report.rs`). This suite pins the event engine to it along the
//! draw-order contract of DESIGN.md §13:
//!
//! * **inside the contract** (no environment interferers, no stochastic
//!   fault triggers, no spawned interferers) the engines must agree **byte
//!   for byte** — reports, fault logs, and traces — across dense, sparse,
//!   faulted, and traced scenarios, plus randomized small topologies;
//! * **outside the contract** the engines draw from independent streams and
//!   must agree *statistically*: a two-sample K-S test on pooled delivery
//!   latencies accepts, and mean PDRs coincide closely.

use proptest::prelude::*;
use wsan_core::{NetworkModel, NoReuse, Scheduler};
use wsan_flow::{
    priority, Flow, FlowId, FlowSetConfig, FlowSetGenerator, Period, PeriodRange, TrafficPattern,
};
use wsan_net::propagation::PropagationModel;
use wsan_net::{testbeds, ChannelId, ChannelSet, NodeId, Position, Prr, Route, Topology};
use wsan_sim::{
    FaultEvent, FaultKind, FaultPlan, FaultTrigger, SimConfig, SimEngine, Simulator, TraceBuffer,
    WifiInterferer,
};
use wsan_stats::ks::{two_sample, KsOutcome};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// The dense catalog scenario: the WUSTL synthetic testbed under
/// conservative reuse, every slot of the frame in use somewhere.
fn dense() -> (Topology, ChannelSet, wsan_flow::FlowSet, wsan_core::Schedule) {
    let topo = testbeds::wustl(5);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let fsc = FlowSetConfig::new(12, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
    let flows = FlowSetGenerator::new(0xFEED).generate(&comm, &fsc).unwrap();
    let schedule = wsan_core::ReuseConservatively::new(2).schedule(&flows, &model).unwrap();
    (topo, channels, flows, schedule)
}

/// The sparse catalog scenario: two short flows with 512-slot periods, so
/// only a handful of the 512 slots per frame hold transmissions.
fn sparse() -> (Topology, ChannelSet, wsan_flow::FlowSet) {
    let mut topo = Topology::new(
        "sparse",
        vec![
            Position::new(0.0, 0.0, 0.0),
            Position::new(8.0, 0.0, 0.0),
            Position::new(60.0, 0.0, 0.0),
            Position::new(68.0, 0.0, 0.0),
        ],
    );
    topo.set_propagation_model(PropagationModel::default());
    let channels = ChannelId::range(11, 12).unwrap();
    for (a, b) in [(0, 1), (2, 3)] {
        for ch in &channels {
            topo.set_prr(n(a), n(b), ch, Prr::new(0.8).unwrap()).unwrap();
            topo.set_prr(n(b), n(a), ch, Prr::new(0.8).unwrap()).unwrap();
        }
    }
    let flows = priority::deadline_monotonic(
        vec![
            Flow::new(
                FlowId::new(0),
                Route::new(vec![n(0), n(1)]),
                Period::from_slots(512).unwrap(),
                512,
            )
            .unwrap(),
            Flow::new(
                FlowId::new(1),
                Route::new(vec![n(2), n(3)]),
                Period::from_slots(512).unwrap(),
                512,
            )
            .unwrap(),
        ],
        vec![],
    );
    (topo, channels, flows)
}

/// A contract-respecting fault plan: scheduled triggers only, no spawned
/// interferers — crashes and collapses with finite and permanent durations.
fn contract_faults(horizon: u32, victim: wsan_net::DirectedLink) -> FaultPlan {
    FaultPlan::new(0xBAD).collapse_link_at(u64::from(horizon) * 4, victim, 0.1).with(FaultEvent {
        trigger: FaultTrigger::AtSlot(u64::from(horizon) * 8),
        duration: Some(u64::from(horizon) * 6),
        kind: FaultKind::CrashNode { node: n(3) },
    })
}

#[test]
fn dense_contract_run_is_byte_identical() {
    let (topo, channels, flows, schedule) = dense();
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let cfg = SimConfig { seed: 42, repetitions: 30, window_reps: 5, ..SimConfig::default() };
    let oracle = sim.run(&cfg);
    let events = sim.run_events(&cfg);
    assert_eq!(oracle, events, "dense contract scenario must match byte for byte");
    // and through the dispatching API
    assert_eq!(
        sim.run_with(SimEngine::SlotStepper, &cfg),
        sim.run_with(SimEngine::EventDriven, &cfg)
    );
}

#[test]
fn sparse_contract_run_is_byte_identical() {
    let (topo, channels, flows) = sparse();
    let model = NetworkModel::new(&topo, &channels);
    let schedule = NoReuse::new().schedule(&flows, &model).unwrap();
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let cfg = SimConfig { seed: 7, repetitions: 200, window_reps: 10, ..SimConfig::default() };
    assert_eq!(sim.run(&cfg), sim.run_events(&cfg), "sparse scenario must match byte for byte");
}

#[test]
fn scheduled_faults_match_including_fault_log() {
    let (topo, channels, flows, schedule) = dense();
    let victim = schedule.entries()[0].tx.link;
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let cfg = SimConfig {
        seed: 9,
        repetitions: 30,
        window_reps: 5,
        faults: contract_faults(schedule.horizon(), victim),
        ..SimConfig::default()
    };
    let (oracle, oracle_log) = sim.try_run_faulted(&cfg).unwrap();
    let (events, events_log) = sim.try_run_events_faulted(&cfg).unwrap();
    assert_eq!(oracle, events, "scheduled-fault reports must match byte for byte");
    assert_eq!(
        oracle_log, events_log,
        "fault logs must match, including firing and clearing slots"
    );
    assert!(oracle_log.fired() >= 2, "the plan's events must actually fire");
}

#[test]
fn traced_runs_match_event_for_event() {
    let (topo, channels, flows, schedule) = dense();
    let victim = schedule.entries()[0].tx.link;
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let cfg = SimConfig {
        seed: 11,
        repetitions: 20,
        window_reps: 5,
        faults: contract_faults(schedule.horizon(), victim),
        ..SimConfig::default()
    };
    let mut oracle_buf = TraceBuffer::with_capacity(1 << 20);
    let mut events_buf = TraceBuffer::with_capacity(1 << 20);
    let (oracle, _) =
        sim.try_run_traced_with(SimEngine::SlotStepper, &cfg, &mut oracle_buf).unwrap();
    let (events, _) =
        sim.try_run_traced_with(SimEngine::EventDriven, &cfg, &mut events_buf).unwrap();
    assert_eq!(oracle, events);
    assert!(!oracle_buf.events().is_empty());
    assert_eq!(oracle_buf, events_buf, "traces must match event for event, ASNs included");
}

#[test]
fn zero_repetitions_agree() {
    let (topo, channels, flows, schedule) = dense();
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let cfg = SimConfig { seed: 1, repetitions: 0, ..SimConfig::default() };
    assert_eq!(sim.run(&cfg), sim.run_events(&cfg));
}

/// Outside the contract the engines use independent RNG streams for the
/// duty gates and stochastic triggers, so outputs differ byte-wise but must
/// agree in distribution: pooled delivery latencies pass a two-sample K-S
/// test and mean PDRs coincide.
#[test]
fn outside_contract_is_statistically_equivalent() {
    let (topo, channels, flows, schedule) = dense();
    let sim = Simulator::new(&topo, &channels, &flows, &schedule);
    let spawn = WifiInterferer::wifi_channel_1(Position::new(30.0, 30.0, 0.0), 10.0, 0.3);
    let mut oracle_lat: Vec<f64> = Vec::new();
    let mut events_lat: Vec<f64> = Vec::new();
    let mut oracle_pdr = 0.0;
    let mut events_pdr = 0.0;
    let seeds = 8u64;
    for seed in 0..seeds {
        let faults = FaultPlan::new(seed ^ 0xF0)
            .spawn_wifi_at(u64::from(schedule.horizon()) * 3, spawn.clone(), None)
            .with(FaultEvent {
                trigger: FaultTrigger::Stochastic { per_slot: 0.001 },
                duration: Some(u64::from(schedule.horizon()) * 5),
                kind: FaultKind::CrashNode { node: n(7) },
            });
        let cfg = SimConfig {
            seed,
            repetitions: 25,
            window_reps: 5,
            interferers: vec![WifiInterferer::wifi_channel_1(
                Position::new(10.0, 5.0, 0.0),
                10.0,
                0.2,
            )],
            faults,
            ..SimConfig::default()
        };
        let oracle = sim.run(&cfg);
        let events = sim.run_events(&cfg);
        oracle_lat.extend(oracle.latencies.iter().flatten().map(|&l| f64::from(l)));
        events_lat.extend(events.latencies.iter().flatten().map(|&l| f64::from(l)));
        oracle_pdr += oracle.network_pdr() / seeds as f64;
        events_pdr += events.network_pdr() / seeds as f64;
    }
    assert!(oracle_lat.len() > 500 && events_lat.len() > 500, "need real sample sizes");
    let ks = two_sample(&oracle_lat, &events_lat).unwrap();
    assert_eq!(
        ks.outcome(0.01),
        KsOutcome::Accept,
        "latency distributions must be K-S-indistinguishable: D={} p={}",
        ks.statistic(),
        ks.p_value()
    );
    assert!(
        (oracle_pdr - events_pdr).abs() < 0.02,
        "mean PDRs must coincide: oracle {oracle_pdr} events {events_pdr}"
    );
}

/// Strategy for small random contract scenarios: a chain of 3–6 nodes with
/// randomized spacing and per-link PRR, and 1–3 flows over prefixes of the
/// chain with assorted periods.
fn arb_scenario() -> impl Strategy<Value = (u64, usize, u8, u8)> {
    // (seed, node count, prr decile 5..=10, period selector)
    (0u64..1 << 16, 3usize..=6, 5u8..=10, 0u8..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Inside the contract, every random small scenario agrees byte for
    /// byte between the two engines.
    #[test]
    fn random_contract_scenarios_are_byte_identical(
        (seed, nodes, prr_decile, psel) in arb_scenario()
    ) {
        let spacing = 6.0 + (seed % 5) as f64;
        let mut topo = Topology::new(
            "prop",
            (0..nodes).map(|i| Position::new(spacing * i as f64, 0.0, 0.0)).collect(),
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).unwrap();
        let prr = Prr::new(f64::from(prr_decile) / 10.0).unwrap();
        for a in 0..nodes - 1 {
            for ch in &channels {
                topo.set_prr(n(a), n(a + 1), ch, prr).unwrap();
                topo.set_prr(n(a + 1), n(a), ch, prr).unwrap();
            }
        }
        let period = [16u32, 20, 32, 40][psel as usize];
        let flow_count = 1 + (seed as usize % 3).min(nodes - 2);
        let mut raw = Vec::new();
        for f in 0..flow_count {
            let len = 2 + (seed as usize + f) % (nodes - 1);
            let route: Vec<NodeId> = (0..len.min(nodes)).map(n).collect();
            raw.push(
                Flow::new(
                    FlowId::new(f),
                    Route::new(route),
                    Period::from_slots(period).unwrap(),
                    period,
                )
                .unwrap(),
            );
        }
        let flows = priority::deadline_monotonic(raw, vec![]);
        let model = NetworkModel::new(&topo, &channels);
        let Ok(schedule) = NoReuse::new().schedule(&flows, &model) else {
            // an unschedulable draw is not a property violation
            return Ok(());
        };
        let sim = Simulator::new(&topo, &channels, &flows, &schedule);
        let cfg = SimConfig { seed, repetitions: 15, window_reps: 4, ..SimConfig::default() };
        prop_assert_eq!(sim.run(&cfg), sim.run_events(&cfg));
        // …and with a scheduled fault plan in play
        let faulted = SimConfig {
            faults: FaultPlan::new(seed).crash_at(u64::from(schedule.horizon()) * 5, n(nodes - 1)),
            ..cfg
        };
        let (ro, lo) = sim.try_run_faulted(&faulted).unwrap();
        let (re, le) = sim.try_run_events_faulted(&faulted).unwrap();
        prop_assert_eq!(ro, re);
        prop_assert_eq!(lo, le);
    }
}
