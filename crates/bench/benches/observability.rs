//! Overhead of the observability layer on the hot simulation path.
//!
//! `sim/uninstrumented` is the stack as shipped: no subscriber installed,
//! metrics disabled — every instrumentation site reduces to one relaxed
//! atomic load. The acceptance bar is that `sim/null-subscriber` (an
//! installed but always-off subscriber, metrics still disabled) stays
//! within 5% of it in release mode. `sim/metrics-enabled` shows what the
//! counters and histograms cost when they actually record, and
//! `sim/flightrec-armed` what the seqlock ring adds on top when every
//! trace-level record is also captured.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use wsan_core::NetworkModel;
use wsan_expr::Algorithm;
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr};
use wsan_sim::{SimConfig, Simulator};

fn bench_observability(c: &mut Criterion) {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(40, PeriodRange::new(-1, 0).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(7).generate(&comm, &cfg).expect("generation");
    let schedule = Algorithm::Rc { rho_t: 2 }.build().schedule(&set, &model).expect("schedulable");
    let sim = Simulator::new(&topo, &channels, &set, &schedule);
    let sim_cfg = SimConfig { repetitions: 50, ..SimConfig::default() };

    wsan_obs::uninstall();
    wsan_obs::set_metrics_enabled(false);
    c.bench_function("sim/uninstrumented", |b| b.iter(|| sim.run(&sim_cfg)));

    wsan_obs::install(Arc::new(wsan_obs::NullSubscriber));
    c.bench_function("sim/null-subscriber", |b| b.iter(|| sim.run(&sim_cfg)));
    wsan_obs::uninstall();

    wsan_obs::set_metrics_enabled(true);
    c.bench_function("sim/metrics-enabled", |b| b.iter(|| sim.run(&sim_cfg)));
    wsan_obs::set_metrics_enabled(false);

    wsan_obs::flightrec::arm(4096, wsan_obs::Level::Trace);
    c.bench_function("sim/flightrec-armed", |b| b.iter(|| sim.run(&sim_cfg)));
    wsan_obs::flightrec::disarm();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_observability
}
criterion_main!(benches);
