//! Criterion benches of the campaign engine: the same smoke-scale sweep run
//! sequentially, in parallel (4 pinned workers, regardless of the host's
//! core count), and resumed from a complete manifest. The parallel variant
//! should beat sequential on a multi-core host; the resumed variant only
//! replays checkpoints and should beat both by a wide margin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsan_expr::campaign::CampaignConfig;
use wsan_expr::campaigns::{run_named, SweepOptions};

fn opts() -> SweepOptions {
    SweepOptions { sets: 4, seed: 11, ..SweepOptions::default() }
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign/smoke");

    group.bench_with_input(BenchmarkId::new("smoke", "sequential"), &(), |b, ()| {
        b.iter(|| {
            run_named("smoke", &opts(), &CampaignConfig { jobs: 1, ..Default::default() })
                .expect("smoke campaign runs")
        })
    });

    group.bench_with_input(BenchmarkId::new("smoke", "parallel-4"), &(), |b, ()| {
        b.iter(|| {
            run_named("smoke", &opts(), &CampaignConfig { jobs: 4, ..Default::default() })
                .expect("smoke campaign runs")
        })
    });

    // pre-populate a manifest once; every iteration then replays it
    let dir = std::env::temp_dir().join("wsan-campaign-bench");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest = dir.join("smoke.manifest.jsonl");
    run_named(
        "smoke",
        &opts(),
        &CampaignConfig { jobs: 1, manifest: Some(manifest.clone()), ..Default::default() },
    )
    .expect("checkpointing run");
    group.bench_with_input(BenchmarkId::new("smoke", "resumed"), &(), |b, ()| {
        b.iter(|| {
            run_named(
                "smoke",
                &opts(),
                &CampaignConfig {
                    jobs: 1,
                    manifest: Some(manifest.clone()),
                    resume: true,
                    ..Default::default()
                },
            )
            .expect("resumed campaign runs")
        })
    });
    let _ = std::fs::remove_dir_all(dir);

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaign
}
criterion_main!(benches);
