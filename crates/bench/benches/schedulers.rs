//! Criterion benches of the three schedulers (the Fig. 6 companion):
//! scheduling time on the Indriya topology as the traffic load grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsan_core::NetworkModel;
use wsan_expr::Algorithm;
use wsan_flow::{FlowSet, FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr, Topology};

fn workload(topo: &Topology, flows: usize, seed: u64) -> Option<(FlowSet, NetworkModel)> {
    let channels = ChannelId::all().take(5);
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(topo, &channels);
    let cfg =
        FlowSetConfig::new(flows, PeriodRange::new(0, 2).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(seed).generate(&comm, &cfg).ok()?;
    Some((set, model))
}

fn bench_schedulers(c: &mut Criterion) {
    let topo = testbeds::indriya(1);
    let mut group = c.benchmark_group("schedule");
    for flows in [40usize, 80, 120] {
        let Some((set, model)) = workload(&topo, flows, 42) else {
            continue;
        };
        for algo in Algorithm::paper_suite() {
            let scheduler = algo.build();
            // skip algorithm/load combos that are unschedulable; the bench
            // measures successful schedule construction
            if scheduler.schedule(&set, &model).is_err() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(algo.to_string(), flows), &flows, |b, _| {
                b.iter(|| scheduler.schedule(&set, &model).expect("schedulable"))
            });
        }
    }
    group.finish();
}

fn bench_network_model(c: &mut Criterion) {
    let topo = testbeds::indriya(1);
    let channels = ChannelId::all().take(5);
    c.bench_function("network_model/indriya-5ch", |b| {
        b.iter(|| NetworkModel::new(&topo, &channels))
    });
    c.bench_function("comm_graph/indriya-5ch", |b| {
        b.iter(|| topo.comm_graph(&channels, Prr::new(0.9).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_schedulers, bench_network_model
}
criterion_main!(benches);
