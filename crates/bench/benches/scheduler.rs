//! Criterion benches of the scheduler hot path (PR 5): the optimized
//! NR/RA/RC engines against the slot-by-slot `wsan_core::reference`
//! baselines, over the tracked scenarios of [`wsan_bench::sched`] — both
//! testbed scales, sparse and dense loads.
//!
//! The headline series is `sched/<scenario>/RC` vs
//! `sched/<scenario>/RC-ref` on the dense scenarios: the word-level
//! findSlot + rank-cached laxity path must hold a ≥ 2x advantage there.
//!
//! `WSAN_BENCH_SAMPLES` overrides the per-benchmark sample count (ci.sh's
//! smoke step sets it to 2 so the bench compiles-and-runs in seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsan_bench::sched::{contenders, scenarios};

fn sample_size() -> usize {
    std::env::var("WSAN_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(20)
}

fn bench_sched(c: &mut Criterion) {
    for sc in scenarios() {
        let Some((flows, model)) = sc.build(42) else {
            continue;
        };
        let mut group = c.benchmark_group(&format!("sched/{}", sc.name));
        for (name, scheduler) in contenders() {
            // skip combos the scheduler cannot satisfy (e.g. NR at dense
            // loads); the bench measures successful schedule construction
            if scheduler.schedule(&flows, &model).is_err() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(name, sc.flows), &sc.flows, |b, _| {
                b.iter(|| scheduler.schedule(&flows, &model).expect("schedulable"))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(sample_size());
    targets = bench_sched
}
criterion_main!(benches);
