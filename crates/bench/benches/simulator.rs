//! Criterion benches of the TSCH simulator and the statistics substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use wsan_core::NetworkModel;
use wsan_expr::Algorithm;
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr};
use wsan_sim::{SimConfig, Simulator};
use wsan_stats::ks::two_sample;

fn bench_simulator(c: &mut Criterion) {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(40, PeriodRange::new(-1, 0).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(7).generate(&comm, &cfg).expect("generation");
    let schedule = Algorithm::Ra { rho: 2 }.build().schedule(&set, &model).expect("schedulable");
    let sim = Simulator::new(&topo, &channels, &set, &schedule);
    c.bench_function("simulate/wustl-40flows-100reps", |b| {
        b.iter(|| sim.run(&SimConfig { repetitions: 100, ..SimConfig::default() }))
    });
}

fn bench_ks(c: &mut Criterion) {
    let a: Vec<f64> = (0..18).map(|i| 0.9 + 0.005 * (i % 7) as f64).collect();
    let d: Vec<f64> = (0..18).map(|i| 0.6 + 0.01 * (i % 5) as f64).collect();
    c.bench_function("ks/two_sample-18x18", |b| b.iter(|| two_sample(&a, &d).unwrap()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simulator, bench_ks
}
criterion_main!(benches);
