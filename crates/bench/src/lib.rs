//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each `src/bin/figN*.rs` binary reproduces one or more figures of the
//! paper's evaluation: it prints the same series the figure plots and dumps
//! a machine-readable copy under `results/`. All binaries accept:
//!
//! * `--sets N` — flow sets per configuration point (default: the paper's
//!   100; lower it for a quick pass),
//! * `--seed S` — base seed (default 1),
//! * `--quick` — shorthand for a fast smoke-scale run,
//! * `--jobs N` — campaign worker threads (0 = one per core),
//! * `--resume` — resume from the figure's checkpoint manifest instead of
//!   recomputing finished sweep points,
//! * `--engine slots|events` — simulation core for the campaigns that
//!   execute simulator runs (schedulability-only figures ignore it).
//!
//! Binaries exit non-zero with a diagnostic on malformed arguments or
//! failed runs instead of panicking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Why a figure binary stopped.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// Malformed command-line arguments.
    Usage(String),
    /// A result or log file could not be written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The experiment itself failed.
    Run(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Usage(msg) => write!(f, "{msg}"),
            BenchError::Io { path, source } => {
                write!(f, "cannot write {}: {source}", path.display())
            }
            BenchError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<wsan_expr::campaign::CampaignError> for BenchError {
    fn from(e: wsan_expr::campaign::CampaignError) -> Self {
        BenchError::Run(e.to_string())
    }
}

/// Maps a result-file write error onto the offending path.
pub fn write_err(path: impl AsRef<Path>) -> impl FnOnce(std::io::Error) -> BenchError {
    let path = path.as_ref().to_path_buf();
    move |source| BenchError::Io { path, source }
}

/// Options common to every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Flow sets (or repetitions) per configuration point.
    pub sets: usize,
    /// Base seed for workload generation.
    pub seed: u64,
    /// Quick mode: shrink the heaviest dimensions.
    pub quick: bool,
    /// Campaign worker threads (0 = one per core).
    pub jobs: usize,
    /// Resume from the figure's checkpoint manifest.
    pub resume: bool,
    /// Simulation core for the campaigns that execute simulator runs.
    pub engine: wsan_sim::SimEngine,
}

impl RunOptions {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Usage`] on malformed arguments.
    pub fn try_parse(default_sets: usize) -> Result<Self, BenchError> {
        Self::try_parse_from(std::env::args().skip(1), default_sets)
    }

    /// [`RunOptions::try_parse`] over an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::Usage`] on malformed arguments.
    pub fn try_parse_from(
        args: impl IntoIterator<Item = String>,
        default_sets: usize,
    ) -> Result<Self, BenchError> {
        const USAGE: &str =
            "supported: --sets N --seed S --quick --jobs N --resume --engine slots|events";
        let mut options = RunOptions {
            sets: default_sets,
            seed: 1,
            quick: false,
            jobs: 0,
            resume: false,
            engine: wsan_sim::SimEngine::default(),
        };
        let mut args = args.into_iter();
        fn value<T: std::str::FromStr>(flag: &str, next: Option<String>) -> Result<T, BenchError> {
            let raw =
                next.ok_or_else(|| BenchError::Usage(format!("{flag} needs a value; {USAGE}")))?;
            raw.parse().map_err(|_| {
                BenchError::Usage(format!("{flag} expects an integer, got '{raw}'; {USAGE}"))
            })
        }
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--sets" => options.sets = value("--sets", args.next())?,
                "--seed" => options.seed = value("--seed", args.next())?,
                "--jobs" => options.jobs = value("--jobs", args.next())?,
                "--engine" => {
                    let raw = args.next().ok_or_else(|| {
                        BenchError::Usage(format!("--engine needs a value; {USAGE}"))
                    })?;
                    options.engine =
                        raw.parse().map_err(|e| BenchError::Usage(format!("{e}; {USAGE}")))?;
                }
                "--resume" => options.resume = true,
                "--quick" => {
                    options.quick = true;
                    options.sets = options.sets.min(10);
                }
                other => {
                    return Err(BenchError::Usage(format!("unknown argument {other}; {USAGE}")))
                }
            }
        }
        Ok(options)
    }

    /// The catalog-facing view of these options.
    pub fn sweep(&self) -> wsan_expr::campaigns::SweepOptions {
        wsan_expr::campaigns::SweepOptions {
            sets: self.sets,
            seed: self.seed,
            quick: self.quick,
            engine: self.engine,
        }
    }

    /// Campaign engine configuration for the named figure: workers and
    /// resume flag from the command line, checkpoints under
    /// `results/<name>.manifest.jsonl`.
    pub fn campaign(&self, name: &str) -> wsan_expr::campaign::CampaignConfig {
        wsan_expr::campaign::CampaignConfig {
            jobs: self.jobs,
            window: 0,
            manifest: Some(results_dir().join(format!("{name}.manifest.jsonl"))),
            resume: self.resume,
        }
    }
}

/// Runs a figure binary's fallible body, reporting errors on stderr with a
/// non-zero exit code instead of a panic backtrace.
pub fn run_main(body: impl FnOnce() -> Result<(), BenchError>) -> ExitCode {
    match body() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The directory figure outputs are written to.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("WSAN_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str], default_sets: usize) -> Result<RunOptions, BenchError> {
        RunOptions::try_parse_from(args.iter().map(|s| s.to_string()), default_sets)
    }

    #[test]
    fn defaults_without_args() {
        let o = parse(&[], 100).unwrap();
        assert_eq!(
            o,
            RunOptions {
                sets: 100,
                seed: 1,
                quick: false,
                jobs: 0,
                resume: false,
                engine: wsan_sim::SimEngine::SlotStepper,
            }
        );
    }

    #[test]
    fn parses_all_flags() {
        let o = parse(
            &["--sets", "7", "--seed", "9", "--jobs", "3", "--resume", "--engine", "events"],
            100,
        )
        .unwrap();
        assert_eq!(
            o,
            RunOptions {
                sets: 7,
                seed: 9,
                quick: false,
                jobs: 3,
                resume: true,
                engine: wsan_sim::SimEngine::EventDriven,
            }
        );
        assert_eq!(o.sweep().engine, wsan_sim::SimEngine::EventDriven);
    }

    #[test]
    fn quick_caps_sets() {
        let o = parse(&["--quick"], 100).unwrap();
        assert!(o.quick);
        assert_eq!(o.sets, 10);
    }

    #[test]
    fn malformed_arguments_are_usage_errors_not_panics() {
        assert!(matches!(parse(&["--sets"], 5), Err(BenchError::Usage(_))));
        assert!(matches!(parse(&["--sets", "many"], 5), Err(BenchError::Usage(_))));
        assert!(matches!(parse(&["--frobnicate"], 5), Err(BenchError::Usage(_))));
        assert!(matches!(parse(&["--engine", "quantum"], 5), Err(BenchError::Usage(_))));
    }

    #[test]
    fn results_dir_honours_env() {
        std::env::set_var("WSAN_RESULTS_DIR", "/tmp/wsan-results-test");
        assert_eq!(results_dir(), std::path::PathBuf::from("/tmp/wsan-results-test"));
        std::env::remove_var("WSAN_RESULTS_DIR");
        assert_eq!(results_dir(), std::path::PathBuf::from("results"));
    }

    #[test]
    fn campaign_config_points_at_the_results_manifest() {
        let o = parse(&["--jobs", "2", "--resume"], 5).unwrap();
        let cfg = o.campaign("fig6");
        assert_eq!(cfg.jobs, 2);
        assert!(cfg.resume);
        assert!(cfg.manifest.as_deref().is_some_and(|p| p.ends_with("fig6.manifest.jsonl")));
    }
}
