//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each `src/bin/figN*.rs` binary reproduces one or more figures of the
//! paper's evaluation: it prints the same series the figure plots and dumps
//! a machine-readable copy under `results/`. All binaries accept:
//!
//! * `--sets N` — flow sets per configuration point (default: the paper's
//!   100; lower it for a quick pass),
//! * `--seed S` — base seed (default 1),
//! * `--quick` — shorthand for a fast smoke-scale run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Options common to every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Flow sets (or repetitions) per configuration point.
    pub sets: usize,
    /// Base seed for workload generation.
    pub seed: u64,
    /// Quick mode: shrink the heaviest dimensions.
    pub quick: bool,
}

impl RunOptions {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(default_sets: usize) -> Self {
        let mut options = RunOptions { sets: default_sets, seed: 1, quick: false };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--sets" => {
                    let v = args.next().expect("--sets needs a value");
                    options.sets = v.parse().expect("--sets expects an integer");
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    options.seed = v.parse().expect("--seed expects an integer");
                }
                "--quick" => {
                    options.quick = true;
                    options.sets = options.sets.min(10);
                }
                other => panic!("unknown argument {other}; supported: --sets N --seed S --quick"),
            }
        }
        options
    }
}

/// The directory figure outputs are written to.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("WSAN_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_args() {
        // parse() reads process args; under `cargo test` extra args exist,
        // so only check the plain constructor semantics here.
        let o = RunOptions { sets: 100, seed: 1, quick: false };
        assert_eq!(o.sets, 100);
    }

    #[test]
    fn results_dir_honours_env() {
        std::env::set_var("WSAN_RESULTS_DIR", "/tmp/wsan-results-test");
        assert_eq!(results_dir(), std::path::PathBuf::from("/tmp/wsan-results-test"));
        std::env::remove_var("WSAN_RESULTS_DIR");
        assert_eq!(results_dir(), std::path::PathBuf::from("results"));
    }
}
