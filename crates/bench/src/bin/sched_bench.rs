//! `sched_bench` — the tracked scheduler hot-path benchmark.
//!
//! Times full schedule construction for the optimized NR/RA/RC engines and
//! their slot-by-slot `wsan_core::reference` baselines over the scenarios
//! of [`wsan_bench::sched`], then writes `BENCH_scheduler.json` (median
//! ns/placement, schedules/sec, RC speedup vs. reference) so the perf
//! trajectory is comparable across PRs. Unlike the criterion bench this
//! uses hand-rolled `Instant` timing, so it runs as an ordinary binary:
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin sched_bench [-- --iters 30 --quick --out PATH]
//! ```
//!
//! * `--iters N` — timed runs per scheduler/scenario (default 30),
//! * `--seed S` — workload generation seed (default 42),
//! * `--quick` — caps iterations at 3 for a smoke pass,
//! * `--out PATH` — output path (default `results/BENCH_scheduler.json`).

use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;
use wsan_bench::sched::{contenders, median_ns, scenarios};
use wsan_bench::{results_dir, run_main, write_err, BenchError};

/// The file-format tag checked by ci.sh's smoke step.
const SCHEMA: &str = "wsan.sched_bench/1";

#[derive(Debug, Serialize)]
struct AlgoResult {
    name: String,
    schedulable: bool,
    /// Scheduled entries per run (identical across iterations).
    placements: u64,
    median_ns_per_schedule: Option<u64>,
    median_ns_per_placement: Option<f64>,
    schedules_per_sec: Option<f64>,
}

#[derive(Debug, Serialize)]
struct ScenarioResult {
    name: String,
    flows: u64,
    dense: bool,
    algorithms: Vec<AlgoResult>,
    /// Median-over-median speedup of optimized RC vs. the reference RC —
    /// the acceptance series (≥ 2x on dense scenarios).
    speedup_rc_vs_reference: Option<f64>,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    iters: u64,
    seed: u64,
    scenarios: Vec<ScenarioResult>,
}

struct Options {
    iters: usize,
    seed: u64,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, BenchError> {
    const USAGE: &str = "supported: --iters N --seed S --quick --out PATH";
    let mut opts = Options { iters: 30, seed: 42, out: None };
    let mut args = std::env::args().skip(1);
    fn value<T: std::str::FromStr>(flag: &str, next: Option<String>) -> Result<T, BenchError> {
        let raw =
            next.ok_or_else(|| BenchError::Usage(format!("{flag} needs a value; {USAGE}")))?;
        raw.parse()
            .map_err(|_| BenchError::Usage(format!("{flag} got malformed value '{raw}'; {USAGE}")))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => opts.iters = value("--iters", args.next())?,
            "--seed" => opts.seed = value("--seed", args.next())?,
            "--out" => {
                opts.out =
                    Some(std::path::PathBuf::from(args.next().ok_or_else(|| {
                        BenchError::Usage(format!("--out needs a value; {USAGE}"))
                    })?));
            }
            "--quick" => opts.iters = opts.iters.min(3),
            other => return Err(BenchError::Usage(format!("unknown argument {other}; {USAGE}"))),
        }
    }
    if opts.iters == 0 {
        return Err(BenchError::Usage(format!("--iters must be at least 1; {USAGE}")));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = parse_args()?;
        let mut report = Report {
            schema: SCHEMA.to_string(),
            iters: opts.iters as u64,
            seed: opts.seed,
            scenarios: Vec::new(),
        };
        println!("== sched_bench: {} iters/scheduler, seed {} ==", opts.iters, opts.seed);
        for sc in scenarios() {
            let (flows, model) = sc.build(opts.seed).ok_or_else(|| {
                BenchError::Run(format!("scenario {} failed to generate a workload", sc.name))
            })?;
            let mut result = ScenarioResult {
                name: sc.name.to_string(),
                flows: sc.flows as u64,
                dense: sc.dense,
                algorithms: Vec::new(),
                speedup_rc_vs_reference: None,
            };
            let mut rc_median: Option<u64> = None;
            let mut rc_ref_median: Option<u64> = None;
            for (name, scheduler) in contenders() {
                // warm-up doubles as the schedulability probe
                let Ok(schedule) = scheduler.schedule(&flows, &model) else {
                    println!("  {:>15} {:>7}: unschedulable, skipped", sc.name, name);
                    result.algorithms.push(AlgoResult {
                        name: name.to_string(),
                        schedulable: false,
                        placements: 0,
                        median_ns_per_schedule: None,
                        median_ns_per_placement: None,
                        schedules_per_sec: None,
                    });
                    continue;
                };
                let placements = schedule.entry_count() as u64;
                let mut samples: Vec<u64> = Vec::with_capacity(opts.iters);
                for _ in 0..opts.iters {
                    let start = Instant::now();
                    let built = scheduler.schedule(&flows, &model).expect("schedulable");
                    let ns = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    assert_eq!(built.entry_count() as u64, placements);
                    samples.push(ns.max(1));
                }
                let median = median_ns(&mut samples);
                if name == "RC" {
                    rc_median = Some(median);
                } else if name == "RC-ref" {
                    rc_ref_median = Some(median);
                }
                println!(
                    "  {:>15} {:>7}: {:>12} ns/schedule  {:>9.1} ns/placement  {:>8.1} schedules/s",
                    sc.name,
                    name,
                    median,
                    median as f64 / placements as f64,
                    1e9 / median as f64
                );
                result.algorithms.push(AlgoResult {
                    name: name.to_string(),
                    schedulable: true,
                    placements,
                    median_ns_per_schedule: Some(median),
                    median_ns_per_placement: Some(median as f64 / placements as f64),
                    schedules_per_sec: Some(1e9 / median as f64),
                });
            }
            if let (Some(rc), Some(rc_ref)) = (rc_median, rc_ref_median) {
                let speedup = rc_ref as f64 / rc as f64;
                println!("  {:>15} RC speedup vs reference: {speedup:.2}x", sc.name);
                result.speedup_rc_vs_reference = Some(speedup);
            }
            report.scenarios.push(result);
        }
        let path = opts.out.unwrap_or_else(|| results_dir().join("BENCH_scheduler.json"));
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(write_err(dir))?;
        }
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| BenchError::Run(format!("serializing report: {e}")))?;
        std::fs::write(&path, json + "\n").map_err(write_err(&path))?;
        println!("report written to {}", path.display());
        Ok(())
    })
}
