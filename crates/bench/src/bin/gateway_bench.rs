//! `gateway_bench` — the tracked online-admission benchmark.
//!
//! Measures what the gateway's delta path buys: admissions per second when
//! each admission re-places only the disturbed priority suffix
//! (`GatewayState::add_flow`) versus recomputing the whole flow set from
//! scratch after every admission, on the 80-node Indriya-scale testbed.
//! Writes `BENCH_gateway.json` (schema-checked by ci.sh) so the admission
//! latency trajectory is comparable across PRs.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin gateway_bench [-- --iters 10 --quick --out PATH]
//! ```
//!
//! * `--iters N` — timed repetitions per scenario (default 10),
//! * `--seed S` — topology seed (default 42),
//! * `--quick` — caps iterations at 3 for a smoke pass,
//! * `--out PATH` — output path (default `results/BENCH_gateway.json`).

use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;
use wsan_bench::{results_dir, run_main, write_err, BenchError};
use wsan_core::gateway::{FlowSpec, GatewayConfig, GatewayState};
use wsan_core::{NetworkModel, ReuseConservatively, Scheduler};
use wsan_flow::Period;
use wsan_net::{routing, testbeds, ChannelId, NodeId, Prr};

/// The file-format tag checked by ci.sh's smoke step.
const SCHEMA: &str = "wsan.gateway_bench/1";

#[derive(Debug, Serialize)]
struct ScenarioResult {
    name: String,
    /// Flows admitted before timing starts.
    preloaded: u64,
    /// Timed admissions per iteration.
    admissions: u64,
    /// Median over iterations of total ns for the timed admissions,
    /// suffix-delta path.
    median_delta_ns: u64,
    /// Same admissions, but recomputing the entire flow set each time.
    median_full_ns: u64,
    delta_admissions_per_sec: f64,
    full_admissions_per_sec: f64,
    /// `median_full_ns / median_delta_ns` — the acceptance series.
    speedup_delta_vs_full: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    iters: u64,
    seed: u64,
    testbed: String,
    nodes: u64,
    channels: u64,
    scenarios: Vec<ScenarioResult>,
}

struct Options {
    iters: usize,
    seed: u64,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, BenchError> {
    const USAGE: &str = "supported: --iters N --seed S --quick --out PATH";
    let mut opts = Options { iters: 10, seed: 42, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                let raw = args
                    .next()
                    .ok_or_else(|| BenchError::Usage(format!("--iters needs a value; {USAGE}")))?;
                opts.iters = raw.parse().map_err(|_| {
                    BenchError::Usage(format!("--iters got malformed value '{raw}'; {USAGE}"))
                })?;
            }
            "--seed" => {
                let raw = args
                    .next()
                    .ok_or_else(|| BenchError::Usage(format!("--seed needs a value; {USAGE}")))?;
                opts.seed = raw.parse().map_err(|_| {
                    BenchError::Usage(format!("--seed got malformed value '{raw}'; {USAGE}"))
                })?;
            }
            "--out" => {
                opts.out =
                    Some(std::path::PathBuf::from(args.next().ok_or_else(|| {
                        BenchError::Usage(format!("--out needs a value; {USAGE}"))
                    })?));
            }
            "--quick" => opts.iters = opts.iters.min(3),
            other => return Err(BenchError::Usage(format!("unknown argument {other}; {USAGE}"))),
        }
    }
    if opts.iters == 0 {
        return Err(BenchError::Usage(format!("--iters must be at least 1; {USAGE}")));
    }
    Ok(opts)
}

/// Deterministic admission specs: shortest-path routes between arithmetic
/// node pairs, all at the same 128-slot period (so the hyperperiod never
/// changes) with the given relative deadline.
fn make_specs(comm: &wsan_net::CommGraph, count: usize, deadline: u32) -> Vec<FlowSpec> {
    let n = comm.node_count();
    let period = Period::from_slots(128).expect("nonzero");
    let mut specs = Vec::new();
    let mut k = 0usize;
    while specs.len() < count && k < count * 8 {
        let src = NodeId::new((k * 13 + 1) % n);
        let dst = NodeId::new((k * 29 + 7) % n);
        k += 1;
        if src == dst {
            continue;
        }
        let Ok(route) = routing::shortest_path(comm, src, dst) else { continue };
        specs.push(FlowSpec { route, period, deadline_slots: deadline });
    }
    specs
}

fn fresh_gateway(model: &NetworkModel, rho_t: u32) -> GatewayState {
    GatewayState::new(
        model.clone(),
        Box::new(ReuseConservatively::new(rho_t)),
        GatewayConfig { rho_t: Some(rho_t), ..GatewayConfig::default() },
    )
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = parse_args()?;
        let topo = testbeds::indriya(opts.seed);
        let channels = ChannelId::range(11, 14).expect("valid range");
        let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
        let model = NetworkModel::new(&topo, &channels);
        let oracle = ReuseConservatively::new(2);

        let mut report = Report {
            schema: SCHEMA.to_string(),
            iters: opts.iters as u64,
            seed: opts.seed,
            testbed: topo.name().to_string(),
            nodes: topo.node_count() as u64,
            channels: channels.len() as u64,
            scenarios: Vec::new(),
        };
        println!(
            "== gateway_bench: {} iters, seed {}, {} nodes ==",
            opts.iters,
            opts.seed,
            topo.node_count()
        );

        // `tail-*`: newcomers carry the laxest deadline, sort below every
        // incumbent, and ride the pure suffix path — the gateway's common
        // "add one more monitoring flow" case. `mid-40`/`mixed-80`:
        // newcomers tie the incumbents' deadline and insert mid-order,
        // re-placing about half the set. These sit at ~0.8x of the bare
        // recompute comparator: the gap is admission bookkeeping (candidate
        // clone, flow-set rebuild, prefix replay) that the comparator does
        // not pay, not wasted scheduling. The affected-slot watermark check
        // bounds the worst case — an insertion whose suffix placements start
        // in the first quarter of the timeline skips straight to a full run
        // instead of paying snapshot + replay on top of near-full work.
        for &(name, preload, admissions, preload_deadline, admit_deadline) in &[
            ("tail-20", 20usize, 10usize, 96u32, 128u32),
            ("tail-40", 40, 10, 96, 128),
            ("tail-80", 80, 10, 96, 128),
            ("mid-40", 40, 10, 112, 112),
            ("mixed-80", 80, 10, 128, 128),
        ] {
            let mut specs = make_specs(&comm, preload, preload_deadline);
            specs
                .extend(make_specs(&comm, preload + admissions, admit_deadline).split_off(preload));
            if specs.len() < preload + admissions {
                return Err(BenchError::Run(format!(
                    "scenario {name}: only {} routable specs",
                    specs.len()
                )));
            }
            let mut delta_samples = Vec::with_capacity(opts.iters);
            let mut full_samples = Vec::with_capacity(opts.iters);
            let mut timed_admissions = 0u64;
            for _ in 0..opts.iters {
                let mut gw = fresh_gateway(&model, 2);
                for (i, spec) in specs[..preload].iter().enumerate() {
                    gw.add_flow(&format!("p{i}"), spec.clone())
                        .map_err(|e| BenchError::Run(format!("preload failed: {e}")))?;
                }
                // suffix-delta path: one incremental add per newcomer
                let mut delta_ns = 0u64;
                let mut full_ns = 0u64;
                let mut admitted = 0u64;
                for (j, spec) in specs[preload..].iter().enumerate() {
                    let started = Instant::now();
                    let outcome = gw.add_flow(&format!("a{j}"), spec.clone());
                    let elapsed = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    if outcome.is_err() {
                        continue; // infeasible newcomer: not an admission
                    }
                    delta_ns += elapsed.max(1);
                    admitted += 1;
                    // the comparator: recompute the identical flow set from
                    // scratch, as a gateway without the delta path must
                    let flows = gw.flow_set();
                    let started = Instant::now();
                    let full = oracle
                        .schedule(&flows, gw.model())
                        .map_err(|e| BenchError::Run(format!("full recompute failed: {e}")))?;
                    full_ns +=
                        (started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64).max(1);
                    assert_eq!(full, *gw.schedule(), "delta result diverged from recompute");
                }
                if admitted == 0 {
                    return Err(BenchError::Run(format!("scenario {name}: nothing admitted")));
                }
                timed_admissions = admitted;
                delta_samples.push(delta_ns);
                full_samples.push(full_ns);
            }
            let median_delta_ns = median(&mut delta_samples);
            let median_full_ns = median(&mut full_samples);
            let delta_rate = timed_admissions as f64 / (median_delta_ns as f64 / 1e9);
            let full_rate = timed_admissions as f64 / (median_full_ns as f64 / 1e9);
            let speedup = median_full_ns as f64 / median_delta_ns as f64;
            println!(
                "  {name:>8}: delta {delta_rate:>10.0} adm/s   full {full_rate:>10.0} adm/s   speedup {speedup:.2}x"
            );
            report.scenarios.push(ScenarioResult {
                name: name.to_string(),
                preloaded: preload as u64,
                admissions: timed_admissions,
                median_delta_ns,
                median_full_ns,
                delta_admissions_per_sec: delta_rate,
                full_admissions_per_sec: full_rate,
                speedup_delta_vs_full: speedup,
            });
        }

        let out = opts.out.unwrap_or_else(|| results_dir().join("BENCH_gateway.json"));
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(write_err(parent))?;
            }
        }
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| BenchError::Run(format!("cannot serialise report: {e}")))?;
        std::fs::write(&out, json).map_err(write_err(&out))?;
        println!("report written to {}", out.display());
        Ok(())
    })
}
