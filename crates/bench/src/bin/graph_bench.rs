//! `graph_bench` — the tracked graph-core (hop structure) benchmark.
//!
//! Generates one ~1200-node city plant, builds its channel reuse graph,
//! and times the all-pairs hop-distance structure three ways: the dense
//! `u32` matrix built by sequential per-source BFS, and the capped table
//! ([`wsan_net::CappedHops`]) built by the bit-parallel multi-source BFS
//! kernel at `jobs = 1` and `jobs = N`. Writes `BENCH_graph.json`
//! (schema-checked by ci.sh) so the hop-structure build trajectory —
//! the single input every scheduler run pays for first — is comparable
//! across PRs. Every run also re-checks that the capped table answers
//! every `hops`/`at_least` query exactly as the dense matrix does and
//! that the parallel build is byte-identical to the sequential one.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin graph_bench [-- --iters 5 --quick --out PATH]
//! ```
//!
//! * `--iters N` — timed repetitions per variant (default 5),
//! * `--seed S` — plant seed (default 42),
//! * `--nodes N` — target plant size (default 1200),
//! * `--jobs N` — workers for the parallel variant (default 4),
//! * `--quick` — caps iterations at 2 for a smoke pass,
//! * `--out PATH` — output path (default `results/BENCH_graph.json`).

use serde::Serialize;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;
use wsan_bench::{results_dir, run_main, write_err, BenchError};
use wsan_net::plants::{generate, PlantConfig};
use wsan_net::{ChannelId, NodeId, UNREACHABLE};

/// The file-format tag checked by ci.sh's smoke step.
const SCHEMA: &str = "wsan.graph_bench/1";

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    iters: u64,
    seed: u64,
    target_nodes: u64,
    /// Nodes in the generated plant (= rows of every hop structure).
    nodes: u64,
    /// Undirected edges in the channel reuse graph.
    edges: u64,
    /// Workers used by the parallel variant.
    jobs: u64,
    /// Reuse-graph diameter `λ_R` (agreed by all three builds).
    diameter: u64,
    /// Saturation cap of the capped table (`≥ λ_R + 1`, exact mode).
    cap: u64,
    /// Bytes of the dense `u32` matrix (`n² · 4`).
    dense_bytes: u64,
    /// Bytes of the capped table's cell storage.
    capped_bytes: u64,
    /// `capped_bytes / dense_bytes` — the storage acceptance series
    /// (≤ 0.25 whenever the cap fits in a byte).
    capped_over_dense_bytes: f64,
    /// Median wall-clock of the dense sequential per-source BFS build.
    median_dense_build_ns: u64,
    /// Median wall-clock of the capped bit-parallel build at `jobs = 1`.
    median_capped_jobs1_build_ns: u64,
    /// Median wall-clock of the capped bit-parallel build at `jobs = N`.
    median_capped_par_build_ns: u64,
    /// `median_dense_build_ns / median_capped_jobs1_build_ns`.
    speedup_capped_jobs1_vs_dense: f64,
    /// `median_dense_build_ns / median_capped_par_build_ns` — the
    /// hop-structure acceptance series.
    speedup_parallel_vs_dense: f64,
    /// The capped table answered every query exactly like the dense one.
    queries_equivalent: bool,
    /// `jobs = 1` and `jobs = N` built byte-identical tables.
    parallel_identical: bool,
}

struct Options {
    iters: usize,
    seed: u64,
    nodes: usize,
    jobs: usize,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, BenchError> {
    const USAGE: &str = "supported: --iters N --seed S --nodes N --jobs N --quick --out PATH";
    let mut opts = Options { iters: 5, seed: 42, nodes: 1200, jobs: 4, out: None };
    let mut args = std::env::args().skip(1);
    fn value<T: std::str::FromStr>(flag: &str, next: Option<String>) -> Result<T, BenchError> {
        let raw =
            next.ok_or_else(|| BenchError::Usage(format!("{flag} needs a value; {USAGE}")))?;
        raw.parse()
            .map_err(|_| BenchError::Usage(format!("{flag} got malformed value '{raw}'; {USAGE}")))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => opts.iters = value("--iters", args.next())?,
            "--seed" => opts.seed = value("--seed", args.next())?,
            "--nodes" => opts.nodes = value("--nodes", args.next())?,
            "--jobs" => opts.jobs = value("--jobs", args.next())?,
            "--out" => {
                opts.out =
                    Some(std::path::PathBuf::from(args.next().ok_or_else(|| {
                        BenchError::Usage(format!("--out needs a value; {USAGE}"))
                    })?));
            }
            "--quick" => opts.iters = opts.iters.min(2),
            other => return Err(BenchError::Usage(format!("unknown argument {other}; {USAGE}"))),
        }
    }
    if opts.iters == 0 {
        return Err(BenchError::Usage(format!("--iters must be at least 1; {USAGE}")));
    }
    if opts.jobs == 0 {
        return Err(BenchError::Usage(format!("--jobs must be at least 1; {USAGE}")));
    }
    Ok(opts)
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `build` over `iters` runs and returns (median ns, last result).
fn time_builds<T>(iters: usize, mut build: impl FnMut() -> T) -> (u64, T) {
    let mut samples = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let started = Instant::now();
        let built = black_box(build());
        samples.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX).max(1));
        last = Some(built);
    }
    (median(&mut samples), last.expect("iters >= 1"))
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = parse_args()?;
        let plant_cfg = PlantConfig::city(format!("city-{}", opts.nodes), opts.nodes);
        let plant = generate(&plant_cfg, opts.seed);
        let channels = ChannelId::all();
        let reuse = plant.reuse_graph(&channels);
        let n = reuse.node_count();
        println!(
            "== graph_bench: {} iters, seed {}, {} nodes, {} reuse edges ==",
            opts.iters,
            opts.seed,
            n,
            reuse.edge_count()
        );

        let (median_dense_build_ns, dense) = time_builds(opts.iters, || reuse.hop_matrix());
        let (median_capped_jobs1_build_ns, capped_seq) =
            time_builds(opts.iters, || reuse.exact_hops(1));
        let (median_capped_par_build_ns, capped_par) =
            time_builds(opts.iters, || reuse.exact_hops(opts.jobs));

        // Correctness gates: the capped table must be schedule-identical to
        // the dense matrix (DESIGN.md §16) and independent of `jobs`.
        let parallel_identical = capped_seq == capped_par;
        if !parallel_identical {
            return Err(BenchError::Run(
                "jobs=1 and jobs=N capped builds diverged — BFS kernel is nondeterministic"
                    .to_string(),
            ));
        }
        let cap = capped_seq.cap();
        let mut queries_equivalent = capped_seq.diameter() == dense.diameter()
            && !capped_seq.saturated()
            && cap > dense.diameter();
        'outer: for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                let d = dense.hops(a, b);
                let want = if d == UNREACHABLE { cap } else { d };
                if capped_seq.hops(a, b) != want {
                    queries_equivalent = false;
                    break 'outer;
                }
            }
        }
        if !queries_equivalent {
            return Err(BenchError::Run(
                "capped table disagrees with the dense matrix — exact-mode build is broken"
                    .to_string(),
            ));
        }

        let dense_bytes = (n * n * std::mem::size_of::<u32>()) as u64;
        let capped_bytes = capped_seq.bytes() as u64;
        let report = Report {
            schema: SCHEMA.to_string(),
            iters: opts.iters as u64,
            seed: opts.seed,
            target_nodes: opts.nodes as u64,
            nodes: n as u64,
            edges: reuse.edge_count() as u64,
            jobs: opts.jobs as u64,
            diameter: u64::from(dense.diameter()),
            cap: u64::from(cap),
            dense_bytes,
            capped_bytes,
            capped_over_dense_bytes: capped_bytes as f64 / dense_bytes as f64,
            median_dense_build_ns,
            median_capped_jobs1_build_ns,
            median_capped_par_build_ns,
            speedup_capped_jobs1_vs_dense: median_dense_build_ns as f64
                / median_capped_jobs1_build_ns as f64,
            speedup_parallel_vs_dense: median_dense_build_ns as f64
                / median_capped_par_build_ns as f64,
            queries_equivalent,
            parallel_identical,
        };
        println!(
            "  dense   {:>9.2} ms  {:>11} bytes",
            median_dense_build_ns as f64 / 1e6,
            dense_bytes,
        );
        println!(
            "  capped  {:>9.2} ms  {:>11} bytes  (jobs=1, {:.1}x vs dense, {:.0}% of bytes)",
            median_capped_jobs1_build_ns as f64 / 1e6,
            capped_bytes,
            report.speedup_capped_jobs1_vs_dense,
            100.0 * report.capped_over_dense_bytes,
        );
        println!(
            "  capped  {:>9.2} ms  {:>11} bytes  (jobs={}, {:.1}x vs dense)",
            median_capped_par_build_ns as f64 / 1e6,
            capped_bytes,
            opts.jobs,
            report.speedup_parallel_vs_dense,
        );

        let out = opts.out.unwrap_or_else(|| results_dir().join("BENCH_graph.json"));
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(write_err(parent))?;
            }
        }
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| BenchError::Run(format!("cannot serialise report: {e}")))?;
        std::fs::write(&out, json).map_err(write_err(&out))?;
        println!("report written to {}", out.display());
        Ok(())
    })
}
