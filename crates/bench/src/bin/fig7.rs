//! Figure 7 — the WUSTL testbed topology when channels 11–14 are used.
//!
//! The paper's figure is a drawing of the testbed graph; this binary prints
//! the structural statistics of our synthetic stand-in and exports the
//! communication graph as Graphviz DOT (positions included) so it can be
//! rendered with `neato -n2`.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig7 [-- --seed 1]
//! ```

use std::fmt::Write as _;
use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, BenchError, RunOptions};
use wsan_expr::table;
use wsan_net::{testbeds, ChannelId, Prr};

fn main() -> ExitCode {
    run_main(body)
}

fn body() -> Result<(), BenchError> {
    let opts = RunOptions::try_parse(1)?;
    let topo = testbeds::wustl(opts.seed);
    let channels = ChannelId::range(11, 14).expect("valid");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let reuse = topo.reuse_graph(&channels);

    println!("== fig7: WUSTL topology on channels 11-14 (seed {}) ==", opts.seed);
    let model = topo
        .propagation_model()
        .ok_or_else(|| BenchError::Run("topology carries no propagation model".to_string()))?;
    let mut per_floor = std::collections::BTreeMap::<i64, usize>::new();
    for node in topo.nodes() {
        *per_floor
            .entry((topo.position(node).z / model.floor_height_m).round() as i64)
            .or_default() += 1;
    }
    for (floor, count) in &per_floor {
        println!("floor {floor}: {count} nodes");
    }
    let headers = ["graph", "edges", "diameter", "min deg", "max deg", "connected"];
    let degree_range = |g: &dyn Fn(usize) -> usize| {
        let ds: Vec<usize> = (0..topo.node_count()).map(g).collect();
        (ds.iter().min().copied().unwrap_or(0), ds.iter().max().copied().unwrap_or(0))
    };
    let (comm_min, comm_max) = degree_range(&|i| comm.degree(wsan_net::NodeId::new(i)));
    let (reuse_min, reuse_max) = degree_range(&|i| reuse.degree(wsan_net::NodeId::new(i)));
    let rows = vec![
        vec![
            "communication".to_string(),
            comm.edge_count().to_string(),
            comm.diameter().to_string(),
            comm_min.to_string(),
            comm_max.to_string(),
            comm.is_connected().to_string(),
        ],
        vec![
            "channel reuse".to_string(),
            reuse.edge_count().to_string(),
            reuse.diameter().to_string(),
            reuse_min.to_string(),
            reuse_max.to_string(),
            reuse.is_connected().to_string(),
        ],
    ];
    print!("{}", table::render(&headers, &rows));
    let aps = comm.select_access_points(2);
    println!("access points (highest degree): {} and {}", aps[0], aps[1]);

    // DOT export with physical positions (scaled to points)
    let mut dot = String::from("graph wustl {\n  node [shape=point, width=0.12];\n");
    for node in topo.nodes() {
        let p = topo.position(node);
        let _ = writeln!(
            dot,
            "  {} [pos=\"{:.0},{:.0}\", color=\"{}\"];",
            node.index(),
            p.x * 10.0,
            p.y * 10.0 + p.z * 80.0,
            if aps.contains(&node) { "red" } else { "black" }
        );
    }
    for a in topo.nodes() {
        for b in topo.nodes() {
            if a < b && comm.has_edge(a, b) {
                let _ = writeln!(dot, "  {} -- {};", a.index(), b.index());
            }
        }
    }
    dot.push_str("}\n");
    let path = results_dir().join("fig7_wustl.dot");
    std::fs::create_dir_all(results_dir()).map_err(write_err(results_dir()))?;
    std::fs::write(&path, dot).map_err(write_err(&path))?;
    println!("communication graph exported to {} (render: neato -n2 -Tpdf)", path.display());
    Ok(())
}
