//! Figure 6 — scheduler execution time vs. traffic load.
//!
//! Peer-to-peer traffic, 5 channels, `P = [2^0, 2^2]`, flow counts 40–160,
//! Indriya topology. Absolute milliseconds are host-dependent; the paper's
//! shape to reproduce is NR fastest (and failing beyond ~120 flows),
//! RC cheaper than RA, and both growing steeply with load.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig6 [-- --sets 20 --quick]
//! ```

use wsan_bench::{results_dir, RunOptions};
use wsan_expr::exectime::measure;
use wsan_expr::schedulable::WorkloadConfig;
use wsan_expr::{table, Algorithm};
use wsan_flow::{PeriodRange, TrafficPattern};
use wsan_net::testbeds;

fn main() {
    let opts = RunOptions::parse(20);
    let topo = testbeds::indriya(1);
    let cfg = WorkloadConfig {
        flow_sets: opts.sets,
        seed: opts.seed,
        ..WorkloadConfig::new(0, PeriodRange::new(0, 2).expect("valid"), TrafficPattern::PeerToPeer)
    };
    let flow_counts = [40, 60, 80, 100, 120, 140, 160];
    let points = measure(&topo, 5, &flow_counts, &Algorithm::paper_suite(), &cfg);

    println!("== fig6: execution time (ms), p2p, 5 channels, Indriya ==");
    let headers = ["#flows", "NR ms", "NR ok", "RA ms", "RA ok", "RC ms", "RC ok"];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![p.flows.to_string()];
            for a in &p.algorithms {
                row.push(a.mean_ms.map_or("-".to_string(), |ms| format!("{ms:.2}")));
                row.push(table::pct(a.schedulable_ratio));
            }
            row
        })
        .collect();
    print!("{}", table::render(&headers, &rows));
    println!("('-' = no schedulable run at that load; timings over {} sets/point)", opts.sets);
    table::write_json(results_dir().join("fig6.json"), &points).expect("write results JSON");
    println!("results written under {}", results_dir().display());
}
