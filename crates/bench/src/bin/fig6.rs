//! Figure 6 — scheduler execution time vs. traffic load.
//!
//! Peer-to-peer traffic, 5 channels, `P = [2^0, 2^2]`, flow counts 40–160,
//! Indriya topology. Absolute milliseconds are host-dependent; the paper's
//! shape to reproduce is NR fastest (and failing beyond ~120 flows),
//! RC cheaper than RA, and both growing steeply with load.
//!
//! Runs as a resumable campaign checkpointed to
//! `results/fig6.manifest.jsonl`. Note that with `--jobs > 1` the absolute
//! timings share the machine with the other workers; use `--jobs 1` when
//! the milliseconds themselves matter.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig6 [-- --sets 20 --quick --resume]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, RunOptions};
use wsan_expr::campaigns;
use wsan_expr::table;

fn main() -> ExitCode {
    run_main(|| {
        let opts = RunOptions::try_parse(20)?;
        let (points, summary) = campaigns::exectime_points(&opts.sweep(), &opts.campaign("fig6"))?;

        println!("== fig6: execution time (ms), p2p, 5 channels, Indriya ==");
        let headers = ["#flows", "NR ms", "NR ok", "RA ms", "RA ok", "RC ms", "RC ok"];
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let mut row = vec![p.flows.to_string()];
                for a in &p.algorithms {
                    row.push(a.mean_ms.map_or("-".to_string(), |ms| format!("{ms:.2}")));
                    row.push(table::pct(a.schedulable_ratio));
                }
                row
            })
            .collect();
        print!("{}", table::render(&headers, &rows));
        println!("('-' = no schedulable run at that load; timings over {} sets/point)", opts.sets);
        let path = results_dir().join("fig6.json");
        table::write_json(&path, &points).map_err(write_err(&path))?;
        println!(
            "results written under {} ({} points executed, {} resumed)",
            results_dir().display(),
            summary.executed,
            summary.resumed
        );
        Ok(())
    })
}
