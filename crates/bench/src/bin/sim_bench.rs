//! `sim_bench` — the tracked simulator-core benchmark.
//!
//! Times identical seeded runs through the slot-stepper and the
//! event-driven engine on a dense schedule (every frame slot busy, where
//! the engines should roughly tie) and a sparse long-horizon schedule
//! (a few busy slots per 512-slot frame, where the event engine's
//! skip-the-idle-slots design pays off), then writes `BENCH_sim.json`
//! (median ns/run per engine, event-vs-stepper speedup, slot occupancy)
//! so the perf trajectory is comparable across PRs. Both scenarios sit
//! inside the draw-order contract of DESIGN.md §13, so every timed pair
//! of runs is also asserted byte-identical — the benchmark doubles as an
//! equivalence smoke. Hand-rolled `Instant` timing, ordinary binary:
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin sim_bench [-- --iters 20 --quick --out PATH]
//! ```
//!
//! * `--iters N` — timed runs per engine/scenario (default 20),
//! * `--seed S` — simulation seed (default 42),
//! * `--quick` — caps iterations at 3 for a smoke pass,
//! * `--out PATH` — output path (default `results/BENCH_sim.json`).

use serde::Serialize;
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::Instant;
use wsan_bench::sched::median_ns;
use wsan_bench::{results_dir, run_main, write_err, BenchError};
use wsan_core::{NetworkModel, NoReuse, Schedule, Scheduler};
use wsan_flow::{
    priority, Flow, FlowId, FlowSet, FlowSetConfig, FlowSetGenerator, Period, PeriodRange,
    TrafficPattern,
};
use wsan_net::propagation::PropagationModel;
use wsan_net::{testbeds, ChannelId, ChannelSet, NodeId, Position, Prr, Route, Topology};
use wsan_sim::{SimConfig, Simulator};

/// The file-format tag checked by ci.sh's smoke step.
const SCHEMA: &str = "wsan.sim_bench/1";

#[derive(Debug, Serialize)]
struct ScenarioResult {
    name: String,
    flows: u64,
    horizon: u64,
    /// Distinct busy slots per hyperperiod.
    busy_slots: u64,
    /// `busy_slots / horizon` — the event engine's work fraction.
    occupancy: f64,
    repetitions: u64,
    slot_stepper_median_ns: u64,
    event_driven_median_ns: u64,
    /// Median-over-median speedup of the event engine vs. the stepper —
    /// the acceptance series (≥ 3x at ≤ 10% occupancy).
    speedup_events_vs_slots: f64,
    /// Every timed pair of runs compared byte for byte (always true when
    /// the binary exits zero; recorded so the JSON is self-describing).
    reports_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    iters: u64,
    seed: u64,
    scenarios: Vec<ScenarioResult>,
}

struct Options {
    iters: usize,
    seed: u64,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, BenchError> {
    const USAGE: &str = "supported: --iters N --seed S --quick --out PATH";
    let mut opts = Options { iters: 20, seed: 42, out: None };
    let mut args = std::env::args().skip(1);
    fn value<T: std::str::FromStr>(flag: &str, next: Option<String>) -> Result<T, BenchError> {
        let raw =
            next.ok_or_else(|| BenchError::Usage(format!("{flag} needs a value; {USAGE}")))?;
        raw.parse()
            .map_err(|_| BenchError::Usage(format!("{flag} got malformed value '{raw}'; {USAGE}")))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => opts.iters = value("--iters", args.next())?,
            "--seed" => opts.seed = value("--seed", args.next())?,
            "--out" => {
                opts.out =
                    Some(std::path::PathBuf::from(args.next().ok_or_else(|| {
                        BenchError::Usage(format!("--out needs a value; {USAGE}"))
                    })?));
            }
            "--quick" => opts.iters = opts.iters.min(3),
            other => return Err(BenchError::Usage(format!("unknown argument {other}; {USAGE}"))),
        }
    }
    if opts.iters == 0 {
        return Err(BenchError::Usage(format!("--iters must be at least 1; {USAGE}")));
    }
    Ok(opts)
}

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// The dense scenario: the WUSTL synthetic testbed under conservative
/// reuse — essentially every frame slot holds a transmission, so the event
/// engine's batching buys little.
fn dense(seed: u64) -> Result<(Topology, ChannelSet, FlowSet, Schedule), BenchError> {
    let topo = testbeds::wustl(5);
    let channels = ChannelId::range(11, 14).map_err(|e| BenchError::Run(e.to_string()))?;
    let comm =
        topo.comm_graph(&channels, Prr::new(0.9).map_err(|e| BenchError::Run(e.to_string()))?);
    let model = NetworkModel::new(&topo, &channels);
    let fsc = FlowSetConfig::new(
        12,
        PeriodRange::new(0, 0).map_err(|e| BenchError::Run(e.to_string()))?,
        TrafficPattern::PeerToPeer,
    );
    let flows = FlowSetGenerator::new(seed)
        .generate(&comm, &fsc)
        .map_err(|e| BenchError::Run(format!("dense workload generation failed: {e}")))?;
    let schedule = wsan_core::ReuseConservatively::new(2)
        .schedule(&flows, &model)
        .map_err(|e| BenchError::Run(format!("dense scenario unschedulable: {e}")))?;
    Ok((topo, channels, flows, schedule))
}

/// The sparse long-horizon scenario: two one-hop flows with 512-slot
/// periods, so only two of the 512 slots per frame hold transmissions
/// (< 1% occupancy) and the stepper wastes ~99% of its iterations.
fn sparse() -> Result<(Topology, ChannelSet, FlowSet, Schedule), BenchError> {
    let run = || -> Result<_, String> {
        let mut topo = Topology::new(
            "sparse",
            vec![
                Position::new(0.0, 0.0, 0.0),
                Position::new(8.0, 0.0, 0.0),
                Position::new(60.0, 0.0, 0.0),
                Position::new(68.0, 0.0, 0.0),
            ],
        );
        topo.set_propagation_model(PropagationModel::default());
        let channels = ChannelId::range(11, 12).map_err(|e| e.to_string())?;
        for (a, b) in [(0, 1), (2, 3)] {
            for ch in &channels {
                topo.set_prr(n(a), n(b), ch, Prr::new(0.8).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
                topo.set_prr(n(b), n(a), ch, Prr::new(0.8).map_err(|e| e.to_string())?)
                    .map_err(|e| e.to_string())?;
            }
        }
        let period = Period::from_slots(512).map_err(|e| e.to_string())?;
        let flows = priority::deadline_monotonic(
            vec![
                Flow::new(FlowId::new(0), Route::new(vec![n(0), n(1)]), period, 512)
                    .map_err(|e| e.to_string())?,
                Flow::new(FlowId::new(1), Route::new(vec![n(2), n(3)]), period, 512)
                    .map_err(|e| e.to_string())?,
            ],
            vec![],
        );
        let model = NetworkModel::new(&topo, &channels);
        let schedule = NoReuse::new().schedule(&flows, &model).map_err(|e| e.to_string())?;
        Ok((topo, channels, flows, schedule))
    };
    run().map_err(|e| BenchError::Run(format!("sparse scenario: {e}")))
}

fn time_scenario(
    name: &str,
    topo: &Topology,
    channels: &ChannelSet,
    flows: &FlowSet,
    schedule: &Schedule,
    cfg: &SimConfig,
    iters: usize,
) -> Result<ScenarioResult, BenchError> {
    let sim = Simulator::try_new(topo, channels, flows, schedule)
        .map_err(|e| BenchError::Run(e.to_string()))?;
    let busy: BTreeSet<u32> = schedule.entries().iter().map(|e| e.slot).collect();
    let horizon = u64::from(schedule.horizon());
    let occupancy = busy.len() as f64 / horizon as f64;
    let mut slot_samples: Vec<u64> = Vec::with_capacity(iters);
    let mut event_samples: Vec<u64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let oracle = sim.run(cfg);
        slot_samples.push(elapsed_ns(start));
        let start = Instant::now();
        let events = sim.run_events(cfg);
        event_samples.push(elapsed_ns(start));
        if oracle != events {
            return Err(BenchError::Run(format!(
                "{name}: engines diverged inside the draw-order contract"
            )));
        }
    }
    let slots_median = median_ns(&mut slot_samples);
    let events_median = median_ns(&mut event_samples);
    let speedup = slots_median as f64 / events_median as f64;
    println!(
        "  {:>12}: {:>6.1}% occupancy  stepper {:>12} ns  events {:>12} ns  speedup {:.2}x",
        name,
        occupancy * 100.0,
        slots_median,
        events_median,
        speedup
    );
    Ok(ScenarioResult {
        name: name.to_string(),
        flows: flows.len() as u64,
        horizon,
        busy_slots: busy.len() as u64,
        occupancy,
        repetitions: u64::from(cfg.repetitions),
        slot_stepper_median_ns: slots_median,
        event_driven_median_ns: events_median,
        speedup_events_vs_slots: speedup,
        reports_identical: true,
    })
}

fn elapsed_ns(start: Instant) -> u64 {
    (start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64).max(1)
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = parse_args()?;
        println!("== sim_bench: {} iters/engine, seed {} ==", opts.iters, opts.seed);
        let mut report = Report {
            schema: SCHEMA.to_string(),
            iters: opts.iters as u64,
            seed: opts.seed,
            scenarios: Vec::new(),
        };
        let (topo, channels, flows, schedule) = dense(0xFEED)?;
        let cfg =
            SimConfig { seed: opts.seed, repetitions: 50, window_reps: 5, ..SimConfig::default() };
        report.scenarios.push(time_scenario(
            "wustl-dense",
            &topo,
            &channels,
            &flows,
            &schedule,
            &cfg,
            opts.iters,
        )?);
        let (topo, channels, flows, schedule) = sparse()?;
        let cfg = SimConfig {
            seed: opts.seed,
            repetitions: 400,
            window_reps: 10,
            ..SimConfig::default()
        };
        report.scenarios.push(time_scenario(
            "sparse-long",
            &topo,
            &channels,
            &flows,
            &schedule,
            &cfg,
            opts.iters,
        )?);
        let path = opts.out.unwrap_or_else(|| results_dir().join("BENCH_sim.json"));
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(write_err(dir))?;
        }
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| BenchError::Run(format!("serializing report: {e}")))?;
        std::fs::write(&path, json + "\n").map_err(write_err(&path))?;
        println!("report written to {}", path.display());
        Ok(())
    })
}
