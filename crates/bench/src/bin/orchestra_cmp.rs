//! Beyond the paper: managed conservative reuse (RC) vs. an
//! Orchestra-style autonomous slotframe, under identical radio conditions.
//!
//! §II of the paper positions RC against autonomous TSCH scheduling:
//! "Orchestra incurs channel reuse in a best-effort manner, our approach
//! manages channel reuse." This binary quantifies that trade on the
//! simulated WUSTL testbed: deadline-constrained PDR and delivery latency
//! for RC (and NR) vs. receiver-based autonomous slotframes of several
//! lengths.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin orchestra_cmp [-- --seed 1]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, BenchError, RunOptions};
use wsan_core::orchestra::AutonomousSlotframe;
use wsan_core::NetworkModel;
use wsan_expr::{table, Algorithm};
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr};
use wsan_sim::{AutonomousSimulator, SimConfig, SimReport, Simulator};

fn summarize(name: &str, report: &SimReport, flows: usize) -> Vec<String> {
    let mut latencies: Vec<f64> = (0..flows).filter_map(|f| report.mean_latency(f)).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean_latency = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    vec![
        name.to_string(),
        table::f3(report.network_pdr()),
        table::f3(report.worst_flow_pdr()),
        format!("{mean_latency:.1}"),
    ]
}

fn main() -> ExitCode {
    run_main(body)
}

fn body() -> Result<(), BenchError> {
    let opts = RunOptions::try_parse(1)?;
    let topo = testbeds::wustl(opts.seed);
    let channels = ChannelId::range(11, 14).expect("valid");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(&topo, &channels);
    let reps = if opts.quick { 30 } else { 100 };

    println!("== managed vs autonomous scheduling (WUSTL, 4 channels, {reps} hyperperiods) ==");
    let headers = ["scheduler", "PDR", "worst flow", "mean latency (slots)"];
    for flow_count in [30usize, 50] {
        let cfg = FlowSetConfig::new(
            flow_count,
            PeriodRange::new(-1, 0).expect("valid"),
            TrafficPattern::PeerToPeer,
        );
        let Ok(set) = FlowSetGenerator::new(opts.seed ^ 0x0DDC0DE).generate(&comm, &cfg) else {
            continue;
        };
        println!("\n-- {flow_count} flows, periods 0.5 s / 1 s, deadline-constrained delivery --");
        let mut rows = Vec::new();
        // scheduled: NR and RC
        for algo in [Algorithm::Nr, Algorithm::Rc { rho_t: 2 }] {
            match algo.build().schedule(&set, &model) {
                Ok(schedule) => {
                    let report = Simulator::try_new(&topo, &channels, &set, &schedule)
                        .and_then(|sim| {
                            sim.try_run(&SimConfig {
                                seed: opts.seed,
                                repetitions: reps,
                                discovery_probes: 0,
                                ..SimConfig::default()
                            })
                        })
                        .map_err(|e| BenchError::Run(format!("{algo} simulation: {e}")))?;
                    rows.push(summarize(&algo.to_string(), &report, set.len()));
                }
                Err(_) => rows.push(vec![
                    algo.to_string(),
                    "unschedulable".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        // autonomous at several slotframe lengths
        for len in [7u32, 17, 31] {
            let frame = AutonomousSlotframe::receiver_based(topo.node_count(), len, channels.len());
            let sim = AutonomousSimulator::new(&topo, &channels, &set, &frame);
            let report = sim.run(&SimConfig {
                seed: opts.seed,
                repetitions: reps,
                discovery_probes: 0,
                ..SimConfig::default()
            });
            rows.push(summarize(&format!("auto/L={len}"), &report, set.len()));
        }
        print!("{}", table::render(&headers, &rows));
    }
    println!("\nautonomous slotframes trade central coordination for contention and");
    println!("wake-period latency; the managed schedulers hold deadline PDR near 1.");
    std::fs::create_dir_all(results_dir()).map_err(write_err(results_dir()))?;
    Ok(())
}
