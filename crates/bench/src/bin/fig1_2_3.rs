//! Figures 1, 2, 3 — schedulable ratios of NR / RA / RC.
//!
//! * Fig. 1: centralized traffic on the Indriya topology —
//!   (a) channels 3–8 at `P=[2^0,2^2]`, (b) channels 3–8 at `P=[2^-1,2^3]`,
//!   (c) flows at 4 channels.
//! * Fig. 2: the same three panels under peer-to-peer traffic.
//! * Fig. 3: peer-to-peer on the WUSTL topology — (a) channels, (b) flows.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig1_2_3 [-- --sets 100 --quick]
//! ```

use wsan_bench::{results_dir, RunOptions};
use wsan_expr::schedulable::{sweep_channels, sweep_flows, RatioPoint, WorkloadConfig};
use wsan_expr::table;
use wsan_expr::Algorithm;
use wsan_flow::{PeriodRange, TrafficPattern};
use wsan_net::{testbeds, Topology};

fn print_points(title: &str, points: &[RatioPoint], x_label: &str) {
    println!("\n== {title} ==");
    let headers: Vec<&str> = std::iter::once(x_label)
        .chain(points[0].ratios.iter().map(|(name, _)| name.as_str()))
        .collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            std::iter::once(p.x.to_string())
                .chain(p.ratios.iter().map(|(_, r)| table::pct(*r)))
                .collect()
        })
        .collect();
    print!("{}", table::render(&headers, &rows));
}

struct Panel {
    name: &'static str,
    title: String,
    points: Vec<RatioPoint>,
    x_label: &'static str,
}

fn channel_panel(
    name: &'static str,
    topo: &Topology,
    pattern: TrafficPattern,
    periods: PeriodRange,
    flows: usize,
    opts: &RunOptions,
) -> Panel {
    let cfg = WorkloadConfig {
        flow_sets: opts.sets,
        seed: opts.seed,
        ..WorkloadConfig::new(flows, periods, pattern)
    };
    let channels = [3, 4, 5, 6, 7, 8];
    Panel {
        name,
        title: format!(
            "{name}: {} flows, {pattern:?}, P={periods}, topology {}",
            flows,
            topo.name()
        ),
        points: sweep_channels(topo, &channels, &Algorithm::paper_suite(), &cfg),
        x_label: "#ch",
    }
}

fn flow_panel(
    name: &'static str,
    topo: &Topology,
    pattern: TrafficPattern,
    periods: PeriodRange,
    m: usize,
    flow_counts: &[usize],
    opts: &RunOptions,
) -> Panel {
    let cfg = WorkloadConfig {
        flow_sets: opts.sets,
        seed: opts.seed,
        ..WorkloadConfig::new(0, periods, pattern)
    };
    Panel {
        name,
        title: format!("{name}: {m} channels, {pattern:?}, P={periods}, topology {}", topo.name()),
        points: sweep_flows(topo, m, flow_counts, &Algorithm::paper_suite(), &cfg),
        x_label: "#flows",
    }
}

fn main() {
    let opts = RunOptions::parse(100);
    let indriya = testbeds::indriya(1);
    let wustl = testbeds::wustl(1);
    let p_short = PeriodRange::new(0, 2).expect("valid");
    let p_wide = PeriodRange::new(-1, 3).expect("valid");

    let cen = TrafficPattern::Centralized;
    let p2p = TrafficPattern::PeerToPeer;

    let panels = vec![
        channel_panel("fig1a", &indriya, cen, p_short, 60, &opts),
        channel_panel("fig1b", &indriya, cen, p_wide, 55, &opts),
        flow_panel("fig1c", &indriya, cen, p_short, 4, &[30, 40, 50, 60, 70, 80], &opts),
        channel_panel("fig2a", &indriya, p2p, p_short, 90, &opts),
        channel_panel("fig2b", &indriya, p2p, p_wide, 100, &opts),
        flow_panel("fig2c", &indriya, p2p, p_short, 4, &[40, 60, 80, 100, 120, 140], &opts),
        channel_panel("fig3a", &wustl, p2p, p_short, 130, &opts),
        flow_panel("fig3b", &wustl, p2p, p_short, 4, &[60, 90, 120, 150, 180], &opts),
    ];

    for panel in &panels {
        print_points(&panel.title, &panel.points, panel.x_label);
        let path = results_dir().join(format!("{}.json", panel.name));
        table::write_json(&path, &panel.points).expect("write results JSON");
    }
    println!("\nresults written under {}", results_dir().display());
}
