//! Figures 1, 2, 3 — schedulable ratios of NR / RA / RC.
//!
//! * Fig. 1: centralized traffic on the Indriya topology —
//!   (a) channels 3–8 at `P=[2^0,2^2]`, (b) channels 3–8 at `P=[2^-1,2^3]`,
//!   (c) flows at 4 channels.
//! * Fig. 2: the same three panels under peer-to-peer traffic.
//! * Fig. 3: peer-to-peer on the WUSTL topology — (a) channels, (b) flows.
//!
//! Runs as a resumable campaign: every (panel, x) point is checkpointed to
//! `results/fig1_2_3.manifest.jsonl`, so a killed run restarted with
//! `--resume` only recomputes unfinished points.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig1_2_3 [-- --sets 100 --quick --jobs 4 --resume]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, RunOptions};
use wsan_expr::campaigns;
use wsan_expr::schedulable::RatioPoint;
use wsan_expr::table;

fn print_points(title: &str, points: &[RatioPoint], x_label: &str) {
    println!("\n== {title} ==");
    let headers: Vec<&str> = std::iter::once(x_label)
        .chain(points[0].ratios.iter().map(|(name, _)| name.as_str()))
        .collect();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            std::iter::once(p.x.to_string())
                .chain(p.ratios.iter().map(|(_, r)| table::pct(*r)))
                .collect()
        })
        .collect();
    print!("{}", table::render(&headers, &rows));
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = RunOptions::try_parse(100)?;
        let (panels, summary) = campaigns::schedulable(&opts.sweep(), &opts.campaign("fig1_2_3"))?;
        for panel in &panels {
            print_points(&panel.title, &panel.points, &panel.x_label);
            let path = results_dir().join(format!("{}.json", panel.panel));
            table::write_json(&path, &panel.points).map_err(write_err(&path))?;
        }
        println!(
            "\nresults written under {} ({} points executed, {} resumed)",
            results_dir().display(),
            summary.executed,
            summary.resumed
        );
        Ok(())
    })
}
