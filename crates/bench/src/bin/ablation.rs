//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures and quantify the contribution of
//! each piece of the RC design:
//!
//! 1. **ρ_t sensitivity** — the paper fixes `ρ_t = 2` "for a fair
//!    comparison"; how do schedulability and reliability move at 1 and 3?
//! 2. **ρ reset policy** — the paper's text (per transmission) vs. its
//!    pseudocode (per flow).
//! 3. **Laxity heuristic** — RC vs. RC-lite (reuse only on a certain
//!    deadline miss): what Eq. 1 actually buys.
//! 4. **Channel selection** — first-m vs. quality-ranked channels (the
//!    §VII-A remark that more channels can hurt schedulability).
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin ablation [-- --sets 50 --quick]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, BenchError, RunOptions};
use wsan_core::NetworkModel;
use wsan_expr::reliability::{evaluate as reliability, ReliabilityConfig};
use wsan_expr::schedulable::{ratio_at, set_seed, WorkloadConfig};
use wsan_expr::{table, Algorithm};
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, ChannelSelection, Prr};

fn main() -> ExitCode {
    run_main(body)
}

fn body() -> Result<(), BenchError> {
    let opts = RunOptions::try_parse(50)?;
    let wustl = testbeds::wustl(1);
    let indriya = testbeds::indriya(1);
    let channels4 = ChannelId::range(11, 14).expect("valid");

    // ---- 1. rho_t sensitivity -------------------------------------------
    println!("== ablation 1: ρ_t sensitivity (WUSTL, p2p, 4 channels) ==");
    let mut rows = Vec::new();
    for flows in [60usize, 90, 120] {
        let cfg = WorkloadConfig {
            flow_sets: opts.sets,
            seed: opts.seed,
            ..WorkloadConfig::new(
                flows,
                PeriodRange::new(0, 1).expect("valid"),
                TrafficPattern::PeerToPeer,
            )
        };
        let mut row = vec![flows.to_string()];
        for rho_t in [1u32, 2, 3] {
            let r = ratio_at(&wustl, 4, &[Algorithm::Rc { rho_t }], &cfg)[0].1;
            row.push(table::pct(r));
        }
        rows.push(row);
    }
    print!("{}", table::render(&["#flows", "RC ρ_t=1", "RC ρ_t=2", "RC ρ_t=3"], &rows));
    println!("(smaller ρ_t = more permissive reuse = higher schedulability, lower safety)\n");

    // reliability at each rho_t
    println!("-- worst-case PDR by ρ_t (3 flow sets, 40 flows) --");
    let mut rows = Vec::new();
    for rho_t in [1u32, 2, 3] {
        let cfg = ReliabilityConfig {
            flow_sets: 3,
            flow_count: 40,
            repetitions: if opts.quick { 30 } else { 100 },
            seed: opts.seed ^ 0x5151,
            ..ReliabilityConfig::default()
        };
        let res = reliability(&wustl, &channels4, &[Algorithm::Rc { rho_t }], &cfg);
        let mean_worst =
            res.iter().map(|s| s.algorithms[0].worst_pdr).sum::<f64>() / res.len() as f64;
        let mean_reuse: f64 =
            res.iter().map(|s| 1.0 - s.algorithms[0].tx_per_channel.proportion(1)).sum::<f64>()
                / res.len() as f64;
        rows.push(vec![rho_t.to_string(), table::f3(mean_worst), table::pct(mean_reuse)]);
    }
    print!("{}", table::render(&["ρ_t", "mean worst PDR", "shared cells"], &rows));

    // ---- 2 & 3. reset policy and laxity trigger -------------------------
    println!("\n== ablation 2+3: ρ reset policy and the laxity heuristic ==");
    let algos = [
        Algorithm::Rc { rho_t: 2 },
        Algorithm::RcPerFlow { rho_t: 2 },
        Algorithm::RcLite { rho_t: 2 },
    ];
    let mut rows = Vec::new();
    for flows in [80usize, 110, 140] {
        let cfg = WorkloadConfig {
            flow_sets: opts.sets,
            seed: opts.seed,
            ..WorkloadConfig::new(
                flows,
                PeriodRange::new(0, 1).expect("valid"),
                TrafficPattern::PeerToPeer,
            )
        };
        let ratios = ratio_at(&wustl, 4, &algos, &cfg);
        rows.push(vec![
            flows.to_string(),
            table::pct(ratios[0].1),
            table::pct(ratios[1].1),
            table::pct(ratios[2].1),
        ]);
    }
    print!("{}", table::render(&["#flows", "RC", "RC/flow", "RC-lite"], &rows));
    println!("(RC-lite reuses later — only once a miss is certain — and schedules fewer sets)");

    // how much do the variants reuse at a fixed heavy load?
    println!("\n-- reuse volume at 110 flows (single workload) --");
    let comm = wustl.comm_graph(&channels4, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(&wustl, &channels4);
    let fsc =
        FlowSetConfig::new(110, PeriodRange::new(0, 0).expect("valid"), TrafficPattern::PeerToPeer);
    if let Ok(set) = FlowSetGenerator::new(set_seed(opts.seed, 0)).generate(&comm, &fsc) {
        let mut rows = Vec::new();
        for algo in algos {
            let cell = match algo.build().schedule(&set, &model) {
                Ok(s) => {
                    let shared = s.occupied_cells().filter(|(_, _, c)| c.len() > 1).count();
                    let mean_rt = wsan_core::metrics::mean_response_time(&s, &set)
                        .map_or("-".to_string(), |v| format!("{v:.1}"));
                    vec![algo.to_string(), shared.to_string(), mean_rt]
                }
                Err(_) => vec![algo.to_string(), "unschedulable".to_string(), "-".to_string()],
            };
            rows.push(cell);
        }
        print!("{}", table::render(&["variant", "shared cells", "mean response (slots)"], &rows));
    }

    // ---- 4. channel selection -------------------------------------------
    println!("\n== ablation 4: channel selection (Indriya, centralized, 60 flows) ==");
    let strategies: [(&str, ChannelSelection); 3] = [
        ("first-m", ChannelSelection::FirstM),
        ("best-mean", ChannelSelection::BestMeanPrr),
        (
            "most-links",
            ChannelSelection::MostReliableLinks { prr_t: Prr::new(0.9).expect("valid") },
        ),
    ];
    let mut rows = Vec::new();
    for m in [3usize, 4, 5, 6] {
        let mut row = vec![m.to_string()];
        for (_, strategy) in &strategies {
            let picked = strategy.select(&indriya, m);
            // ratio_at selects first-m internally; replicate its loop with
            // the chosen set instead
            let comm = indriya.comm_graph(&picked, Prr::new(0.9).expect("valid"));
            let model = NetworkModel::new(&indriya, &picked);
            let fsc = FlowSetConfig::new(
                60,
                PeriodRange::new(0, 2).expect("valid"),
                TrafficPattern::Centralized,
            );
            let sets = opts.sets.min(40);
            let mut ok = 0usize;
            for i in 0..sets {
                let Ok(set) = FlowSetGenerator::new(set_seed(opts.seed, i)).generate(&comm, &fsc)
                else {
                    continue;
                };
                if (Algorithm::Rc { rho_t: 2 }).build().schedule(&set, &model).is_ok() {
                    ok += 1;
                }
            }
            row.push(table::pct(ok as f64 / sets as f64));
        }
        rows.push(row);
    }
    print!("{}", table::render(&["#ch", "first-m", "best-mean", "most-links"], &rows));

    // ---- 5. response times: why reuse buys schedulability ---------------
    println!("\n== ablation 5: mean job response time, slots (WUSTL, p2p, 4 channels) ==");
    let mut rows = Vec::new();
    for flows in [60usize, 90, 120] {
        let fsc = FlowSetConfig::new(
            flows,
            PeriodRange::new(0, 1).expect("valid"),
            TrafficPattern::PeerToPeer,
        );
        let Ok(set) = FlowSetGenerator::new(set_seed(opts.seed, 1)).generate(&comm, &fsc) else {
            continue;
        };
        let mut row = vec![flows.to_string()];
        for algo in [Algorithm::Nr, Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }] {
            let cell = match algo.build().schedule(&set, &model) {
                Ok(s) => wsan_core::metrics::mean_response_time(&s, &set)
                    .map_or("-".to_string(), |v| format!("{v:.1}")),
                Err(_) => "unsched.".to_string(),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    print!("{}", table::render(&["#flows", "NR", "RA", "RC"], &rows));
    println!("(reuse finishes jobs earlier; RC only spends reuse once laxity demands it)");

    // ---- 6. priority assignment: deadline- vs rate-monotonic ------------
    println!("\n== ablation 6: DM vs RM priorities (WUSTL, p2p, 4 channels, RC) ==");
    let mut rows = Vec::new();
    for flows in [100usize, 120, 140] {
        let fsc = FlowSetConfig::new(
            flows,
            PeriodRange::new(-1, 1).expect("valid"),
            TrafficPattern::PeerToPeer,
        );
        let sets = opts.sets.min(30);
        let mut ok = [0u32; 2];
        for i in 0..sets {
            let Ok(dm_set) = FlowSetGenerator::new(set_seed(opts.seed, i)).generate(&comm, &fsc)
            else {
                continue;
            };
            // re-prioritize the same flows rate-monotonically
            let rm_set = wsan_flow::priority::rate_monotonic(
                dm_set.iter().cloned().collect(),
                dm_set.access_points().to_vec(),
            );
            for (k, set) in [dm_set, rm_set].iter().enumerate() {
                if (Algorithm::Rc { rho_t: 2 }).build().schedule(set, &model).is_ok() {
                    ok[k] += 1;
                }
            }
        }
        rows.push(vec![
            flows.to_string(),
            table::pct(f64::from(ok[0]) / sets as f64),
            table::pct(f64::from(ok[1]) / sets as f64),
        ]);
    }
    print!("{}", table::render(&["#flows", "DM", "RM"], &rows));
    println!("(with deadlines drawn from [P/2, P], DM and RM orders mostly agree)");

    std::fs::create_dir_all(results_dir()).map_err(write_err(results_dir()))?;
    println!(
        "\n(ablation tables are printed only; figure JSONs live beside them in {})",
        results_dir().display()
    );
    Ok(())
}
