//! One-shot reproduction entry point: runs every figure binary and collects
//! their console output under `results/logs/`.
//!
//! Runs as a resumable campaign checkpointed to
//! `results/logs/all_figures.manifest.jsonl` — re-running with `--resume`
//! skips figures that already completed and forwards `--resume` to the
//! unfinished ones so they continue from their own manifests. A failing
//! figure is recorded and reported at the end instead of aborting the rest.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin all_figures [-- --quick --seed 1 --jobs 2 --resume]
//! ```

use serde::{Deserialize, Serialize};
use std::process::{Command, ExitCode};
use wsan_bench::{results_dir, run_main, write_err, BenchError, RunOptions};
use wsan_expr::campaign::{self, CampaignConfig, PointSpec};
use wsan_expr::table;

const FIGURES: &[&str] = &[
    "fig1_2_3",
    "fig4_5",
    "fig6",
    "fig7",
    "fig8_9",
    "fig10_11",
    "ablation",
    "orchestra_cmp",
    "coexistence",
];

/// What running one figure binary produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FigureOutcome {
    figure: String,
    /// Whether the binary exited successfully (false also covers "could not
    /// be launched").
    success: bool,
    /// The process exit status code, when there was one.
    status: Option<i32>,
    /// Wall-clock run time of the binary.
    elapsed_ms: u64,
}

/// A checkpointed failure must re-run on `--resume`, not replay as failed:
/// drop manifest data lines whose outcome was unsuccessful (the engine then
/// treats those figures as unfinished).
fn prune_failed_checkpoints(manifest: &std::path::Path) -> std::io::Result<()> {
    let text = match std::fs::read_to_string(manifest) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut kept = String::new();
    for (i, line) in text.lines().enumerate() {
        let drop = i > 0
            && serde_json::from_str::<(String, FigureOutcome)>(line)
                .is_ok_and(|(_, outcome)| !outcome.success);
        if !drop {
            kept.push_str(line);
            kept.push('\n');
        }
    }
    if kept.len() != text.len() {
        std::fs::write(manifest, kept)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = RunOptions::try_parse(100)?;
        let exe_dir = std::env::current_exe()
            .map_err(|e| BenchError::Run(format!("cannot locate own binary: {e}")))
            .and_then(|p| {
                p.parent().map(|d| d.to_path_buf()).ok_or_else(|| {
                    BenchError::Run("own binary path has no parent directory".to_string())
                })
            })?;
        let log_dir = results_dir().join("logs");
        std::fs::create_dir_all(&log_dir).map_err(write_err(&log_dir))?;

        let manifest = log_dir.join("all_figures.manifest.jsonl");
        if opts.resume {
            prune_failed_checkpoints(&manifest).map_err(write_err(&manifest))?;
        }
        let points: Vec<PointSpec<&str>> =
            FIGURES.iter().map(|&f| PointSpec::new(f.to_string(), f)).collect();
        let cfg = CampaignConfig {
            // each point is a whole process; run them one at a time unless
            // the user explicitly asks for more
            jobs: if opts.jobs == 0 { 1 } else { opts.jobs },
            window: 0,
            manifest: Some(manifest),
            resume: opts.resume,
        };
        let mut outcomes: Vec<FigureOutcome> = Vec::new();
        let summary = campaign::run(
            "all_figures",
            &points,
            &cfg,
            |p| {
                let figure = p.input;
                let mut cmd = Command::new(exe_dir.join(figure));
                cmd.arg("--seed").arg(opts.seed.to_string());
                if opts.quick {
                    cmd.arg("--quick");
                }
                if opts.resume {
                    cmd.arg("--resume");
                }
                let started = std::time::Instant::now();
                let (success, status) = match cmd.output() {
                    Ok(output) => {
                        let log = log_dir.join(format!("{figure}.txt"));
                        let mut body = output.stdout;
                        body.extend_from_slice(&output.stderr);
                        std::fs::write(&log, &body)
                            .map_err(|e| format!("cannot write {}: {e}", log.display()))?;
                        (output.status.success(), output.status.code())
                    }
                    Err(e) => {
                        eprintln!(
                            "could not launch {figure} ({e}); build the workspace in release first"
                        );
                        (false, None)
                    }
                };
                Ok(FigureOutcome {
                    figure: figure.to_string(),
                    success,
                    status,
                    elapsed_ms: started.elapsed().as_millis() as u64,
                })
            },
            |_, r: FigureOutcome| {
                let log = log_dir.join(format!("{}.txt", r.figure));
                if r.success {
                    println!("{}: ok ({} ms) → {}", r.figure, r.elapsed_ms, log.display());
                } else {
                    println!("{}: FAILED (status {:?}) → {}", r.figure, r.status, log.display());
                }
                outcomes.push(r);
            },
        )?;

        let timings = log_dir.join("timings.json");
        table::write_json(&timings, &outcomes).map_err(write_err(&timings))?;
        println!("per-figure timings written to {}", timings.display());
        println!("({} figures run, {} resumed)", summary.executed, summary.resumed);

        let failures: Vec<&str> =
            outcomes.iter().filter(|o| !o.success).map(|o| o.figure.as_str()).collect();
        if failures.is_empty() {
            println!("\nall figures regenerated; see EXPERIMENTS.md for paper-vs-measured notes");
            Ok(())
        } else {
            Err(BenchError::Run(format!("failed figures: {failures:?}")))
        }
    })
}
