//! One-shot reproduction entry point: runs every figure binary in sequence
//! and collects their console output under `results/logs/`.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin all_figures [-- --quick --seed 1]
//! ```

use std::process::Command;
use wsan_bench::{results_dir, RunOptions};
use wsan_obs::PhaseProfiler;

const FIGURES: &[&str] = &[
    "fig1_2_3",
    "fig4_5",
    "fig6",
    "fig7",
    "fig8_9",
    "fig10_11",
    "ablation",
    "orchestra_cmp",
    "coexistence",
];

fn main() {
    let opts = RunOptions::parse(100);
    let exe_dir =
        std::env::current_exe().expect("own path").parent().expect("bin dir").to_path_buf();
    let log_dir = results_dir().join("logs");
    std::fs::create_dir_all(&log_dir).expect("create log dir");
    let mut failures = Vec::new();
    let mut profiler = PhaseProfiler::new();
    for figure in FIGURES {
        let mut cmd = Command::new(exe_dir.join(figure));
        cmd.arg("--seed").arg(opts.seed.to_string());
        if opts.quick {
            cmd.arg("--quick");
        }
        println!("running {figure} …");
        let _phase = profiler.phase(figure);
        match cmd.output() {
            Ok(output) => {
                let log = log_dir.join(format!("{figure}.txt"));
                let mut body = output.stdout;
                body.extend_from_slice(&output.stderr);
                std::fs::write(&log, &body).expect("write log");
                if output.status.success() {
                    println!("  ok → {}", log.display());
                } else {
                    println!("  FAILED (status {:?}) → {}", output.status.code(), log.display());
                    failures.push(*figure);
                }
            }
            Err(e) => {
                println!("  could not launch ({e}); build the workspace in release first");
                failures.push(*figure);
            }
        }
    }
    let profile = profiler.finish();
    print!("\n{}", profile.render());
    let timings = log_dir.join("timings.json");
    match serde_json::to_string_pretty(&profile) {
        Ok(json) => {
            std::fs::write(&timings, json).expect("write timings");
            println!("per-figure timings written to {}", timings.display());
        }
        Err(e) => println!("could not serialise timings: {e}"),
    }
    if failures.is_empty() {
        println!("\nall figures regenerated; see EXPERIMENTS.md for paper-vs-measured notes");
    } else {
        println!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
