//! Figures 10 and 11 — detecting reliability degradation caused by channel
//! reuse.
//!
//! 50 peer-to-peer flows at 1 s on channels 11–14 (WUSTL), 6 epochs of 18
//! PRR samples per link per condition; run once in a clean environment and
//! once with a WiFi interferer per floor. Every reuse-involved link with
//! `PRR_r < PRR_t` is classified by the K-S policy:
//!
//! * Fig. 10: PRR under reuse vs. contention-free slots for *rejected*
//!   (reuse-degraded) and *accepted* (externally degraded) links,
//! * Fig. 11: the number of rejected links per epoch — the verdicts should
//!   be stable across epochs.
//!
//! Runs as a resumable campaign (one point per scheduler) checkpointed to
//! `results/fig10_11.manifest.jsonl`.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig10_11 [-- --seed 1 --quick --resume]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, RunOptions};
use wsan_detect::LinkVerdict;
use wsan_expr::campaigns;
use wsan_expr::detection::DetectionConfig;
use wsan_expr::table;

fn main() -> ExitCode {
    run_main(|| {
        let opts = RunOptions::try_parse(1)?;
        let (runs, summary) = campaigns::detection_runs(&opts.sweep(), &opts.campaign("fig10_11"))?;
        // only the policy threshold is needed for printing; it is not swept
        let prr_threshold = DetectionConfig::default().policy.prr_threshold;

        for run in &runs {
            println!(
                "\n==== scheduler {} ({} links involved in reuse) ====",
                run.algorithm, run.links_with_reuse
            );
            for (env, epochs) in [("clean", &run.clean), ("wifi", &run.interfered)] {
                // fig11: rejected per epoch
                println!("-- fig11 [{env}]: verdicts per epoch --");
                let headers = ["epoch", "<PRR_t", "rejected", "accepted"];
                let rows: Vec<Vec<String>> = epochs
                    .iter()
                    .map(|e| {
                        vec![
                            e.epoch.to_string(),
                            e.below_threshold(prr_threshold).len().to_string(),
                            e.rejected().len().to_string(),
                            e.accepted().len().to_string(),
                        ]
                    })
                    .collect();
                print!("{}", table::render(&headers, &rows));
                println!(
                    "(the naive threshold-only policy of §VI would reschedule every '<PRR_t' link;\n                 the K-S policy narrows the reschedule set to the 'rejected' column)"
                );

                // fig10: PRR pairs of below-threshold links, by verdict
                println!("-- fig10 [{env}]: below-threshold links (mean over epochs) --");
                let mut acc: std::collections::BTreeMap<
                    (wsan_net::DirectedLink, &'static str),
                    (f64, f64, usize),
                > = Default::default();
                for epoch in epochs.iter() {
                    for r in &epoch.records {
                        let class = match r.verdict {
                            LinkVerdict::ReuseDegraded => "reject",
                            LinkVerdict::ExternalCause => "accept",
                            _ => continue,
                        };
                        let reuse_mean = r.prr_r.unwrap_or(0.0);
                        let cf_mean = if r.cf_samples.is_empty() {
                            f64::NAN
                        } else {
                            r.cf_samples.iter().sum::<f64>() / r.cf_samples.len() as f64
                        };
                        let e = acc.entry((r.link, class)).or_insert((0.0, 0.0, 0));
                        e.0 += reuse_mean;
                        e.1 += cf_mean;
                        e.2 += 1;
                    }
                }
                if acc.is_empty() {
                    println!("(no links below PRR_t)");
                } else {
                    let headers = ["link", "verdict", "PRR reuse", "PRR cont.-free", "epochs"];
                    let rows: Vec<Vec<String>> = acc
                        .iter()
                        .map(|((link, class), (r, c, n))| {
                            vec![
                                link.to_string(),
                                class.to_string(),
                                table::f3(r / *n as f64),
                                table::f3(c / *n as f64),
                                n.to_string(),
                            ]
                        })
                        .collect();
                    print!("{}", table::render(&headers, &rows));
                }
            }
        }
        let path = results_dir().join("fig10_11.json");
        table::write_json(&path, &runs).map_err(write_err(&path))?;
        println!(
            "\nresults written under {} ({} points executed, {} resumed)",
            results_dir().display(),
            summary.executed,
            summary.resumed
        );
        Ok(())
    })
}
