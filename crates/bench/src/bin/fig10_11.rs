//! Figures 10 and 11 — detecting reliability degradation caused by channel
//! reuse.
//!
//! 50 peer-to-peer flows at 1 s on channels 11–14 (WUSTL), 6 epochs of 18
//! PRR samples per link per condition; run once in a clean environment and
//! once with a WiFi interferer per floor. Every reuse-involved link with
//! `PRR_r < PRR_t` is classified by the K-S policy:
//!
//! * Fig. 10: PRR under reuse vs. contention-free slots for *rejected*
//!   (reuse-degraded) and *accepted* (externally degraded) links,
//! * Fig. 11: the number of rejected links per epoch — the verdicts should
//!   be stable across epochs.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig10_11 [-- --seed 1 --quick]
//! ```

use wsan_bench::{results_dir, RunOptions};
use wsan_detect::LinkVerdict;
use wsan_expr::detection::{evaluate, DetectionConfig};
use wsan_expr::{table, Algorithm};
use wsan_net::{testbeds, ChannelId};

fn main() {
    let opts = RunOptions::parse(1);
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).expect("valid");
    let mut cfg = DetectionConfig {
        epochs: if opts.quick { 2 } else { 6 },
        samples_per_epoch: 18,
        window_reps: if opts.quick { 5 } else { 10 },
        seed: opts.seed,
        ..DetectionConfig::default()
    };
    if opts.quick {
        cfg.flow_count = 60;
    }
    let runs =
        evaluate(&topo, &channels, &[Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }], &cfg);

    for run in &runs {
        println!(
            "\n==== scheduler {} ({} links involved in reuse) ====",
            run.algorithm, run.links_with_reuse
        );
        for (env, epochs) in [("clean", &run.clean), ("wifi", &run.interfered)] {
            // fig11: rejected per epoch
            println!("-- fig11 [{env}]: verdicts per epoch --");
            let headers = ["epoch", "<PRR_t", "rejected", "accepted"];
            let rows: Vec<Vec<String>> = epochs
                .iter()
                .map(|e| {
                    vec![
                        e.epoch.to_string(),
                        e.below_threshold(cfg.policy.prr_threshold).len().to_string(),
                        e.rejected().len().to_string(),
                        e.accepted().len().to_string(),
                    ]
                })
                .collect();
            print!("{}", table::render(&headers, &rows));
            println!(
                "(the naive threshold-only policy of §VI would reschedule every '<PRR_t' link;\n                 the K-S policy narrows the reschedule set to the 'rejected' column)"
            );

            // fig10: PRR pairs of below-threshold links, by verdict
            println!("-- fig10 [{env}]: below-threshold links (mean over epochs) --");
            let mut acc: std::collections::BTreeMap<
                (wsan_net::DirectedLink, &'static str),
                (f64, f64, usize),
            > = Default::default();
            for epoch in epochs.iter() {
                for r in &epoch.records {
                    let class = match r.verdict {
                        LinkVerdict::ReuseDegraded => "reject",
                        LinkVerdict::ExternalCause => "accept",
                        _ => continue,
                    };
                    let reuse_mean = r.prr_r.unwrap_or(0.0);
                    let cf_mean = if r.cf_samples.is_empty() {
                        f64::NAN
                    } else {
                        r.cf_samples.iter().sum::<f64>() / r.cf_samples.len() as f64
                    };
                    let e = acc.entry((r.link, class)).or_insert((0.0, 0.0, 0));
                    e.0 += reuse_mean;
                    e.1 += cf_mean;
                    e.2 += 1;
                }
            }
            if acc.is_empty() {
                println!("(no links below PRR_t)");
            } else {
                let headers = ["link", "verdict", "PRR reuse", "PRR cont.-free", "epochs"];
                let rows: Vec<Vec<String>> = acc
                    .iter()
                    .map(|((link, class), (r, c, n))| {
                        vec![
                            link.to_string(),
                            class.to_string(),
                            table::f3(r / *n as f64),
                            table::f3(c / *n as f64),
                            n.to_string(),
                        ]
                    })
                    .collect();
                print!("{}", table::render(&headers, &rows));
            }
        }
    }
    table::write_json(results_dir().join("fig10_11.json"), &runs).expect("write results JSON");
    println!("\nresults written under {}", results_dir().display());
}
