//! `bench_check` — the benchmark regression gate.
//!
//! Compares freshly produced `BENCH_*.json` reports against the committed
//! baselines and fails (non-zero exit) when any timing series regressed
//! beyond the tolerance. Timing fields are recognised generically: every
//! numeric field whose key carries an `ns` segment (`median_delta_ns`,
//! `median_ns_per_schedule`) is compared as lower-is-better, so the gate
//! keeps working as the tracked bench binaries grow new scenarios and
//! fields.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin bench_check -- \
//!     --fresh /tmp/bench-fresh [--baseline .] [--tolerance 1.5] [--min-ns 10000]
//! ```
//!
//! * `--fresh DIR` — directory holding the freshly generated reports,
//! * `--baseline DIR` — directory holding the committed baselines
//!   (default `.`, the repo root),
//! * `--tolerance X` — fail when `fresh > X * baseline` (default 1.5),
//! * `--min-ns N` — ignore fields whose baseline is below N nanoseconds;
//!   sub-threshold timings are dominated by scheduler noise (default 10000).
//!
//! The gate is advisory in CI (timing on shared runners is noisy) but
//! authoritative enough locally to catch order-of-magnitude mistakes.

use serde::value::Value;
use std::path::Path;
use std::process::ExitCode;
use wsan_bench::{run_main, BenchError};

/// The tracked reports the gate knows about.
const REPORTS: &[&str] = &[
    "BENCH_scheduler.json",
    "BENCH_sim.json",
    "BENCH_gateway.json",
    "BENCH_shard.json",
    "BENCH_graph.json",
];

struct Options {
    fresh: std::path::PathBuf,
    baseline: std::path::PathBuf,
    tolerance: f64,
    min_ns: f64,
}

fn parse_args() -> Result<Options, BenchError> {
    const USAGE: &str = "supported: --fresh DIR --baseline DIR --tolerance X --min-ns N";
    let mut opts = Options {
        fresh: std::path::PathBuf::new(),
        baseline: std::path::PathBuf::from("."),
        tolerance: 1.5,
        min_ns: 10_000.0,
    };
    let mut args = std::env::args().skip(1);
    fn value<T: std::str::FromStr>(flag: &str, next: Option<String>) -> Result<T, BenchError> {
        let raw =
            next.ok_or_else(|| BenchError::Usage(format!("{flag} needs a value; {USAGE}")))?;
        raw.parse()
            .map_err(|_| BenchError::Usage(format!("{flag} got malformed value '{raw}'; {USAGE}")))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => opts.fresh = value("--fresh", args.next())?,
            "--baseline" => opts.baseline = value("--baseline", args.next())?,
            "--tolerance" => opts.tolerance = value("--tolerance", args.next())?,
            "--min-ns" => opts.min_ns = value("--min-ns", args.next())?,
            other => return Err(BenchError::Usage(format!("unknown argument '{other}'; {USAGE}"))),
        }
    }
    if opts.fresh.as_os_str().is_empty() {
        return Err(BenchError::Usage(format!("--fresh DIR is required; {USAGE}")));
    }
    if opts.tolerance.is_nan() || opts.tolerance <= 1.0 {
        return Err(BenchError::Usage("--tolerance must be > 1.0".to_string()));
    }
    Ok(opts)
}

/// One compared timing field.
struct Comparison {
    path: String,
    baseline: f64,
    fresh: f64,
}

impl Comparison {
    fn ratio(&self) -> f64 {
        if self.baseline <= 0.0 {
            f64::INFINITY
        } else {
            self.fresh / self.baseline
        }
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// True for keys carrying a nanosecond timing: any `_`-separated segment
/// equal to `ns` (`median_delta_ns`, `median_ns_per_schedule`), so
/// throughput fields like `admissions_per_sec` never match.
fn is_ns_key(key: &str) -> bool {
    key.split('_').any(|segment| segment == "ns")
}

/// Walks `baseline` and `fresh` in lockstep (maps matched by key, arrays
/// by index — the tracked bins emit scenarios deterministically) and
/// collects every numeric field whose key has an `ns` segment.
fn collect(path: &str, baseline: &Value, fresh: &Value, out: &mut Vec<Comparison>) {
    match (baseline, fresh) {
        (Value::Map(b), Value::Map(f)) => {
            for (key, bv) in b {
                let Some(fv) = f.iter().find(|(k, _)| k == key).map(|(_, v)| v) else {
                    continue;
                };
                let child = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                if is_ns_key(key) {
                    if let (Some(bn), Some(fn_)) = (numeric(bv), numeric(fv)) {
                        out.push(Comparison { path: child, baseline: bn, fresh: fn_ });
                        continue;
                    }
                }
                collect(&child, bv, fv, out);
            }
        }
        (Value::Seq(b), Value::Seq(f)) => {
            for (i, (bv, fv)) in b.iter().zip(f.iter()).enumerate() {
                // Prefer the element's own name for readable paths.
                let label = bv
                    .get("name")
                    .and_then(|n| match n {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| i.to_string());
                collect(&format!("{path}[{label}]"), bv, fv, out);
            }
        }
        _ => {}
    }
}

/// Compares one report pair; returns the regressed fields.
fn check_report(
    name: &str,
    baseline_dir: &Path,
    fresh_dir: &Path,
    tolerance: f64,
    min_ns: f64,
) -> Result<Vec<Comparison>, BenchError> {
    let read = |path: &Path| -> Result<Value, BenchError> {
        let raw = std::fs::read_to_string(path)
            .map_err(|e| BenchError::Run(format!("cannot read {}: {e}", path.display())))?;
        serde_json::from_str(&raw)
            .map_err(|e| BenchError::Run(format!("cannot parse {}: {e}", path.display())))
    };
    let baseline = read(&baseline_dir.join(name))?;
    let fresh = read(&fresh_dir.join(name))?;
    if baseline.get("schema") != fresh.get("schema") {
        return Err(BenchError::Run(format!("{name}: schema tag mismatch")));
    }
    let mut comparisons = Vec::new();
    collect("", &baseline, &fresh, &mut comparisons);
    if comparisons.is_empty() {
        return Err(BenchError::Run(format!("{name}: no comparable ns timing fields found")));
    }
    let mut regressed = Vec::new();
    let mut checked = 0usize;
    for c in comparisons {
        if c.baseline < min_ns {
            continue;
        }
        checked += 1;
        if c.fresh > c.baseline * tolerance {
            println!(
                "  REGRESSED {name}:{} — {:.0} ns -> {:.0} ns ({:.2}x > {tolerance}x)",
                c.path,
                c.baseline,
                c.fresh,
                c.ratio()
            );
            regressed.push(c);
        }
    }
    println!(
        "{name}: {checked} timing field(s) checked, {} regressed (tolerance {tolerance}x)",
        regressed.len()
    );
    Ok(regressed)
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = parse_args()?;
        let mut total_regressed = 0usize;
        let mut compared = 0usize;
        for name in REPORTS {
            if !opts.baseline.join(name).exists() {
                println!("{name}: no committed baseline, skipping");
                continue;
            }
            if !opts.fresh.join(name).exists() {
                println!("{name}: not present in {}, skipping", opts.fresh.display());
                continue;
            }
            compared += 1;
            total_regressed +=
                check_report(name, &opts.baseline, &opts.fresh, opts.tolerance, opts.min_ns)?.len();
        }
        if compared == 0 {
            return Err(BenchError::Run("no report pairs to compare".to_string()));
        }
        if total_regressed > 0 {
            return Err(BenchError::Run(format!(
                "{total_regressed} timing field(s) regressed beyond {}x",
                opts.tolerance
            )));
        }
        println!("bench_check: OK ({compared} report(s), no regression)");
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(json: &str) -> Value {
        serde_json::from_str(json).unwrap()
    }

    #[test]
    fn collects_only_ns_fields_and_labels_paths() {
        let baseline = parse(
            r#"{"schema":"s/1","iters":3,
                "scenarios":[{"name":"dense","median_ns":1000,"per_sec":9.0,
                              "median_ns_per_placement":120,
                              "admissions_per_sec":5000,
                              "algos":[{"name":"RC","run_ns":50}]}]}"#,
        );
        let fresh = parse(
            r#"{"schema":"s/1","iters":3,
                "scenarios":[{"name":"dense","median_ns":2000,"per_sec":4.0,
                              "median_ns_per_placement":130,
                              "admissions_per_sec":2500,
                              "algos":[{"name":"RC","run_ns":75}]}]}"#,
        );
        let mut out = Vec::new();
        collect("", &baseline, &fresh, &mut out);
        let paths: Vec<&str> = out.iter().map(|c| c.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "scenarios[dense].median_ns",
                "scenarios[dense].median_ns_per_placement",
                "scenarios[dense].algos[RC].run_ns",
            ]
        );
        assert_eq!(out[0].fresh, 2000.0);
        assert!((out[0].ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn null_and_missing_fields_are_skipped() {
        let baseline = parse(r#"{"a_ns":null,"b_ns":100,"c_ns":7}"#);
        let fresh = parse(r#"{"a_ns":5,"b_ns":null}"#);
        let mut out = Vec::new();
        collect("", &baseline, &fresh, &mut out);
        assert!(out.is_empty(), "only both-numeric pairs compare");
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let dir = std::env::temp_dir().join("wsan-bench-check");
        let _ = std::fs::remove_dir_all(&dir);
        let base = dir.join("base");
        let fresh = dir.join("fresh");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();
        let report = |ns: u64| {
            format!(r#"{{"schema":"wsan.sim_bench/1","scenarios":[{{"name":"x","run_ns":{ns}}}]}}"#)
        };
        std::fs::write(base.join("BENCH_sim.json"), report(100_000)).unwrap();
        std::fs::write(fresh.join("BENCH_sim.json"), report(120_000)).unwrap();
        let ok = check_report("BENCH_sim.json", &base, &fresh, 1.5, 10_000.0).unwrap();
        assert!(ok.is_empty());
        std::fs::write(fresh.join("BENCH_sim.json"), report(200_000)).unwrap();
        let bad = check_report("BENCH_sim.json", &base, &fresh, 1.5, 10_000.0).unwrap();
        assert_eq!(bad.len(), 1);
        // below the noise floor nothing is compared, so nothing regresses
        std::fs::write(base.join("BENCH_sim.json"), report(500)).unwrap();
        std::fs::write(fresh.join("BENCH_sim.json"), report(5_000)).unwrap();
        let noisy = check_report("BENCH_sim.json", &base, &fresh, 1.5, 10_000.0).unwrap();
        assert!(noisy.is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }
}
