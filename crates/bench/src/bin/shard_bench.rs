//! `shard_bench` — the tracked multi-gateway scaling benchmark.
//!
//! Generates one ~1200-node city plant and schedules it end to end —
//! partition, per-shard scheduling on the worker pool, stitch,
//! whole-network validation — at increasing shard counts, with shard
//! count 1 as the single-gateway baseline. Writes `BENCH_shard.json`
//! (schema-checked by ci.sh) so the sharded-scheduling wall-clock
//! trajectory is comparable across PRs. Every timed run also re-checks
//! the stitched-schedule digest against a sequential (`jobs = 1`) run:
//! the pool must never change the schedule.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin shard_bench [-- --iters 5 --quick --out PATH]
//! ```
//!
//! * `--iters N` — timed repetitions per shard count (default 5),
//! * `--seed S` — plant + workload seed (default 42),
//! * `--nodes N` — target plant size (default 1200),
//! * `--quick` — caps iterations at 2 for a smoke pass,
//! * `--out PATH` — output path (default `results/BENCH_shard.json`).

use serde::Serialize;
use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, BenchError};
use wsan_core::shard::ShardConfig;
use wsan_expr::sharding::schedule_sharded;
use wsan_expr::Algorithm;
use wsan_net::plants::{generate, PlantConfig};
use wsan_net::ChannelId;

/// The file-format tag checked by ci.sh's smoke step.
const SCHEMA: &str = "wsan.shard_bench/1";

/// Total flows scheduled across the whole plant, constant over every
/// shard count (divisible by 1, 2, 4, and 8) so the comparison is fair.
const TOTAL_FLOWS: usize = 24;

#[derive(Debug, Serialize)]
struct ScenarioResult {
    /// Shards (= gateways); 1 is the single-gateway baseline.
    shards: u64,
    /// Spectrum colors the shard conflict graph needed.
    colors: u64,
    /// Flows scheduled (summed over shards).
    flows: u64,
    /// Entries in the stitched whole-network schedule.
    entries: u64,
    /// Stitched hyperperiod in slots.
    horizon: u64,
    /// Stitched-schedule digest — identical for every iteration and for
    /// `jobs = 1` vs the full pool.
    digest: String,
    /// Median wall-clock of partition + parallel per-shard scheduling.
    median_schedule_ns: u64,
    /// Median wall-clock of stitching the shard schedules.
    median_stitch_ns: u64,
    /// Median wall-clock of whole-network validation.
    median_validate_ns: u64,
    /// `median_schedule_ns(shards = 1) / median_schedule_ns` — the
    /// multi-gateway acceptance series.
    speedup_vs_single: f64,
}

/// One point of the large-plant scale sweep: the full pipeline at a node
/// count far beyond the scenario plant, pinning that the capped-distance
/// path keeps the 5k/10k-node runs schedulable and deterministic.
#[derive(Debug, Serialize)]
struct ScalePoint {
    /// Target plant size requested from the generator.
    target_nodes: u64,
    /// Nodes in the generated plant.
    nodes: u64,
    /// Shards (= gateways).
    shards: u64,
    /// Spectrum colors the shard conflict graph needed.
    colors: u64,
    /// Flows scheduled (summed over shards).
    flows: u64,
    /// Entries in the stitched whole-network schedule.
    entries: u64,
    /// Stitched-schedule digest — identical for every iteration and for
    /// `jobs = 1` vs the full pool.
    digest: String,
    /// Median wall-clock of partition + parallel per-shard scheduling.
    median_schedule_ns: u64,
    /// Median wall-clock of stitching the shard schedules.
    median_stitch_ns: u64,
    /// Median wall-clock of whole-network validation.
    median_validate_ns: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    iters: u64,
    seed: u64,
    target_nodes: u64,
    nodes: u64,
    links: u64,
    channels: u64,
    algorithm: String,
    scenarios: Vec<ScenarioResult>,
    /// 5k/10k-node pipeline points (fewer iterations — plant generation
    /// and the runs themselves dominate wall-clock at this scale).
    scale: Vec<ScalePoint>,
}

struct Options {
    iters: usize,
    seed: u64,
    nodes: usize,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Options, BenchError> {
    const USAGE: &str = "supported: --iters N --seed S --nodes N --quick --out PATH";
    let mut opts = Options { iters: 5, seed: 42, nodes: 1200, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => {
                let raw = args
                    .next()
                    .ok_or_else(|| BenchError::Usage(format!("--iters needs a value; {USAGE}")))?;
                opts.iters = raw.parse().map_err(|_| {
                    BenchError::Usage(format!("--iters got malformed value '{raw}'; {USAGE}"))
                })?;
            }
            "--seed" => {
                let raw = args
                    .next()
                    .ok_or_else(|| BenchError::Usage(format!("--seed needs a value; {USAGE}")))?;
                opts.seed = raw.parse().map_err(|_| {
                    BenchError::Usage(format!("--seed got malformed value '{raw}'; {USAGE}"))
                })?;
            }
            "--nodes" => {
                let raw = args
                    .next()
                    .ok_or_else(|| BenchError::Usage(format!("--nodes needs a value; {USAGE}")))?;
                opts.nodes = raw.parse().map_err(|_| {
                    BenchError::Usage(format!("--nodes got malformed value '{raw}'; {USAGE}"))
                })?;
            }
            "--out" => {
                opts.out =
                    Some(std::path::PathBuf::from(args.next().ok_or_else(|| {
                        BenchError::Usage(format!("--out needs a value; {USAGE}"))
                    })?));
            }
            "--quick" => opts.iters = opts.iters.min(2),
            other => return Err(BenchError::Usage(format!("unknown argument {other}; {USAGE}"))),
        }
    }
    if opts.iters == 0 {
        return Err(BenchError::Usage(format!("--iters must be at least 1; {USAGE}")));
    }
    Ok(opts)
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = parse_args()?;
        let plant_cfg = PlantConfig::city(format!("city-{}", opts.nodes), opts.nodes);
        let plant = generate(&plant_cfg, opts.seed);
        let channels = ChannelId::all();
        let algo = Algorithm::Rc { rho_t: 2 };
        println!(
            "== shard_bench: {} iters, seed {}, {} nodes, {} links ==",
            opts.iters,
            opts.seed,
            plant.node_count(),
            plant.links().len()
        );

        let mut report = Report {
            schema: SCHEMA.to_string(),
            iters: opts.iters as u64,
            seed: opts.seed,
            target_nodes: opts.nodes as u64,
            nodes: plant.node_count() as u64,
            links: plant.links().len() as u64,
            channels: channels.len() as u64,
            algorithm: algo.to_string(),
            scenarios: Vec::new(),
            scale: Vec::new(),
        };

        let mut single_gateway_ns = None;
        for shards in [1usize, 2, 4, 8] {
            let cfg = ShardConfig {
                flows_per_shard: TOTAL_FLOWS / shards,
                ..ShardConfig::new(shards, opts.seed, 0)
            };
            let mut schedule_samples = Vec::with_capacity(opts.iters);
            let mut stitch_samples = Vec::with_capacity(opts.iters);
            let mut validate_samples = Vec::with_capacity(opts.iters);
            let mut last = None;
            for _ in 0..opts.iters {
                let outcome = schedule_sharded(&plant, &channels, &cfg, &algo, 0)
                    .map_err(|e| BenchError::Run(format!("{shards} shard(s): {e}")))?;
                if let Some(prev) = &last {
                    if *prev != outcome.report.digest {
                        return Err(BenchError::Run(format!(
                            "{shards} shard(s): digest changed between iterations"
                        )));
                    }
                }
                last = Some(outcome.report.digest);
                schedule_samples.push(outcome.report.schedule_ns.max(1));
                stitch_samples.push(outcome.report.stitch_ns.max(1));
                validate_samples.push(outcome.report.validate_ns.max(1));
                if schedule_samples.len() == opts.iters {
                    // determinism pin: the full pool and a sequential run
                    // must stitch byte-identical schedules
                    let seq = schedule_sharded(&plant, &channels, &cfg, &algo, 1)
                        .map_err(|e| BenchError::Run(format!("{shards} shard(s) seq: {e}")))?;
                    if seq.report.digest != outcome.report.digest {
                        return Err(BenchError::Run(format!(
                            "{shards} shard(s): jobs=1 digest diverged from pool digest"
                        )));
                    }
                    let median_schedule_ns = median(&mut schedule_samples);
                    let median_stitch_ns = median(&mut stitch_samples);
                    let median_validate_ns = median(&mut validate_samples);
                    let single = *single_gateway_ns.get_or_insert(median_schedule_ns);
                    let speedup = single as f64 / median_schedule_ns as f64;
                    println!(
                        "  k={shards}: schedule {:>8.2} ms  stitch {:>6.2} ms  validate {:>6.2} ms  \
                         {} colors  speedup {speedup:.2}x",
                        median_schedule_ns as f64 / 1e6,
                        median_stitch_ns as f64 / 1e6,
                        median_validate_ns as f64 / 1e6,
                        outcome.report.colors,
                    );
                    report.scenarios.push(ScenarioResult {
                        shards: shards as u64,
                        colors: outcome.report.colors as u64,
                        flows: outcome.report.flows as u64,
                        entries: outcome.report.entries as u64,
                        horizon: u64::from(outcome.report.horizon),
                        digest: format!("{:016x}", outcome.report.digest),
                        median_schedule_ns,
                        median_stitch_ns,
                        median_validate_ns,
                        speedup_vs_single: speedup,
                    });
                }
            }
        }

        // Scale sweep: the same pipeline at 5k and 10k nodes — the sizes
        // the dense n² u32 matrix priced out before the capped rebuild.
        // Fewer iterations: one plant generation alone is O(n²) and
        // dominates at 10k, and the scenario section above already pins
        // the fine-grained timing trajectory.
        let scale_iters = opts.iters.min(2);
        for target in [5_000usize, 10_000] {
            let scale_cfg = PlantConfig::city(format!("city-{target}"), target);
            let scale_plant = generate(&scale_cfg, opts.seed);
            let shards = 8usize;
            let cfg = ShardConfig {
                flows_per_shard: TOTAL_FLOWS / shards,
                ..ShardConfig::new(shards, opts.seed, 0)
            };
            let mut schedule_samples = Vec::with_capacity(scale_iters);
            let mut stitch_samples = Vec::with_capacity(scale_iters);
            let mut validate_samples = Vec::with_capacity(scale_iters);
            let mut last = None;
            for _ in 0..scale_iters {
                let outcome = schedule_sharded(&scale_plant, &channels, &cfg, &algo, 0)
                    .map_err(|e| BenchError::Run(format!("{target} nodes: {e}")))?;
                if let Some(prev) = &last {
                    if *prev != outcome.report.digest {
                        return Err(BenchError::Run(format!(
                            "{target} nodes: digest changed between iterations"
                        )));
                    }
                }
                last = Some(outcome.report.digest);
                schedule_samples.push(outcome.report.schedule_ns.max(1));
                stitch_samples.push(outcome.report.stitch_ns.max(1));
                validate_samples.push(outcome.report.validate_ns.max(1));
                if schedule_samples.len() == scale_iters {
                    let seq = schedule_sharded(&scale_plant, &channels, &cfg, &algo, 1)
                        .map_err(|e| BenchError::Run(format!("{target} nodes seq: {e}")))?;
                    if seq.report.digest != outcome.report.digest {
                        return Err(BenchError::Run(format!(
                            "{target} nodes: jobs=1 digest diverged from pool digest"
                        )));
                    }
                    let median_schedule_ns = median(&mut schedule_samples);
                    let median_stitch_ns = median(&mut stitch_samples);
                    let median_validate_ns = median(&mut validate_samples);
                    println!(
                        "  n={target}: schedule {:>8.2} ms  stitch {:>6.2} ms  \
                         validate {:>6.2} ms  {} colors",
                        median_schedule_ns as f64 / 1e6,
                        median_stitch_ns as f64 / 1e6,
                        median_validate_ns as f64 / 1e6,
                        outcome.report.colors,
                    );
                    report.scale.push(ScalePoint {
                        target_nodes: target as u64,
                        nodes: outcome.report.nodes as u64,
                        shards: shards as u64,
                        colors: outcome.report.colors as u64,
                        flows: outcome.report.flows as u64,
                        entries: outcome.report.entries as u64,
                        digest: format!("{:016x}", outcome.report.digest),
                        median_schedule_ns,
                        median_stitch_ns,
                        median_validate_ns,
                    });
                }
            }
        }

        let out = opts.out.unwrap_or_else(|| results_dir().join("BENCH_shard.json"));
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(write_err(parent))?;
            }
        }
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| BenchError::Run(format!("cannot serialise report: {e}")))?;
        std::fs::write(&out, json).map_err(write_err(&out))?;
        println!("report written to {}", out.display());
        Ok(())
    })
}
