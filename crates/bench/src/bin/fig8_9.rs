//! Figures 8 and 9 — network reliability on the (simulated) WUSTL testbed.
//!
//! * Fig. 8: box plots of per-flow Packet Delivery Ratio for NR / RA / RC
//!   on five 50-flow sets (channels 11–14, periods 0.5 s / 1 s, 100
//!   schedule executions). The paper's key result: RC's median sits within
//!   ~1 % of NR's and its *worst-case* PDR degrades only a few percent,
//!   while RA's worst case collapses by ~18–31 %.
//! * Fig. 9: the Tx/channel distribution of the same RA and RC schedules —
//!   the mechanism behind Fig. 8.
//!
//! Runs as a resumable campaign (one point per flow set) checkpointed to
//! `results/fig8_9.manifest.jsonl`.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig8_9 [-- --sets 5 --seed 1 --jobs 4 --resume]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, RunOptions};
use wsan_expr::campaigns;
use wsan_expr::table;

fn main() -> ExitCode {
    run_main(|| {
        let opts = RunOptions::try_parse(5)?;
        let (results, summary) =
            campaigns::reliability_sets(&opts.sweep(), &opts.campaign("fig8_9"))?;
        let flow_count = if opts.quick { 25 } else { 50 };

        println!("== fig8: per-flow PDR box plots (WUSTL, {flow_count} flows, 4 channels) ==");
        let headers =
            ["set", "algo", "median", "q1", "q3", "whisk-lo", "worst", "mean reuse Tx/ch"];
        let mut rows = Vec::new();
        for set in &results {
            for algo in &set.algorithms {
                let b = &algo.pdr_boxplot;
                // mean transmissions per occupied cell (1.0 = no reuse at all)
                let hist = &algo.tx_per_channel;
                let mean_tx: f64 = if hist.total() == 0 {
                    0.0
                } else {
                    hist.iter().map(|(c, n)| (c as u64 * n) as f64).sum::<f64>()
                        / hist.total() as f64
                };
                rows.push(vec![
                    (set.set_index + 1).to_string(),
                    algo.algorithm.clone(),
                    table::f3(b.median),
                    table::f3(b.q1),
                    table::f3(b.q3),
                    table::f3(b.whisker_low),
                    table::f3(algo.worst_pdr),
                    format!("{mean_tx:.2}"),
                ]);
            }
        }
        print!("{}", table::render(&headers, &rows));

        println!("\n== fig9: Tx/channel distribution of RA and RC schedules ==");
        let headers9 = ["set", "algo", "1 Tx", "2 Tx", "3 Tx", "4+ Tx"];
        let mut rows9 = Vec::new();
        for set in &results {
            for algo in &set.algorithms {
                if algo.algorithm == "NR" {
                    continue;
                }
                let p = algo.tx_per_channel.proportions_with_tail(4);
                rows9.push(vec![
                    (set.set_index + 1).to_string(),
                    algo.algorithm.clone(),
                    table::pct(p[1]),
                    table::pct(p[2]),
                    table::pct(p[3]),
                    table::pct(p[4]),
                ]);
            }
        }
        print!("{}", table::render(&headers9, &rows9));

        // summary: worst-case deltas vs NR, the paper's headline comparison
        println!("\n== summary: worst-case PDR drop vs NR per flow set ==");
        let headers_s = ["set", "NR worst", "RA worst", "RC worst", "RA drop", "RC drop"];
        let mut rows_s = Vec::new();
        for set in &results {
            let find = |name: &str| set.algorithms.iter().find(|a| a.algorithm == name);
            let (Some(nr), Some(ra), Some(rc)) = (find("NR"), find("RA"), find("RC")) else {
                continue;
            };
            rows_s.push(vec![
                (set.set_index + 1).to_string(),
                table::f3(nr.worst_pdr),
                table::f3(ra.worst_pdr),
                table::f3(rc.worst_pdr),
                table::pct(nr.worst_pdr - ra.worst_pdr),
                table::pct(nr.worst_pdr - rc.worst_pdr),
            ]);
        }
        print!("{}", table::render(&headers_s, &rows_s));

        let path = results_dir().join("fig8_9.json");
        table::write_json(&path, &results).map_err(write_err(&path))?;
        println!(
            "\nresults written under {} ({} points executed, {} resumed)",
            results_dir().display(),
            summary.executed,
            summary.resumed
        );
        Ok(())
    })
}
