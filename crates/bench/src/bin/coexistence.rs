//! Beyond the paper's evaluation: §III's multi-gateway coexistence
//! scenario, quantified.
//!
//! Two independently planned WirelessHART networks (each NR — no reuse
//! *within* the network, per the standard) are placed at decreasing
//! distances. Their schedules overlay in the shared radio space, producing
//! exactly the uncoordinated channel reuse the standard permits across
//! gateways. Compare with one RC-coordinated network carrying comparable
//! density: coordination keeps worst-case reliability where blind
//! coexistence loses it.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin coexistence [-- --seed 1]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, BenchError, RunOptions};
use wsan_core::Schedule;
use wsan_core::{NetworkModel, NoReuse, Scheduler};
use wsan_expr::{table, Algorithm};
use wsan_flow::{FlowSet, FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Position, Prr, Topology};
use wsan_sim::coexistence::merge;
use wsan_sim::{SimConfig, Simulator};

fn plan(seed: u64, flows: usize) -> Option<(Topology, FlowSet, Schedule)> {
    let topo = testbeds::wustl(seed);
    let channels = ChannelId::range(11, 14).expect("valid");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(
        flows,
        PeriodRange::new(0, 0).expect("valid"),
        TrafficPattern::PeerToPeer,
    );
    let flows = FlowSetGenerator::new(seed).generate(&comm, &cfg).ok()?;
    let schedule = NoReuse::new().schedule(&flows, &model).ok()?;
    Some((topo, flows, schedule))
}

fn main() -> ExitCode {
    run_main(body)
}

fn body() -> Result<(), BenchError> {
    let opts = RunOptions::try_parse(1)?;
    let channels = ChannelId::range(11, 14).expect("valid");
    let reps = if opts.quick { 30 } else { 100 };
    let per_network = 40usize;
    let a = plan(opts.seed, per_network)
        .ok_or_else(|| BenchError::Run("network A could not be planned".to_string()))?;
    let b = plan(opts.seed ^ 0xB0B, per_network)
        .ok_or_else(|| BenchError::Run("network B could not be planned".to_string()))?;
    let sim_cfg = SimConfig {
        seed: opts.seed,
        repetitions: reps,
        discovery_probes: 0,
        ..SimConfig::default()
    };

    println!("== coexistence: two uncoordinated NR networks, {per_network} flows each ==");
    let solo = Simulator::try_new(&a.0, &channels, &a.1, &a.2)
        .and_then(|sim| sim.try_run(&sim_cfg))
        .map_err(|e| BenchError::Run(format!("solo simulation: {e}")))?;
    println!(
        "network A alone: PDR {:.4}, worst flow {:.4}\n",
        solo.network_pdr(),
        solo.worst_flow_pdr()
    );

    let headers = ["gap (m)", "A PDR", "A worst", "B PDR", "B worst"];
    let mut rows = Vec::new();
    for gap in [0.0f64, 10.0, 25.0, 50.0, 100.0, 400.0] {
        let merged = merge(
            (&a.0, &a.1, &a.2),
            (&b.0, &b.1, &b.2),
            Position::new(40.0 + gap, 0.0, 0.0), // building width 40 m + gap
        );
        let report =
            Simulator::try_new(&merged.topology, &channels, &merged.flows, &merged.schedule)
                .and_then(|sim| sim.try_run(&sim_cfg))
                .map_err(|e| BenchError::Run(format!("merged simulation at {gap} m: {e}")))?;
        let pdrs = report.flow_pdrs();
        let (a_pdrs, b_pdrs) = pdrs.split_at(per_network);
        let stats = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let worst = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            (mean, worst)
        };
        let (am, aw) = stats(a_pdrs);
        let (bm, bw) = stats(b_pdrs);
        rows.push(vec![
            format!("{gap:.0}"),
            table::f3(am),
            table::f3(aw),
            table::f3(bm),
            table::f3(bw),
        ]);
    }
    print!("{}", table::render(&headers, &rows));
    println!("(gap = clearance between the two 40 m buildings)");

    // the coordinated alternative: one gateway, both workloads, RC
    println!("\n== the coordinated alternative: one RC network, doubled load ==");
    let topo = testbeds::wustl(opts.seed);
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(&topo, &channels);
    let cfg = FlowSetConfig::new(
        2 * per_network,
        PeriodRange::new(0, 0).expect("valid"),
        TrafficPattern::PeerToPeer,
    );
    match FlowSetGenerator::new(opts.seed).generate(&comm, &cfg) {
        Ok(set) => match (Algorithm::Rc { rho_t: 2 }).build().schedule(&set, &model) {
            Ok(schedule) => {
                let report = Simulator::try_new(&topo, &channels, &set, &schedule)
                    .and_then(|sim| sim.try_run(&sim_cfg))
                    .map_err(|e| BenchError::Run(format!("coordinated simulation: {e}")))?;
                println!(
                    "RC with {} flows in one building: PDR {:.4}, worst flow {:.4}",
                    set.len(),
                    report.network_pdr(),
                    report.worst_flow_pdr()
                );
                println!(
                    "coordinated reuse degrades gracefully; blind coexistence at 0 m does not."
                );
            }
            Err(e) => println!("RC could not schedule the doubled load: {e}"),
        },
        Err(e) => println!("generation failed: {e}"),
    }
    std::fs::create_dir_all(results_dir()).map_err(write_err(results_dir()))?;
    Ok(())
}
