//! Figures 4 and 5 — algorithm efficiency on the Indriya topology.
//!
//! * Fig. 4: distribution of the number of transmissions per (occupied)
//!   channel cell under RA and RC, for centralized (a) and peer-to-peer (b)
//!   traffic, channels 3–8.
//! * Fig. 5: distribution of the minimum channel-reuse hop count of shared
//!   cells, peer-to-peer (a) and centralized (b).
//!
//! Runs as a resumable campaign checkpointed to
//! `results/fig4_5.manifest.jsonl`.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig4_5 [-- --sets 100 --quick --jobs 4 --resume]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, RunOptions};
use wsan_expr::campaigns::{self, EfficiencyRow};
use wsan_expr::table;

fn print_pattern(pattern: &str, rows: &[&EfficiencyRow]) {
    println!("\n== {pattern} traffic, Indriya ==");
    let headers =
        ["#ch", "algo", "sets", "1 Tx", "2 Tx", "3 Tx", "4+ Tx", "2 hops", "3 hops", "4+ hops"];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row =
                vec![r.channels.to_string(), r.algorithm.clone(), r.schedulable_sets.to_string()];
            row.extend(r.tx_per_channel.iter().map(|p| table::pct(*p)));
            row.extend(r.reuse_hops.iter().map(|p| table::pct(*p)));
            row
        })
        .collect();
    print!("{}", table::render(&headers, &cells));
    println!("(Tx columns: share of occupied cells; hop columns: share of shared cells)");
}

fn main() -> ExitCode {
    run_main(|| {
        let opts = RunOptions::try_parse(100)?;
        let (all_rows, summary) =
            campaigns::efficiency_rows(&opts.sweep(), &opts.campaign("fig4_5"))?;
        for pattern in ["Centralized", "PeerToPeer"] {
            let rows: Vec<&EfficiencyRow> =
                all_rows.iter().filter(|r| r.pattern == pattern).collect();
            if !rows.is_empty() {
                print_pattern(pattern, &rows);
            }
        }
        let path = results_dir().join("fig4_5.json");
        table::write_json(&path, &all_rows).map_err(write_err(&path))?;
        println!(
            "\nresults written under {} ({} points executed, {} resumed)",
            results_dir().display(),
            summary.executed,
            summary.resumed
        );
        Ok(())
    })
}
