//! Figures 4 and 5 — algorithm efficiency on the Indriya topology.
//!
//! * Fig. 4: distribution of the number of transmissions per (occupied)
//!   channel cell under RA and RC, for centralized (a) and peer-to-peer (b)
//!   traffic, channels 3–8.
//! * Fig. 5: distribution of the minimum channel-reuse hop count of shared
//!   cells, peer-to-peer (a) and centralized (b).
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fig4_5 [-- --sets 100 --quick]
//! ```

use serde::Serialize;
use wsan_bench::{results_dir, RunOptions};
use wsan_expr::efficiency::evaluate;
use wsan_expr::schedulable::WorkloadConfig;
use wsan_expr::{table, Algorithm};
use wsan_flow::{PeriodRange, TrafficPattern};
use wsan_net::testbeds;

#[derive(Serialize)]
struct EfficiencyRow {
    pattern: String,
    channels: usize,
    algorithm: String,
    schedulable_sets: usize,
    /// proportions for 1, 2, 3, 4+ transmissions per channel
    tx_per_channel: Vec<f64>,
    /// proportions for reuse hop counts 2, 3, 4+ (index 0 ↔ 2 hops)
    reuse_hops: Vec<f64>,
}

fn main() {
    let opts = RunOptions::parse(100);
    let topo = testbeds::indriya(1);
    let algos = [Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }];
    let mut all_rows: Vec<EfficiencyRow> = Vec::new();

    for (pattern, flows) in [(TrafficPattern::Centralized, 16), (TrafficPattern::PeerToPeer, 60)] {
        let cfg = WorkloadConfig {
            flow_sets: opts.sets,
            seed: opts.seed,
            ..WorkloadConfig::new(flows, PeriodRange::new(0, 2).expect("valid"), pattern)
        };
        println!("\n== {pattern:?} traffic, {flows} flows, Indriya ==");
        let headers =
            ["#ch", "algo", "sets", "1 Tx", "2 Tx", "3 Tx", "4+ Tx", "2 hops", "3 hops", "4+ hops"];
        let mut rows: Vec<Vec<String>> = Vec::new();
        for m in [3usize, 4, 5, 6, 7, 8] {
            for result in evaluate(&topo, m, &algos, &cfg) {
                let tx = result.metrics.tx_per_channel.proportions_with_tail(4);
                let hop_hist = &result.metrics.reuse_hop_count;
                let hops_total = hop_hist.total();
                let hop_props: Vec<f64> = if hops_total == 0 {
                    vec![0.0; 3]
                } else {
                    let p = hop_hist.proportions_with_tail(4);
                    vec![p[2], p[3], p[4]]
                };
                rows.push(vec![
                    m.to_string(),
                    result.algorithm.to_string(),
                    result.schedulable_sets.to_string(),
                    table::pct(tx[1]),
                    table::pct(tx[2]),
                    table::pct(tx[3]),
                    table::pct(tx[4]),
                    table::pct(hop_props[0]),
                    table::pct(hop_props[1]),
                    table::pct(hop_props[2]),
                ]);
                all_rows.push(EfficiencyRow {
                    pattern: format!("{pattern:?}"),
                    channels: m,
                    algorithm: result.algorithm.to_string(),
                    schedulable_sets: result.schedulable_sets,
                    tx_per_channel: tx[1..].to_vec(),
                    reuse_hops: hop_props,
                });
            }
        }
        print!("{}", table::render(&headers, &rows));
        println!("(Tx columns: share of occupied cells; hop columns: share of shared cells)");
    }
    table::write_json(results_dir().join("fig4_5.json"), &all_rows).expect("write results JSON");
    println!("\nresults written under {}", results_dir().display());
}
