//! Fault campaign — recovered PDR vs. fault intensity.
//!
//! Peer-to-peer flows at 1 s on channels 11–14 (WUSTL). For each intensity
//! `k`, the `k` busiest scheduled links collapse to PRR 0 mid-run, and the
//! supervised recovery loop (classify → repair → re-validate, shedding
//! flows in inverse deadline-monotonic order when repair cannot restore
//! feasibility) runs until the network is healthy again. The sweep reports
//! how many flows each intensity costs and the PDR of the survivors,
//! against the fault-free baseline.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fault_campaign [-- --seed 1 --quick]
//! ```

use wsan_bench::{results_dir, RunOptions};
use wsan_expr::recovery::{campaign, SupervisorConfig};
use wsan_expr::{table, Algorithm};
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr};
use wsan_obs::PhaseProfiler;

fn main() {
    let opts = RunOptions::parse(1);
    let mut profiler = PhaseProfiler::new();
    let workload = profiler.phase("workload generation");
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).expect("valid");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid PRR"));
    let flow_count = if opts.quick { 30 } else { 60 };
    let fsc = FlowSetConfig::new(
        flow_count,
        PeriodRange::new(0, 0).expect("valid"),
        TrafficPattern::PeerToPeer,
    );
    let set =
        FlowSetGenerator::new(opts.seed).generate(&comm, &fsc).expect("workload generation failed");
    drop(workload);

    let cfg = SupervisorConfig {
        seed: opts.seed,
        epochs: if opts.quick { 3 } else { 6 },
        samples_per_epoch: if opts.quick { 6 } else { 12 },
        window_reps: if opts.quick { 3 } else { 5 },
        ..SupervisorConfig::default()
    };
    let intensities: &[usize] = if opts.quick { &[0, 1, 2, 4] } else { &[0, 1, 2, 4, 8, 12] };

    let mut results = Vec::new();
    for algo in [Algorithm::Nr, Algorithm::Rc { rho_t: 2 }] {
        let result = match profiler.time(&format!("campaign {algo}"), || {
            campaign(&topo, &channels, &set, algo, &cfg, intensities)
        }) {
            Ok(r) => r,
            Err(e) => {
                println!("{algo}: campaign failed ({e}); skipping");
                continue;
            }
        };
        println!(
            "\n==== {} fault campaign: {} flows, fault-free network PDR {} ====",
            result.algorithm,
            result.flows,
            table::f3(result.baseline_pdr)
        );
        let headers = ["collapsed links", "shed flows", "surviving", "residual PDR", "converged"];
        let rows: Vec<Vec<String>> = result
            .points
            .iter()
            .map(|p| {
                vec![
                    p.collapsed_links.to_string(),
                    p.shed_flows.to_string(),
                    p.surviving_flows.to_string(),
                    table::f3(p.residual_pdr),
                    p.converged.to_string(),
                ]
            })
            .collect();
        print!("{}", table::render(&headers, &rows));
        results.push(result);
    }
    profiler.time("write results", || {
        table::write_json(results_dir().join("fault_campaign.json"), &results)
            .expect("write results JSON");
    });
    println!("\nresults written under {}", results_dir().display());
    eprint!("{}", profiler.finish().render());
}
