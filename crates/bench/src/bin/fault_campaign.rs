//! Fault campaign — recovered PDR vs. fault intensity.
//!
//! Peer-to-peer flows at 1 s on channels 11–14 (WUSTL). For each intensity
//! `k`, the `k` busiest scheduled links collapse to PRR 0 mid-run, and the
//! supervised recovery loop (classify → repair → re-validate, shedding
//! flows in inverse deadline-monotonic order when repair cannot restore
//! feasibility) runs until the network is healthy again. The sweep reports
//! how many flows each intensity costs and the PDR of the survivors,
//! against the fault-free baseline.
//!
//! Runs as a resumable campaign — one point per (algorithm, intensity)
//! plus a baseline point per algorithm — checkpointed to
//! `results/fault_campaign.manifest.jsonl`. Algorithms that cannot
//! schedule the workload are skipped, not fatal.
//!
//! ```sh
//! cargo run --release -p wsan-bench --bin fault_campaign [-- --seed 1 --quick --jobs 4 --resume]
//! ```

use std::process::ExitCode;
use wsan_bench::{results_dir, run_main, write_err, RunOptions};
use wsan_expr::campaigns;
use wsan_expr::table;
use wsan_obs::PhaseProfiler;

fn main() -> ExitCode {
    run_main(|| {
        let opts = RunOptions::try_parse(1)?;
        let mut profiler = PhaseProfiler::new();
        let results = profiler.time("fault campaign", || {
            campaigns::faults(&opts.sweep(), &opts.campaign("fault_campaign"))
        });
        let (results, summary) = results?;
        for result in &results {
            println!(
                "\n==== {} fault campaign: {} flows, fault-free network PDR {} ====",
                result.algorithm,
                result.flows,
                table::f3(result.baseline_pdr)
            );
            let headers =
                ["collapsed links", "shed flows", "surviving", "residual PDR", "converged"];
            let rows: Vec<Vec<String>> = result
                .points
                .iter()
                .map(|p| {
                    vec![
                        p.collapsed_links.to_string(),
                        p.shed_flows.to_string(),
                        p.surviving_flows.to_string(),
                        table::f3(p.residual_pdr),
                        p.converged.to_string(),
                    ]
                })
                .collect();
            print!("{}", table::render(&headers, &rows));
        }
        let path = results_dir().join("fault_campaign.json");
        profiler.time("write results", || {
            table::write_json(&path, &results).map_err(write_err(&path))
        })?;
        println!(
            "\nresults written under {} ({} points executed, {} resumed)",
            results_dir().display(),
            summary.executed,
            summary.resumed
        );
        eprint!("{}", profiler.finish().render());
        Ok(())
    })
}
