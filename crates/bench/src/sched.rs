//! Shared scenarios for the scheduler hot-path benchmarks.
//!
//! The criterion bench (`benches/scheduler.rs`) and the tracked
//! `sched_bench` binary (which writes `BENCH_scheduler.json`) measure the
//! same workloads, defined once here: both testbed scales (Indriya ~80
//! nodes, WUSTL ~60 nodes) under a sparse and a dense peer-to-peer load,
//! five channels each. Dense loads sit near the schedulability cliff the
//! paper's figures sweep, so RC's ρ-shrink loop — the hot path PR 5
//! optimizes — is actually exercised.

use wsan_core::{NetworkModel, Scheduler};
use wsan_flow::{FlowSet, FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr};

/// Which generated testbed topology a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Testbed {
    /// The Indriya-like 80-node topology.
    Indriya,
    /// The WUSTL-like 60-node topology.
    Wustl,
}

/// One scheduler-bench workload: a testbed at a fixed flow count.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Stable identifier used in bench IDs and `BENCH_scheduler.json`.
    pub name: &'static str,
    /// The topology family.
    pub testbed: Testbed,
    /// Peer-to-peer flows in the set.
    pub flows: usize,
    /// Whether this is a dense (near-cliff) load.
    pub dense: bool,
}

/// The tracked scenario set: both testbeds, sparse and dense.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario { name: "indriya-sparse", testbed: Testbed::Indriya, flows: 40, dense: false },
        Scenario { name: "indriya-dense", testbed: Testbed::Indriya, flows: 100, dense: true },
        Scenario { name: "wustl-sparse", testbed: Testbed::Wustl, flows: 30, dense: false },
        Scenario { name: "wustl-dense", testbed: Testbed::Wustl, flows: 80, dense: true },
    ]
}

impl Scenario {
    /// Materializes the workload: the paper's five-channel setup, PRR 0.9,
    /// short periods, peer-to-peer traffic. `None` when flow generation
    /// cannot route the requested load on the seeded topology.
    pub fn build(&self, seed: u64) -> Option<(FlowSet, NetworkModel)> {
        let topo = match self.testbed {
            Testbed::Indriya => testbeds::indriya(1),
            Testbed::Wustl => testbeds::wustl(1),
        };
        let channels = ChannelId::all().take(5);
        let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
        let model = NetworkModel::new(&topo, &channels);
        let cfg = FlowSetConfig::new(
            self.flows,
            PeriodRange::new(0, 2).unwrap(),
            TrafficPattern::PeerToPeer,
        );
        let set = FlowSetGenerator::new(seed).generate(&comm, &cfg).ok()?;
        Some((set, model))
    }
}

/// The benched scheduler lineup: the optimized paper suite plus the
/// slot-by-slot reference implementations from `wsan_core::reference`
/// (suffixed `-ref`) that anchor the speedup claims.
pub fn contenders() -> Vec<(&'static str, Box<dyn Scheduler + Send + Sync>)> {
    vec![
        ("NR", Box::new(wsan_core::NoReuse::new())),
        ("RA", Box::new(wsan_core::ReuseAggressively::new(2))),
        ("RC", Box::new(wsan_core::ReuseConservatively::new(2))),
        ("NR-ref", Box::new(wsan_core::reference::NoReuseRef::new())),
        ("RA-ref", Box::new(wsan_core::reference::ReuseAggressivelyRef::new(2))),
        ("RC-ref", Box::new(wsan_core::reference::ReuseConservativelyRef::new(2))),
    ]
}

/// Median of a sample set, destructively (sorts the slice). Even-length
/// samples take the lower middle — stable under the small counts
/// `sched_bench --quick` uses.
pub fn median_ns(samples: &mut [u64]) -> u64 {
    assert!(!samples.is_empty(), "median of no samples");
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_builds_and_rc_schedules_it() {
        for sc in scenarios() {
            let (flows, model) = sc.build(42).expect("workload generates");
            let rc = wsan_core::ReuseConservatively::new(2);
            let schedule = rc.schedule(&flows, &model).expect("RC schedules the tracked load");
            assert!(schedule.entry_count() > 0);
        }
    }

    #[test]
    fn median_takes_lower_middle() {
        assert_eq!(median_ns(&mut [5]), 5);
        assert_eq!(median_ns(&mut [4, 1, 3, 2]), 2);
        assert_eq!(median_ns(&mut [9, 1, 5]), 5);
    }
}
