//! Flow-set generation exercised on the full synthetic testbeds.

use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr};

#[test]
fn centralized_routes_split_at_access_points() {
    let topo = testbeds::indriya(3);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let aps = comm.select_access_points(2);
    let cfg = FlowSetConfig::new(30, PeriodRange::new(0, 2).unwrap(), TrafficPattern::Centralized);
    let set = FlowSetGenerator::new(8).generate(&comm, &cfg).unwrap();
    let mut two_segment = 0;
    for flow in &set {
        match flow.segments() {
            [up, down] => {
                two_segment += 1;
                // uplink ends at an AP, downlink starts at an AP
                assert!(aps.contains(&up.destination()), "uplink must end at an AP");
                assert!(aps.contains(&down.source()), "downlink must start at an AP");
            }
            [single] => {
                // degenerate: destination on the uplink or endpoint is AP-adjacent
                assert!(single.hop_count() >= 1);
            }
            other => panic!("unexpected segment count {}", other.len()),
        }
    }
    assert!(
        two_segment > set.len() / 2,
        "most centralized flows should use the wired backbone ({two_segment}/{})",
        set.len()
    );
}

#[test]
fn p2p_routes_are_shortest_paths() {
    let topo = testbeds::wustl(4);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let cfg = FlowSetConfig::new(25, PeriodRange::new(0, 1).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(9).generate(&comm, &cfg).unwrap();
    let hm = comm.hop_matrix();
    for flow in &set {
        assert_eq!(flow.segments().len(), 1);
        let shortest = hm.hops(flow.source(), flow.destination()) as usize;
        assert_eq!(flow.hop_count(), shortest, "route of {} is not a shortest path", flow.id());
    }
}

#[test]
fn generation_scales_to_large_sets() {
    let topo = testbeds::wustl(5);
    let channels = ChannelId::range(11, 14).unwrap();
    let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
    let cfg = FlowSetConfig::new(160, PeriodRange::new(-1, 3).unwrap(), TrafficPattern::PeerToPeer);
    let set = FlowSetGenerator::new(10).generate(&comm, &cfg).unwrap();
    assert_eq!(set.len(), 160);
    assert_eq!(set.hyperperiod(), 800);
    // DM order by construction
    let mut last = 0;
    for f in &set {
        assert!(f.deadline_slots() >= last);
        last = f.deadline_slots();
    }
}
