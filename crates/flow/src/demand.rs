//! Workload demand and utilization metrics.
//!
//! Quick back-of-envelope quantities an operator (or a test) wants before
//! running any scheduler: how many slots the workload needs, how close the
//! channel capacity is to saturation, and where the busiest node sits.

use crate::FlowSet;
use serde::{Deserialize, Serialize};
use wsan_net::NodeId;

/// Demand summary of a flow set against a channel budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandReport {
    /// Hyperperiod in slots.
    pub hyperperiod: u32,
    /// Total transmissions per hyperperiod including retry provisioning.
    pub transmissions: u64,
    /// Channel utilization: transmissions / (hyperperiod × channels).
    /// Above 1.0 the workload cannot fit even with perfect packing and no
    /// conflicts.
    pub channel_utilization: f64,
    /// The busiest node and the number of transmissions touching it.
    pub busiest_node: Option<(NodeId, u64)>,
    /// Node utilization of the busiest node: its transmissions /
    /// hyperperiod. A node can take part in at most one transmission per
    /// slot, so above 1.0 the workload is infeasible regardless of
    /// channels — the half-duplex bottleneck the centralized pattern hits
    /// at its access points.
    pub node_utilization: f64,
}

impl DemandReport {
    /// Whether either capacity bound already rules the workload out.
    pub fn obviously_infeasible(&self) -> bool {
        self.channel_utilization > 1.0 || self.node_utilization > 1.0
    }
}

/// Computes the demand of `flows` against `channels` channel offsets,
/// with `attempts` scheduled slots per link (2 under retry provisioning).
pub fn demand(flows: &FlowSet, channels: usize, attempts: u32) -> DemandReport {
    let hyperperiod = flows.hyperperiod();
    let mut transmissions = 0u64;
    let mut per_node: std::collections::BTreeMap<NodeId, u64> = std::collections::BTreeMap::new();
    for flow in flows {
        let jobs = u64::from(hyperperiod / flow.period().slots().max(1));
        for link in flow.links() {
            let n = jobs * u64::from(attempts);
            transmissions += n;
            *per_node.entry(link.tx).or_default() += n;
            *per_node.entry(link.rx).or_default() += n;
        }
    }
    let busiest_node = per_node
        .iter()
        .max_by_key(|(id, n)| (**n, std::cmp::Reverse(id.index())))
        .map(|(id, n)| (*id, *n));
    DemandReport {
        hyperperiod,
        transmissions,
        channel_utilization: transmissions as f64
            / (f64::from(hyperperiod) * channels.max(1) as f64),
        node_utilization: busiest_node
            .map(|(_, n)| n as f64 / f64::from(hyperperiod))
            .unwrap_or(0.0),
        busiest_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{priority, Flow, FlowId, Period};
    use wsan_net::Route;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn set() -> FlowSet {
        // two flows: 0→1→2 every 100, 3→1 every 50 — node 1 is hot
        priority::deadline_monotonic(
            vec![
                Flow::new(
                    FlowId::new(0),
                    Route::new(vec![n(0), n(1), n(2)]),
                    Period::from_slots(100).unwrap(),
                    100,
                )
                .unwrap(),
                Flow::new(
                    FlowId::new(1),
                    Route::new(vec![n(3), n(1)]),
                    Period::from_slots(50).unwrap(),
                    50,
                )
                .unwrap(),
            ],
            vec![],
        )
    }

    #[test]
    fn counts_transmissions_with_retries() {
        let r = demand(&set(), 2, 2);
        assert_eq!(r.hyperperiod, 100);
        // flow0: 2 links × 2 attempts × 1 job = 4; flow1: 1 × 2 × 2 = 4
        assert_eq!(r.transmissions, 8);
        assert!((r.channel_utilization - 8.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn finds_the_hot_node() {
        let r = demand(&set(), 2, 2);
        let (node, count) = r.busiest_node.unwrap();
        assert_eq!(node, n(1));
        // node 1: flow0 both links touch it (4) + flow1 (4) = 8
        assert_eq!(count, 8);
        assert!((r.node_utilization - 0.08).abs() < 1e-12);
        assert!(!r.obviously_infeasible());
    }

    #[test]
    fn detects_node_saturation() {
        // one flow through a node every slot: period 4, route of 2 links
        // through the node, 2 attempts → node busy 4×/4 slots
        let flows = priority::deadline_monotonic(
            vec![Flow::new(
                FlowId::new(0),
                Route::new(vec![n(0), n(1), n(2)]),
                Period::from_slots(4).unwrap(),
                4,
            )
            .unwrap()],
            vec![],
        );
        let r = demand(&flows, 16, 2);
        // node 1 is in both links: 4 transmissions per 4 slots → 1.0
        assert!((r.node_utilization - 1.0).abs() < 1e-12);
        assert!(!r.obviously_infeasible()); // exactly 1.0 is the edge
                                            // on one channel the same 4 transmissions fill every slot (1.0);
                                            // doubling the rate overflows both bounds
        let tighter = demand(&flows, 1, 2);
        assert!((tighter.channel_utilization - 1.0).abs() < 1e-12);
        let doubled = demand(&flows, 1, 4);
        assert!(doubled.channel_utilization > 1.0);
        assert!(doubled.obviously_infeasible());
    }

    #[test]
    fn empty_set_is_trivially_feasible() {
        let flows = FlowSet::new(vec![], vec![]);
        let r = demand(&flows, 4, 2);
        assert_eq!(r.transmissions, 0);
        assert_eq!(r.busiest_node, None);
        assert!(!r.obviously_infeasible());
    }
}
