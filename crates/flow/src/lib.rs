//! Real-time flow model for industrial WSANs.
//!
//! A WSAN is shared by end-to-end flows `F = {F_1 … F_n}`; each flow
//! `F_i = ⟨S_i, Y_i, D_i, P_i, φ_i⟩` releases a packet every period `P_i`
//! at source `S_i`, to be delivered along route `φ_i` to destination `Y_i`
//! within deadline `D_i ≤ P_i` (§IV-A of the paper). This crate provides:
//!
//! * [`Flow`] and [`FlowSet`] — the flow model itself, with time measured in
//!   10 ms TSCH slots,
//! * [`Period`] — harmonic power-of-two periods as used by process
//!   monitoring and control workloads,
//! * deadline-monotonic priority ordering ([`priority`]),
//! * job releases over the hyperperiod ([`release`]),
//! * the two traffic patterns of the evaluation ([`TrafficPattern`]):
//!   *centralized* (through an access point wired to the gateway) and
//!   *peer-to-peer* (controller on a field device),
//! * a seeded random [`FlowSetGenerator`] reproducing the paper's workload
//!   generation (random sources/destinations, two access points, harmonic
//!   periods, deadlines uniform in `[P/2, P]`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demand;
mod error;
mod flow;
mod genset;
mod period;
pub mod priority;
pub mod release;
mod traffic;

pub use demand::{demand, DemandReport};
pub use error::FlowError;
pub use flow::{Flow, FlowId, FlowSet};
pub use genset::{FlowSetConfig, FlowSetGenerator};
pub use period::{Period, PeriodRange, SLOTS_PER_SECOND};
pub use release::Job;
pub use traffic::TrafficPattern;
