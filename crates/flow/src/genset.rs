//! Random flow-set generation reproducing the paper's workloads.
//!
//! "We randomly generate a set of flows F by varying source and destination
//! nodes. Each flow set contains two access points, which are nodes with a
//! high number of neighbors. … the periods of flows are harmonic … uniformly
//! selected from the range `P = [2^x, 2^y]` … if a flow is assigned
//! `P_i = 2^j`, then its deadline `D_i` is randomly picked from
//! `[2^{j-1}, 2^j]`." (§VII)

use crate::priority::deadline_monotonic;
use crate::{Flow, FlowError, FlowId, FlowSet, Period, PeriodRange, TrafficPattern};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wsan_net::{CommGraph, NodeId};

/// Parameters of random flow-set generation.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSetConfig {
    /// Number of flows to generate.
    pub flow_count: usize,
    /// Harmonic period range `[2^x, 2^y]` seconds.
    pub periods: PeriodRange,
    /// Traffic pattern for route construction.
    pub pattern: TrafficPattern,
    /// Number of access points to designate (paper: 2).
    pub access_points: usize,
}

impl FlowSetConfig {
    /// Convenience constructor with the paper's default of two access
    /// points.
    pub fn new(flow_count: usize, periods: PeriodRange, pattern: TrafficPattern) -> Self {
        FlowSetConfig { flow_count, periods, pattern, access_points: 2 }
    }
}

/// Seeded generator of random flow sets over a communication graph.
///
/// The generator owns its RNG; drawing several sets from one generator
/// yields a deterministic sequence, so "100 different flow sets" in the
/// paper's experiments is `(0..100).map(|_| gen.generate(&cfg))`.
#[derive(Debug)]
pub struct FlowSetGenerator {
    rng: StdRng,
}

impl FlowSetGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FlowSetGenerator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates one flow set on `graph` under `config`.
    ///
    /// Sources and destinations are drawn uniformly from the field devices
    /// (access points are excluded as endpoints), rejecting pairs with no
    /// route; flows are ordered by Deadline Monotonic priority.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::GenerationFailed`] when the graph has fewer than
    /// two eligible endpoints or when route construction keeps failing
    /// (after `64 × flow_count` rejected draws).
    pub fn generate(
        &mut self,
        graph: &CommGraph,
        config: &FlowSetConfig,
    ) -> Result<FlowSet, FlowError> {
        let aps = graph.select_access_points(config.access_points);
        let candidates: Vec<NodeId> =
            (0..graph.node_count()).map(NodeId::new).filter(|n| !aps.contains(n)).collect();
        if candidates.len() < 2 {
            return Err(FlowError::GenerationFailed(format!(
                "only {} candidate endpoints after excluding access points",
                candidates.len()
            )));
        }
        let mut flows = Vec::with_capacity(config.flow_count);
        let mut rejected = 0usize;
        let budget = 64 * config.flow_count.max(1);
        while flows.len() < config.flow_count {
            if rejected > budget {
                return Err(FlowError::GenerationFailed(format!(
                    "rejected {rejected} source/destination draws; graph too disconnected"
                )));
            }
            let src = candidates[self.rng.gen_range(0..candidates.len())];
            let dst = candidates[self.rng.gen_range(0..candidates.len())];
            if src == dst {
                rejected += 1;
                continue;
            }
            let segments = match config.pattern.build_segments(graph, src, dst, &aps) {
                Ok(s) => s,
                Err(_) => {
                    rejected += 1;
                    continue;
                }
            };
            let period = config.periods.sample(&mut self.rng);
            let deadline = self.sample_deadline(period);
            let flow = Flow::with_segments(FlowId::new(flows.len()), segments, period, deadline)
                .expect("sampled deadline is within (0, P]");
            flows.push(flow);
        }
        Ok(deadline_monotonic(flows, aps))
    }

    /// Draws `D` uniformly from `[P/2, P]` slots.
    fn sample_deadline(&mut self, period: Period) -> u32 {
        let p = period.slots();
        let lo = (p / 2).max(1);
        self.rng.gen_range(lo..=p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A 3x3 grid graph: ids row-major.
    fn grid3() -> CommGraph {
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                let id = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((n(id), n(id + 1)));
                }
                if r + 1 < 3 {
                    edges.push((n(id), n(id + 3)));
                }
            }
        }
        CommGraph::from_edges(9, &edges)
    }

    fn cfg(count: usize) -> FlowSetConfig {
        FlowSetConfig::new(count, PeriodRange::new(-1, 1).unwrap(), TrafficPattern::PeerToPeer)
    }

    #[test]
    fn generates_requested_flow_count() {
        let mut g = FlowSetGenerator::new(1);
        let set = g.generate(&grid3(), &cfg(5)).unwrap();
        assert_eq!(set.len(), 5);
        assert_eq!(set.access_points().len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FlowSetGenerator::new(9).generate(&grid3(), &cfg(8)).unwrap();
        let b = FlowSetGenerator::new(9).generate(&grid3(), &cfg(8)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_sets_differ() {
        let mut g = FlowSetGenerator::new(3);
        let a = g.generate(&grid3(), &cfg(8)).unwrap();
        let b = g.generate(&grid3(), &cfg(8)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn deadlines_are_within_half_period_and_period() {
        let mut g = FlowSetGenerator::new(2);
        let set = g.generate(&grid3(), &cfg(30)).unwrap();
        for f in &set {
            let p = f.period().slots();
            assert!(f.deadline_slots() >= p / 2, "D ≥ P/2");
            assert!(f.deadline_slots() <= p, "D ≤ P");
        }
    }

    #[test]
    fn periods_come_from_the_harmonic_range() {
        let mut g = FlowSetGenerator::new(4);
        let set = g.generate(&grid3(), &cfg(30)).unwrap();
        for f in &set {
            assert!([50, 100, 200].contains(&f.period().slots()));
        }
    }

    #[test]
    fn endpoints_exclude_access_points() {
        let graph = grid3();
        let aps = graph.select_access_points(2);
        let mut g = FlowSetGenerator::new(5);
        let set = g.generate(&graph, &cfg(20)).unwrap();
        for f in &set {
            assert!(!aps.contains(&f.source()));
            assert!(!aps.contains(&f.destination()));
        }
    }

    #[test]
    fn flows_are_in_dm_order() {
        let mut g = FlowSetGenerator::new(6);
        let set = g.generate(&grid3(), &cfg(20)).unwrap();
        let deadlines: Vec<u32> = set.iter().map(Flow::deadline_slots).collect();
        let mut sorted = deadlines.clone();
        sorted.sort_unstable();
        assert_eq!(deadlines, sorted);
    }

    #[test]
    fn centralized_flows_route_via_an_ap() {
        let graph = grid3();
        let aps = graph.select_access_points(2);
        let mut g = FlowSetGenerator::new(7);
        let config =
            FlowSetConfig::new(10, PeriodRange::new(0, 1).unwrap(), TrafficPattern::Centralized);
        let set = g.generate(&graph, &config).unwrap();
        // every route either passes an AP or was legitimately truncated
        // because the destination sat on the uplink — in a 3x3 grid with
        // central APs, most routes pass one.
        let via_ap = set.iter().filter(|f| aps.iter().any(|&a| f.visits(a))).count();
        assert!(via_ap >= set.len() / 2, "only {via_ap}/{} routes pass an AP", set.len());
    }

    #[test]
    fn tiny_graph_fails_gracefully() {
        // 2 nodes, both become APs → no candidates left
        let g2 = CommGraph::from_edges(2, &[(n(0), n(1))]);
        let mut g = FlowSetGenerator::new(1);
        assert!(matches!(g.generate(&g2, &cfg(1)), Err(FlowError::GenerationFailed(_))));
    }

    #[test]
    fn disconnected_graph_rejects_until_budget() {
        // two components; p2p pairs across components always fail
        let g2 = CommGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let mut g = FlowSetGenerator::new(1);
        // may succeed (same-component draws) or fail; must not loop forever
        let _ = g.generate(&g2, &cfg(3));
    }
}
