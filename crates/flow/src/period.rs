//! Harmonic periods measured in 10 ms TSCH slots.

use crate::FlowError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of 10 ms TSCH slots per second.
pub const SLOTS_PER_SECOND: u32 = 100;

/// A flow period, measured in slots.
///
/// Process-industry workloads use harmonic (power-of-two second) periods;
/// [`Period::from_exponent`] builds those, and the hyperperiod of a harmonic
/// set is simply its maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Period(u32);

impl Period {
    /// Creates a period from a slot count.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::ZeroPeriod`] if `slots == 0`.
    pub fn from_slots(slots: u32) -> Result<Self, FlowError> {
        if slots == 0 {
            Err(FlowError::ZeroPeriod)
        } else {
            Ok(Period(slots))
        }
    }

    /// Creates the period `2^exp` seconds, e.g. `from_exponent(-1)` is
    /// 0.5 s = 50 slots.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::PeriodBelowSlot`] when `2^exp` seconds is less
    /// than one slot (exp < −6 would round to zero slots).
    pub fn from_exponent(exp: i32) -> Result<Self, FlowError> {
        let seconds = 2f64.powi(exp);
        let slots = (seconds * f64::from(SLOTS_PER_SECOND)).round();
        if slots < 1.0 {
            return Err(FlowError::PeriodBelowSlot { exp });
        }
        Ok(Period(slots as u32))
    }

    /// The period in slots.
    pub fn slots(self) -> u32 {
        self.0
    }

    /// The period in seconds.
    pub fn seconds(self) -> f64 {
        f64::from(self.0) / f64::from(SLOTS_PER_SECOND)
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slots", self.0)
    }
}

/// An inclusive range of harmonic period exponents, `P = [2^x, 2^y]` seconds.
///
/// The paper's workloads draw each flow's period uniformly from
/// `{2^x, 2^{x+1}, …, 2^y}` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeriodRange {
    min_exp: i32,
    max_exp: i32,
}

impl PeriodRange {
    /// Creates the exponent range `[2^min_exp, 2^max_exp]` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidPeriodRange`] when `min_exp > max_exp`,
    /// or [`FlowError::PeriodBelowSlot`] when the smallest period would
    /// round below one slot.
    pub fn new(min_exp: i32, max_exp: i32) -> Result<Self, FlowError> {
        if min_exp > max_exp {
            return Err(FlowError::InvalidPeriodRange { min_exp, max_exp });
        }
        // Validate representability of the whole range.
        let _ = Period::from_exponent(min_exp)?;
        Ok(PeriodRange { min_exp, max_exp })
    }

    /// Smallest exponent in the range.
    pub fn min_exp(self) -> i32 {
        self.min_exp
    }

    /// Largest exponent in the range.
    pub fn max_exp(self) -> i32 {
        self.max_exp
    }

    /// All periods of the range, ascending.
    pub fn periods(self) -> Vec<Period> {
        (self.min_exp..=self.max_exp)
            .map(|e| Period::from_exponent(e).expect("range validated at construction"))
            .collect()
    }

    /// Draws a period uniformly from the harmonic set.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Period {
        let exp = rng.gen_range(self.min_exp..=self.max_exp);
        Period::from_exponent(exp).expect("range validated at construction")
    }
}

impl fmt::Display for PeriodRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[2^{}, 2^{}] s", self.min_exp, self.max_exp)
    }
}

/// Hyperperiod (least common multiple) of a set of periods, in slots.
///
/// For the harmonic sets used throughout the paper this equals the largest
/// period, but the implementation computes the true LCM so non-harmonic
/// workloads are also handled.
pub fn hyperperiod(periods: impl IntoIterator<Item = Period>) -> u32 {
    periods.into_iter().fold(1u32, |acc, p| lcm(acc, p.slots()))
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u32, b: u32) -> u32 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponent_periods_match_slot_counts() {
        assert_eq!(Period::from_exponent(-1).unwrap().slots(), 50);
        assert_eq!(Period::from_exponent(0).unwrap().slots(), 100);
        assert_eq!(Period::from_exponent(3).unwrap().slots(), 800);
    }

    #[test]
    fn sub_slot_period_is_rejected() {
        assert!(matches!(Period::from_exponent(-8), Err(FlowError::PeriodBelowSlot { .. })));
    }

    #[test]
    fn zero_period_is_rejected() {
        assert_eq!(Period::from_slots(0), Err(FlowError::ZeroPeriod));
    }

    #[test]
    fn seconds_round_trip() {
        let p = Period::from_exponent(-1).unwrap();
        assert!((p.seconds() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn range_enumerates_harmonic_periods() {
        let r = PeriodRange::new(-1, 2).unwrap();
        let slots: Vec<u32> = r.periods().iter().map(|p| p.slots()).collect();
        assert_eq!(slots, vec![50, 100, 200, 400]);
    }

    #[test]
    fn range_rejects_inversion() {
        assert!(matches!(PeriodRange::new(3, 1), Err(FlowError::InvalidPeriodRange { .. })));
    }

    #[test]
    fn sampling_stays_in_range_and_hits_all() {
        let r = PeriodRange::new(0, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let p = r.sample(&mut rng);
            assert!(p.slots() >= 100 && p.slots() <= 400);
            seen.insert(p.slots());
        }
        assert_eq!(seen.len(), 3, "uniform draw should hit every harmonic period");
    }

    #[test]
    fn hyperperiod_of_harmonic_set_is_max() {
        let ps = [50, 100, 800, 200].map(|s| Period::from_slots(s).unwrap());
        assert_eq!(hyperperiod(ps), 800);
    }

    #[test]
    fn hyperperiod_of_non_harmonic_set_is_lcm() {
        let ps = [6, 10].map(|s| Period::from_slots(s).unwrap());
        assert_eq!(hyperperiod(ps), 30);
    }

    #[test]
    fn hyperperiod_of_empty_set_is_one() {
        assert_eq!(hyperperiod(std::iter::empty()), 1);
    }
}
