//! Flows `⟨S, Y, D, P, φ⟩` and prioritized flow sets.

use crate::period::hyperperiod;
use crate::release::Job;
use crate::{FlowError, Period};
use serde::{Deserialize, Serialize};
use std::fmt;
use wsan_net::{DirectedLink, NodeId, Route};

/// Identifier of a flow within one [`FlowSet`], dense from 0.
///
/// Under fixed-priority scheduling the id doubles as the priority: flow `F_i`
/// has higher priority than `F_k` iff `i < k` (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(u32);

impl FlowId {
    /// Creates a flow id from a dense index.
    pub fn new(index: usize) -> Self {
        FlowId(u32::try_from(index).expect("flow index exceeds u32::MAX"))
    }

    /// The dense index, usable to index per-flow vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// An end-to-end real-time flow `F = ⟨S, Y, D, P, φ⟩`.
///
/// Time quantities are in 10 ms slots; the invariant `1 ≤ D ≤ P` is enforced
/// at construction.
///
/// The wireless path `φ` consists of one or more *segments*. Peer-to-peer
/// flows have a single segment (source to destination). Centralized flows
/// have two: source → uplink access point, then downlink access point →
/// destination — the hop between access points rides the wired gateway
/// backbone and consumes no wireless slots. A flow's transmissions are the
/// concatenation of its segments' links, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    id: FlowId,
    segments: Vec<Route>,
    period: Period,
    deadline_slots: u32,
}

impl Flow {
    /// Creates a single-segment flow over `route` with the given period and
    /// relative deadline (slots).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidDeadline`] unless `1 ≤ deadline ≤ period`.
    pub fn new(
        id: FlowId,
        route: Route,
        period: Period,
        deadline_slots: u32,
    ) -> Result<Self, FlowError> {
        Flow::with_segments(id, vec![route], period, deadline_slots)
    }

    /// Creates a flow whose wireless path is the given segment sequence
    /// (gateway-wired hand-offs between consecutive segments).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidDeadline`] unless `1 ≤ deadline ≤ period`.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty.
    pub fn with_segments(
        id: FlowId,
        segments: Vec<Route>,
        period: Period,
        deadline_slots: u32,
    ) -> Result<Self, FlowError> {
        assert!(!segments.is_empty(), "a flow needs at least one route segment");
        if deadline_slots == 0 || deadline_slots > period.slots() {
            return Err(FlowError::InvalidDeadline {
                deadline: deadline_slots,
                period: period.slots(),
            });
        }
        Ok(Flow { id, segments, period, deadline_slots })
    }

    /// The flow id (doubles as fixed priority: lower id = higher priority).
    pub fn id(&self) -> FlowId {
        self.id
    }

    /// Source node `S` (start of the first segment).
    pub fn source(&self) -> NodeId {
        self.segments[0].source()
    }

    /// Destination node `Y` (end of the last segment).
    pub fn destination(&self) -> NodeId {
        self.segments.last().expect("non-empty").destination()
    }

    /// The wireless route segments of `φ`, in traversal order.
    pub fn segments(&self) -> &[Route] {
        &self.segments
    }

    /// The flow's link transmissions `l_1 … l_k`: all segments' links,
    /// concatenated in traversal order.
    pub fn links(&self) -> Vec<DirectedLink> {
        self.segments.iter().flat_map(|r| r.links()).collect()
    }

    /// Total number of wireless hops across all segments.
    pub fn hop_count(&self) -> usize {
        self.segments.iter().map(Route::hop_count).sum()
    }

    /// Whether `node` appears on any segment.
    pub fn visits(&self, node: NodeId) -> bool {
        self.segments.iter().any(|r| r.visits(node))
    }

    /// Period `P` in slots.
    pub fn period(&self) -> Period {
        self.period
    }

    /// Relative deadline `D` in slots.
    pub fn deadline_slots(&self) -> u32 {
        self.deadline_slots
    }

    /// Jobs released by this flow within `[0, horizon)` slots: job `k` is
    /// released at `k·P` with absolute deadline `k·P + D`.
    pub fn jobs(&self, horizon: u32) -> Vec<Job> {
        let p = self.period.slots();
        (0..horizon.div_ceil(p))
            .map(|k| Job::new(self.id, k, k * p, k * p + self.deadline_slots))
            .collect()
    }

    /// Re-tags the flow with a new id (used when sorting a set by priority).
    pub(crate) fn with_id(mut self, id: FlowId) -> Self {
        self.id = id;
        self
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}→{} P={} D={} ({} hops, {} segment{})",
            self.id,
            self.source(),
            self.destination(),
            self.period.slots(),
            self.deadline_slots,
            self.hop_count(),
            self.segments.len(),
            if self.segments.len() == 1 { "" } else { "s" }
        )
    }
}

/// A set of flows ordered by fixed priority (index 0 = highest).
///
/// The flow at position `i` always has `FlowId(i)`; constructing a set
/// re-tags flows to restore this invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSet {
    flows: Vec<Flow>,
    access_points: Vec<NodeId>,
}

impl FlowSet {
    /// Creates a flow set from flows already in priority order.
    ///
    /// Flows are re-tagged with dense ids matching their position.
    pub fn new(flows: Vec<Flow>, access_points: Vec<NodeId>) -> Self {
        let flows = flows.into_iter().enumerate().map(|(i, f)| f.with_id(FlowId::new(i))).collect();
        FlowSet { flows, access_points }
    }

    /// Number of flows `N`.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Flows in priority order (highest first).
    pub fn iter(&self) -> impl Iterator<Item = &Flow> {
        self.flows.iter()
    }

    /// The flow with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// The designated access points of this workload.
    pub fn access_points(&self) -> &[NodeId] {
        &self.access_points
    }

    /// Hyperperiod of the set in slots (LCM of periods; the maximum period
    /// for the harmonic workloads of the paper). 1 for an empty set.
    pub fn hyperperiod(&self) -> u32 {
        hyperperiod(self.flows.iter().map(Flow::period))
    }

    /// All jobs of all flows within one hyperperiod, grouped by flow in
    /// priority order.
    pub fn jobs(&self) -> Vec<Vec<Job>> {
        let h = self.hyperperiod();
        self.flows.iter().map(|f| f.jobs(h)).collect()
    }

    /// Total number of link transmissions per hyperperiod *before* retry
    /// provisioning: `Σ_i (jobs_i × hops_i)`.
    pub fn transmission_demand(&self) -> usize {
        let h = self.hyperperiod();
        self.flows.iter().map(|f| (h / f.period().slots()) as usize * f.hop_count()).sum()
    }
}

impl<'a> IntoIterator for &'a FlowSet {
    type Item = &'a Flow;
    type IntoIter = std::slice::Iter<'a, Flow>;
    fn into_iter(self) -> Self::IntoIter {
        self.flows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn route(ids: &[usize]) -> Route {
        Route::new(ids.iter().map(|&i| n(i)).collect())
    }

    fn flow(i: usize, period: u32, deadline: u32) -> Flow {
        Flow::new(FlowId::new(i), route(&[0, 1, 2]), Period::from_slots(period).unwrap(), deadline)
            .unwrap()
    }

    #[test]
    fn deadline_must_not_exceed_period() {
        let r = route(&[0, 1]);
        let p = Period::from_slots(100).unwrap();
        assert!(Flow::new(FlowId::new(0), r.clone(), p, 101).is_err());
        assert!(Flow::new(FlowId::new(0), r.clone(), p, 0).is_err());
        assert!(Flow::new(FlowId::new(0), r, p, 100).is_ok());
    }

    #[test]
    fn endpoints_come_from_route() {
        let f = flow(0, 100, 80);
        assert_eq!(f.source(), n(0));
        assert_eq!(f.destination(), n(2));
        assert_eq!(f.hop_count(), 2);
        assert!(f.visits(n(1)));
        assert!(!f.visits(n(7)));
    }

    #[test]
    fn two_segment_flow_concatenates_links() {
        // uplink 0→1→2 (AP), wired to AP 5, downlink 5→6
        let f = Flow::with_segments(
            FlowId::new(0),
            vec![route(&[0, 1, 2]), route(&[5, 6])],
            Period::from_slots(100).unwrap(),
            80,
        )
        .unwrap();
        assert_eq!(f.source(), n(0));
        assert_eq!(f.destination(), n(6));
        assert_eq!(f.hop_count(), 3);
        let links = f.links();
        assert_eq!(links.len(), 3);
        assert_eq!(links[0], DirectedLink::new(n(0), n(1)));
        assert_eq!(links[2], DirectedLink::new(n(5), n(6)));
        assert!(f.visits(n(5)));
        assert_eq!(f.segments().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one route segment")]
    fn empty_segments_panic() {
        let _ = Flow::with_segments(FlowId::new(0), vec![], Period::from_slots(10).unwrap(), 5);
    }

    #[test]
    fn jobs_cover_the_horizon() {
        let f = flow(0, 100, 80);
        let jobs = f.jobs(400);
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].release_slot(), 0);
        assert_eq!(jobs[0].deadline_slot(), 80);
        assert_eq!(jobs[3].release_slot(), 300);
        assert_eq!(jobs[3].deadline_slot(), 380);
    }

    #[test]
    fn jobs_with_partial_last_period() {
        let f = flow(0, 100, 50);
        assert_eq!(f.jobs(150).len(), 2);
    }

    #[test]
    fn flow_set_retags_ids_by_position() {
        let set = FlowSet::new(vec![flow(7, 100, 80), flow(3, 50, 40)], vec![n(9)]);
        assert_eq!(set.flow(FlowId::new(0)).id(), FlowId::new(0));
        assert_eq!(set.flow(FlowId::new(1)).id(), FlowId::new(1));
        assert_eq!(set.flow(FlowId::new(1)).period().slots(), 50);
    }

    #[test]
    fn hyperperiod_is_max_for_harmonic() {
        let set = FlowSet::new(vec![flow(0, 100, 80), flow(1, 400, 300), flow(2, 50, 25)], vec![]);
        assert_eq!(set.hyperperiod(), 400);
    }

    #[test]
    fn transmission_demand_counts_jobs_times_hops() {
        let set = FlowSet::new(vec![flow(0, 100, 80), flow(1, 200, 150)], vec![]);
        assert_eq!(set.transmission_demand(), 6);
    }

    #[test]
    fn empty_set_properties() {
        let set = FlowSet::new(vec![], vec![]);
        assert!(set.is_empty());
        assert_eq!(set.hyperperiod(), 1);
        assert_eq!(set.transmission_demand(), 0);
    }
}
