//! Fixed-priority assignment policies.
//!
//! The paper adopts *Deadline Monotonic* (DM): the flow with the shortest
//! relative deadline gets the highest priority. Sorting is stable with a
//! deterministic tie-break (period, then source id), so a flow set has one
//! canonical DM order.

use crate::{Flow, FlowSet};

/// Sorts flows into Deadline-Monotonic order (shortest deadline first) and
/// re-tags their ids so that `FlowId(0)` is the highest priority.
///
/// Ties break by shorter period, then by lower source node id, keeping the
/// order deterministic across runs.
pub fn deadline_monotonic(mut flows: Vec<Flow>, access_points: Vec<wsan_net::NodeId>) -> FlowSet {
    flows.sort_by_key(|f| (f.deadline_slots(), f.period().slots(), f.source().index()));
    FlowSet::new(flows, access_points)
}

/// Sorts flows into Rate-Monotonic order (shortest period first), provided
/// as an alternative fixed-priority policy for experimentation.
///
/// Ties break by shorter deadline, then by lower source node id.
pub fn rate_monotonic(mut flows: Vec<Flow>, access_points: Vec<wsan_net::NodeId>) -> FlowSet {
    flows.sort_by_key(|f| (f.period().slots(), f.deadline_slots(), f.source().index()));
    FlowSet::new(flows, access_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlowId, Period};
    use wsan_net::{NodeId, Route};

    fn flow(src: usize, period: u32, deadline: u32) -> Flow {
        let route = Route::new(vec![NodeId::new(src), NodeId::new(src + 40)]);
        Flow::new(FlowId::new(0), route, Period::from_slots(period).unwrap(), deadline).unwrap()
    }

    #[test]
    fn dm_orders_by_deadline() {
        let set = deadline_monotonic(
            vec![flow(0, 400, 300), flow(1, 100, 50), flow(2, 200, 120)],
            vec![],
        );
        let deadlines: Vec<u32> = set.iter().map(Flow::deadline_slots).collect();
        assert_eq!(deadlines, vec![50, 120, 300]);
        // ids re-tagged to match priority positions
        assert_eq!(set.flow(FlowId::new(0)).deadline_slots(), 50);
    }

    #[test]
    fn dm_ties_break_by_period_then_source() {
        let set = deadline_monotonic(
            vec![flow(5, 400, 100), flow(3, 200, 100), flow(1, 200, 100)],
            vec![],
        );
        let sources: Vec<usize> = set.iter().map(|f| f.source().index()).collect();
        assert_eq!(sources, vec![1, 3, 5]);
    }

    #[test]
    fn rm_orders_by_period() {
        let set =
            rate_monotonic(vec![flow(0, 400, 100), flow(1, 100, 90), flow(2, 200, 80)], vec![]);
        let periods: Vec<u32> = set.iter().map(|f| f.period().slots()).collect();
        assert_eq!(periods, vec![100, 200, 400]);
    }
}
