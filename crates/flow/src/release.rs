//! Job releases: one packet instance of a flow within the hyperperiod.

use crate::FlowId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One released packet of a flow: the `k`-th job is released at `k·P` and
/// must reach the destination by `k·P + D`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Job {
    flow: FlowId,
    index: u32,
    release_slot: u32,
    deadline_slot: u32,
}

impl Job {
    /// Creates job `index` of `flow` with absolute release and deadline
    /// slots.
    ///
    /// # Panics
    ///
    /// Panics if `deadline_slot <= release_slot` (a job needs at least one
    /// slot to transmit).
    pub fn new(flow: FlowId, index: u32, release_slot: u32, deadline_slot: u32) -> Self {
        assert!(deadline_slot > release_slot, "job deadline must fall after its release");
        Job { flow, index, release_slot, deadline_slot }
    }

    /// The flow this job belongs to.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Position of this job within its flow's release sequence (0-based).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Absolute release slot (first slot the job may transmit in).
    pub fn release_slot(&self) -> u32 {
        self.release_slot
    }

    /// Absolute deadline slot `d_i`: the last slot the packet may occupy.
    pub fn deadline_slot(&self) -> u32 {
        self.deadline_slot
    }

    /// Number of slots in the job's scheduling window `[release, deadline]`.
    pub fn window_len(&self) -> u32 {
        self.deadline_slot - self.release_slot
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{} [{}, {}]", self.flow, self.index, self.release_slot, self.deadline_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_accessors() {
        let j = Job::new(FlowId::new(2), 3, 300, 380);
        assert_eq!(j.flow(), FlowId::new(2));
        assert_eq!(j.index(), 3);
        assert_eq!(j.release_slot(), 300);
        assert_eq!(j.deadline_slot(), 380);
        assert_eq!(j.window_len(), 80);
    }

    #[test]
    #[should_panic(expected = "deadline must fall after")]
    fn deadline_before_release_panics() {
        let _ = Job::new(FlowId::new(0), 0, 100, 100);
    }

    #[test]
    fn display_shows_window() {
        let j = Job::new(FlowId::new(1), 0, 0, 50);
        assert_eq!(j.to_string(), "F1#0 [0, 50]");
    }
}
