//! Error type for flow-model construction.

use std::error::Error;
use std::fmt;

/// Errors produced while building flows or generating flow sets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlowError {
    /// Deadline exceeds period (the model requires `D_i ≤ P_i`) or is zero.
    InvalidDeadline {
        /// Deadline in slots.
        deadline: u32,
        /// Period in slots.
        period: u32,
    },
    /// A period of zero slots.
    ZeroPeriod,
    /// A period exponent range with `min > max`.
    InvalidPeriodRange {
        /// Minimum exponent.
        min_exp: i32,
        /// Maximum exponent.
        max_exp: i32,
    },
    /// `2^exp` seconds is under one slot, so the period is unrepresentable.
    PeriodBelowSlot {
        /// Offending exponent.
        exp: i32,
    },
    /// The topology cannot host the requested flow set (e.g. too few
    /// candidate source/destination nodes, or no route between any pair).
    GenerationFailed(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidDeadline { deadline, period } => {
                write!(f, "deadline {deadline} slots is invalid for period {period} slots (need 1 ≤ D ≤ P)")
            }
            FlowError::ZeroPeriod => write!(f, "a flow period must be at least one slot"),
            FlowError::InvalidPeriodRange { min_exp, max_exp } => {
                write!(f, "invalid period exponent range [{min_exp}, {max_exp}]")
            }
            FlowError::PeriodBelowSlot { exp } => {
                write!(f, "period 2^{exp} s is shorter than one 10 ms slot")
            }
            FlowError::GenerationFailed(why) => write!(f, "flow-set generation failed: {why}"),
        }
    }
}

impl Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FlowError::InvalidDeadline { deadline: 200, period: 100 };
        assert!(e.to_string().contains("200"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
