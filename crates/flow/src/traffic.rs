//! Traffic patterns: centralized (through the gateway) vs. peer-to-peer.

use crate::FlowError;
use serde::{Deserialize, Serialize};
use wsan_net::{routing, CommGraph, NodeId, Route};

/// How a control loop's packets traverse the network (§VII of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// A sensor packet is routed to the controller through an access point
    /// wired to the gateway, and the control message returns from an access
    /// point to the actuator. The wireless workload has two segments —
    /// source → nearest uplink AP, and nearest downlink AP → destination —
    /// joined by the zero-slot wired backbone between access points.
    /// Centralized paths are roughly twice as long as peer-to-peer ones and
    /// concentrate traffic around the access points, which is why the paper
    /// finds channel reuse less effective under this pattern.
    Centralized,
    /// The controller runs on a field device: a single shortest route from
    /// source to destination, bypassing the gateway.
    PeerToPeer,
}

impl TrafficPattern {
    /// Builds a flow's wireless route segments from `src` to `dst` under
    /// this pattern.
    ///
    /// Peer-to-peer flows return a single shortest-path segment.
    /// Centralized flows return the uplink segment to the access point
    /// nearest `src` and the downlink segment from the access point nearest
    /// `dst`; if both pick the same AP (or the endpoints *are* APs), the
    /// degenerate segments collapse as expected.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::GenerationFailed`] when no access point is
    /// reachable (centralized) or no path exists (peer-to-peer).
    pub fn build_segments(
        self,
        graph: &CommGraph,
        src: NodeId,
        dst: NodeId,
        access_points: &[NodeId],
    ) -> Result<Vec<Route>, FlowError> {
        match self {
            TrafficPattern::PeerToPeer => routing::shortest_path(graph, src, dst)
                .map(|r| vec![r])
                .map_err(|e| FlowError::GenerationFailed(e.to_string())),
            TrafficPattern::Centralized => {
                if access_points.is_empty() {
                    return Err(FlowError::GenerationFailed(
                        "centralized traffic requires at least one access point".to_string(),
                    ));
                }
                let up_ap = nearest_ap(graph, src, access_points)?;
                let down_ap = nearest_ap(graph, dst, access_points)?;
                // degenerate cases: endpoint is (or reaches through) its AP
                if src == up_ap && dst == down_ap {
                    return Err(FlowError::GenerationFailed(
                        "both endpoints are access points; the flow is wired end-to-end"
                            .to_string(),
                    ));
                }
                if src == up_ap {
                    // pure downlink: controller output to an actuator
                    let down = routing::shortest_path(graph, down_ap, dst)
                        .map_err(|e| FlowError::GenerationFailed(e.to_string()))?;
                    return Ok(vec![down]);
                }
                let up = routing::shortest_path(graph, src, up_ap)
                    .map_err(|e| FlowError::GenerationFailed(e.to_string()))?;
                if dst == down_ap {
                    // pure uplink: sensor report consumed at the gateway side
                    return Ok(vec![up]);
                }
                if up.visits(dst) {
                    // destination already sits on the uplink; deliver on the
                    // way up (single truncated segment)
                    let cut: Vec<NodeId> = up
                        .nodes()
                        .iter()
                        .copied()
                        .take_while(|&n| n != dst)
                        .chain(std::iter::once(dst))
                        .collect();
                    return Ok(vec![Route::new(cut)]);
                }
                let down = routing::shortest_path(graph, down_ap, dst)
                    .map_err(|e| FlowError::GenerationFailed(e.to_string()))?;
                Ok(vec![up, down])
            }
        }
    }
}

/// The access point with the fewest hops from `node` (ties toward the lower
/// id).
fn nearest_ap(
    graph: &CommGraph,
    node: NodeId,
    access_points: &[NodeId],
) -> Result<NodeId, FlowError> {
    let dist = graph.bfs_from(node);
    access_points
        .iter()
        .copied()
        .filter(|ap| dist[ap.index()] != u32::MAX)
        .min_by_key(|ap| (dist[ap.index()], ap.index()))
        .ok_or_else(|| {
            FlowError::GenerationFailed(format!("node {node} cannot reach any access point"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Line: 0 - 1 - 2 - 3 - 4.
    fn line() -> CommGraph {
        CommGraph::from_edges(5, &[(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(3), n(4))])
    }

    #[test]
    fn p2p_takes_shortest_path() {
        let g = line();
        let segs = TrafficPattern::PeerToPeer.build_segments(&g, n(0), n(4), &[n(2)]).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].nodes(), &[n(0), n(1), n(2), n(3), n(4)]);
    }

    #[test]
    fn centralized_with_one_ap_splits_at_it() {
        let g = line();
        let segs = TrafficPattern::Centralized.build_segments(&g, n(0), n(4), &[n(2)]).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].nodes(), &[n(0), n(1), n(2)]);
        assert_eq!(segs[1].nodes(), &[n(2), n(3), n(4)]);
    }

    #[test]
    fn centralized_with_two_aps_uses_both() {
        // APs at 1 and 3: uplink 0→1, wired 1⇢3, downlink 3→4
        let g = line();
        let segs =
            TrafficPattern::Centralized.build_segments(&g, n(0), n(4), &[n(1), n(3)]).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].nodes(), &[n(0), n(1)]);
        assert_eq!(segs[1].nodes(), &[n(3), n(4)]);
    }

    #[test]
    fn centralized_without_aps_fails() {
        let g = line();
        let err = TrafficPattern::Centralized.build_segments(&g, n(0), n(4), &[]).unwrap_err();
        assert!(matches!(err, FlowError::GenerationFailed(_)));
    }

    #[test]
    fn centralized_dst_on_uplink_truncates() {
        let g = line();
        // src 0, dst 1, AP 2 for both: uplink 0-1-2 passes dst → route 0-1
        let segs = TrafficPattern::Centralized.build_segments(&g, n(0), n(1), &[n(2)]).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].nodes(), &[n(0), n(1)]);
    }

    #[test]
    fn centralized_src_is_ap_goes_straight_down() {
        let g = line();
        let segs = TrafficPattern::Centralized.build_segments(&g, n(2), n(4), &[n(2)]).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].nodes(), &[n(2), n(3), n(4)]);
    }

    #[test]
    fn centralized_dst_is_ap_is_pure_uplink() {
        let g = line();
        let segs = TrafficPattern::Centralized.build_segments(&g, n(0), n(2), &[n(2)]).unwrap();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].nodes(), &[n(0), n(1), n(2)]);
    }

    #[test]
    fn centralized_between_two_aps_is_wired_only() {
        let g = line();
        let err =
            TrafficPattern::Centralized.build_segments(&g, n(1), n(3), &[n(1), n(3)]).unwrap_err();
        assert!(matches!(err, FlowError::GenerationFailed(_)));
    }

    #[test]
    fn unreachable_p2p_fails() {
        let g = CommGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        assert!(TrafficPattern::PeerToPeer.build_segments(&g, n(0), n(3), &[]).is_err());
    }

    #[test]
    fn centralized_unreachable_ap_fails() {
        let g = CommGraph::from_edges(4, &[(n(0), n(1)), (n(2), n(3))]);
        let err = TrafficPattern::Centralized.build_segments(&g, n(0), n(1), &[n(3)]).unwrap_err();
        assert!(matches!(err, FlowError::GenerationFailed(_)));
    }
}
