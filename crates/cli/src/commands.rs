//! The `wsan` subcommands.

use crate::args::Args;
use wsan_core::{metrics, repair, NetworkModel};
use wsan_detect::LinkVerdict;
use wsan_expr::detection::{evaluate as detection, DetectionConfig};
use wsan_expr::recovery::{campaign, SupervisorConfig};
use wsan_expr::Algorithm;
use wsan_flow::{FlowSet, FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, ChannelSet, Prr, Topology};
use wsan_sim::{SimConfig, Simulator, WifiInterferer};

/// Top-level usage text.
pub const USAGE: &str = "usage:
  wsan topology --testbed <indriya|wustl> [--seed N] [--channels a-b] [--dot FILE]
  wsan schedule --testbed <indriya|wustl> --flows N [--algo nr|ra|rc|rc-lite]
                [--pattern p2p|centralized] [--channels a-b] [--seed N]
                [--periods x,y] [--rho N]
  wsan simulate (schedule options) [--reps N] [--wifi] [--autonomous L]
                [--engine slots|events]         # slot-stepper or event queue
  wsan run      alias for simulate
  wsan export   (schedule options) --out FILE     # CSV slotframe
  wsan detect   --testbed <indriya|wustl> --flows N [--epochs N] [--seed N]
                [--channels a-b] [--algo ra|rc] [--repair]
  wsan faults   --testbed <indriya|wustl> --flows N [--collapse k1,k2,..]
                [--epochs N] [--algo nr|ra|rc] [--channels a-b] [--seed N]
                [--out FILE]                    # fault campaign → JSON
  wsan campaign --name <smoke|schedulable|efficiency|exectime|reliability|detection|faults|churn|scale>
                [--jobs N] [--resume] [--sets N] [--seed N] [--quick]
                [--engine slots|events]
                [--out FILE] [--manifest FILE]  # checkpointed sweep → JSON
  wsan shard    --nodes N --shards K [--algo nr|ra|rc|rc-lite] [--rho N]
                [--flows-per-shard N] [--pattern p2p|centralized] [--periods x,y]
                [--seed N] [--jobs N] [--channels a-b] [--out FILE]
                                                # city plant → validated stitched schedule
                                                # (all 16 channels unless --channels given)
  wsan serve    --testbed <indriya|wustl> [--algo nr|ra|rc] [--rho N]
                [--channels a-b] [--seed N] [--prr X]
                [--journal FILE | --resume-journal FILE] [--paranoid]
                [--deadline-us N] [--listen SOCKET]
                [--status-socket SOCKET]        # live status/metrics/flightrec plane
                                                # JSONL gateway on stdin/socket
  wsan status   --socket SOCKET [--query status|metrics|flightrec]
                                                # one-shot status-plane client
  wsan trace export --in DUMP.jsonl [--out FILE] [--chrome]
                                                # flight-recorder dump → Chrome trace

observability (accepted by every subcommand):
  --log-level off|error|warn|info|debug|trace   structured events to stderr
  --log-format pretty|json                      event rendering (default pretty)
  --metrics-out FILE                            write a metrics snapshot as JSON
  --metrics-interval-ms N                       also re-flush the snapshot every N ms
  --flightrec [N]                               arm an N-record flight recorder (default 4096)
  --flightrec-dump FILE                         dump the ring as JSONL on exit/error/panic";

/// Dispatches a full argv (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on any misuse or failure.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err("missing subcommand".to_string());
    };
    // `wsan trace export` is the one two-word subcommand: strip the
    // positional verb before the flags-only parser sees it.
    let rest: &[String] = if command == "trace" {
        match rest.split_first() {
            Some((verb, tail)) if verb == "export" => tail,
            _ => {
                return Err(
                    "usage: wsan trace export --in DUMP.jsonl [--out FILE] [--chrome]".to_string()
                )
            }
        }
    } else {
        rest
    };
    let args = Args::parse(rest)?;
    init_observability(&args)?;
    let result = match command.as_str() {
        "topology" => cmd_topology(&args),
        "schedule" => cmd_schedule(&args),
        "simulate" | "run" => cmd_simulate(&args),
        "export" => cmd_export(&args),
        "detect" => cmd_detect(&args),
        "faults" => cmd_faults(&args),
        "campaign" => cmd_campaign(&args),
        "shard" => cmd_shard(&args),
        "serve" => crate::serve::cmd_serve(&args),
        "status" => crate::serve::cmd_status(&args),
        "trace" => cmd_trace_export(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    };
    wsan_obs::flush();
    if result.is_ok() {
        write_metrics_report(&args)?;
        write_flightrec_dump(&args)?;
    }
    result
}

/// Observability options accepted by every subcommand.
const GLOBAL_OPTS: &[&str] = &[
    "log-level",
    "log-format",
    "metrics-out",
    "metrics-interval-ms",
    "flightrec",
    "flightrec-dump",
];

/// Unknown-option check that also admits the global observability options.
pub(crate) fn known(args: &Args, allowed: &[&str]) -> Result<(), String> {
    let mut all = allowed.to_vec();
    all.extend_from_slice(GLOBAL_OPTS);
    args.ensure_known(&all)
}

/// Turns the observability flags into an installed subscriber, an enabled
/// global metrics registry, an armed flight recorder, a periodic metrics
/// flusher, and/or the crash-flush panic hook, before the command runs.
/// With none of the flags this is a no-op and the stack stays on its
/// zero-overhead path.
fn init_observability(args: &Args) -> Result<(), String> {
    if args.has("metrics-out") {
        wsan_obs::set_metrics_enabled(true);
    }
    if args.has("flightrec") || args.has("flightrec-dump") {
        // Trace level so simulator event dispatch is captured too.
        let capacity = match args.get("flightrec") {
            None | Some("") => 4096,
            Some(raw) => {
                raw.parse().map_err(|_| format!("--flightrec expects a capacity, got '{raw}'"))?
            }
        };
        wsan_obs::flightrec::arm(capacity, wsan_obs::Level::Trace);
    }
    install_panic_hook(args);
    if args.has("metrics-interval-ms") {
        if !args.has("metrics-out") {
            return Err("--metrics-interval-ms requires --metrics-out FILE".to_string());
        }
        let interval: u64 = args.get_or("metrics-interval-ms", 1000)?;
        spawn_metrics_flusher(
            args.get("metrics-out").expect("checked above").to_string(),
            std::time::Duration::from_millis(interval.max(10)),
        );
    }
    let level = match args.get("log-level") {
        Some(raw) => wsan_obs::Level::parse(raw)?,
        // --log-format alone implies logging at the default level
        None if args.has("log-format") => Some(wsan_obs::Level::Info),
        None => None,
    };
    let Some(level) = level else {
        return Ok(());
    };
    match args.get("log-format") {
        None | Some("pretty") => {
            wsan_obs::install(std::sync::Arc::new(wsan_obs::StderrSubscriber::new(level)));
        }
        Some("json") => {
            wsan_obs::install(std::sync::Arc::new(wsan_obs::JsonLinesSubscriber::new(
                level,
                std::io::stderr(),
            )));
        }
        Some(other) => return Err(format!("unknown log format '{other}' (pretty|json)")),
    }
    Ok(())
}

/// Writes the global metrics snapshot to `--metrics-out` after a successful
/// command, creating parent directories as needed.
fn write_metrics_report(args: &Args) -> Result<(), String> {
    let Some(path) = args.get("metrics-out") else {
        return Ok(());
    };
    if path.is_empty() {
        return Err("--metrics-out expects a file path".to_string());
    }
    let snapshot = wsan_obs::global_metrics().snapshot();
    let json = serde_json::to_string_pretty(&snapshot)
        .map_err(|e| format!("cannot serialise metrics: {e}"))?;
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("metrics snapshot written to {path}");
    Ok(())
}

/// Writes `contents` to `path` through a uniquely named temporary file and
/// an atomic rename, so a concurrent reader (or a `kill -9` mid-write)
/// never observes a half-written file.
fn atomic_write(path: &str, contents: &str) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = format!("{path}.tmp{}", TMP_SEQ.fetch_add(1, Ordering::Relaxed));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Paths the panic hook flushes to; refreshed on every dispatch so the
/// hook (installed once per process) always sees the latest flags.
static PANIC_FLUSH: std::sync::OnceLock<std::sync::Mutex<PanicFlushPaths>> =
    std::sync::OnceLock::new();

#[derive(Default)]
struct PanicFlushPaths {
    metrics_out: Option<String>,
    flightrec_dump: Option<String>,
}

/// Installs (once) a panic hook that flushes the metrics snapshot and the
/// flight-recorder ring before unwinding, so a crashing process still
/// leaves its last observations behind. Chains the previous hook.
fn install_panic_hook(args: &Args) {
    let paths = PANIC_FLUSH.get_or_init(std::sync::Mutex::default);
    if let Ok(mut p) = paths.lock() {
        // last dispatch with the flag wins; a later flag-less dispatch (as
        // in the test harness) never un-registers a crash-flush target
        if let Some(out) = args.get("metrics-out") {
            p.metrics_out = Some(out.to_string());
        }
        if let Some(dump) = args.get("flightrec-dump") {
            p.flightrec_dump = Some(dump.to_string());
        }
    }
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            panic_flush();
            previous(info);
        }));
    });
}

/// Best-effort flush performed by the panic hook: metrics to
/// `--metrics-out`, flight-recorder ring to `--flightrec-dump` (or stderr
/// when armed without a dump path). Must not panic or allocate the world —
/// every failure is swallowed.
fn panic_flush() {
    let Some(paths) = PANIC_FLUSH.get() else { return };
    let Ok(paths) = paths.lock() else { return };
    if let Some(path) = &paths.metrics_out {
        if wsan_obs::metrics_enabled() {
            if let Ok(json) = serde_json::to_string_pretty(&wsan_obs::global_metrics().snapshot()) {
                let _ = atomic_write(path, &json);
            }
        }
    }
    if let Some(rec) = wsan_obs::flightrec::armed() {
        let dump = rec.dump_jsonl();
        match &paths.flightrec_dump {
            Some(path) => {
                let _ = atomic_write(path, &dump);
            }
            None => eprint!("{dump}"),
        }
    }
}

/// Spawns the detached `--metrics-interval-ms` flusher: re-renders the
/// global metrics snapshot every `interval` and replaces `--metrics-out`
/// atomically, so a live (or killed) process always leaves a recent,
/// complete report on disk.
fn spawn_metrics_flusher(path: String, interval: std::time::Duration) {
    std::thread::spawn(move || loop {
        std::thread::sleep(interval);
        if let Ok(json) = serde_json::to_string_pretty(&wsan_obs::global_metrics().snapshot()) {
            let _ = atomic_write(&path, &json);
        }
    });
}

/// Writes the armed flight recorder's ring to `--flightrec-dump` after a
/// successful command (the gateway additionally dumps on request errors,
/// and the panic hook on crashes).
fn write_flightrec_dump(args: &Args) -> Result<(), String> {
    let Some(path) = args.get("flightrec-dump") else {
        return Ok(());
    };
    if path.is_empty() {
        return Err("--flightrec-dump expects a file path".to_string());
    }
    let Some(rec) = wsan_obs::flightrec::armed() else {
        return Ok(());
    };
    let records = rec.dump();
    let count = records.len();
    let mut jsonl = String::new();
    for record in &records {
        jsonl.push_str(&serde_json::to_string(record).map_err(|e| e.to_string())?);
        jsonl.push('\n');
    }
    atomic_write(path, &jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("flight recorder dump ({count} records) written to {path}");
    Ok(())
}

/// `wsan trace export`: reads a flight-recorder JSONL dump and re-emits it
/// either normalised (validating every line) or, with `--chrome`, as
/// Chrome `trace_event` JSON loadable in chrome://tracing / Perfetto.
fn cmd_trace_export(args: &Args) -> Result<(), String> {
    known(args, &["in", "out", "chrome"])?;
    let Some(input) = args.get("in") else {
        return Err("--in DUMP.jsonl is required".to_string());
    };
    let raw = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let mut records: Vec<wsan_obs::FlightRecord> = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: wsan_obs::FlightRecord = serde_json::from_str(line)
            .map_err(|e| format!("{input}:{}: bad flight record: {e}", lineno + 1))?;
        records.push(record);
    }
    records.sort_by_key(|r| r.seq);
    let rendered = if args.has("chrome") {
        let mut json = wsan_obs::chrome_trace(&records);
        json.push('\n');
        json
    } else {
        let mut jsonl = String::new();
        for record in &records {
            jsonl.push_str(&serde_json::to_string(record).map_err(|e| e.to_string())?);
            jsonl.push('\n');
        }
        jsonl
    };
    match args.get("out") {
        Some(path) if !path.is_empty() => {
            atomic_write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("{} records exported to {path}", records.len());
        }
        _ => print!("{rendered}"),
    }
    Ok(())
}

pub(crate) fn load_testbed(args: &Args) -> Result<Topology, String> {
    if let Some(path) = args.get("load") {
        return Topology::load(path).map_err(|e| format!("cannot load {path}: {e}"));
    }
    let seed: u64 = args.get_or("seed", 1)?;
    match args.get("testbed") {
        Some("indriya") => Ok(testbeds::indriya(seed)),
        Some("wustl") => Ok(testbeds::wustl(seed)),
        Some(other) => Err(format!("unknown testbed '{other}' (indriya|wustl)")),
        None => Err("--testbed is required (or --load FILE)".to_string()),
    }
}

pub(crate) fn channels_of(args: &Args) -> Result<ChannelSet, String> {
    let (a, b) = args.channel_range()?;
    ChannelId::range(a, b).map_err(|e| e.to_string())
}

fn algorithm_of(args: &Args, default: Algorithm) -> Result<Algorithm, String> {
    let rho: u32 = args.get_or("rho", 2)?;
    match args.get("algo") {
        None => Ok(default),
        Some("nr") => Ok(Algorithm::Nr),
        Some("ra") => Ok(Algorithm::Ra { rho }),
        Some("rc") => Ok(Algorithm::Rc { rho_t: rho }),
        Some("rc-lite") => Ok(Algorithm::RcLite { rho_t: rho }),
        Some(other) => Err(format!("unknown algorithm '{other}' (nr|ra|rc|rc-lite)")),
    }
}

fn pattern_of(args: &Args) -> Result<TrafficPattern, String> {
    match args.get("pattern") {
        None | Some("p2p") => Ok(TrafficPattern::PeerToPeer),
        Some("centralized") => Ok(TrafficPattern::Centralized),
        Some(other) => Err(format!("unknown pattern '{other}' (p2p|centralized)")),
    }
}

fn periods_of(args: &Args) -> Result<PeriodRange, String> {
    let raw = args.get("periods").unwrap_or("0,2");
    let (x, y) = raw
        .split_once(',')
        .ok_or_else(|| format!("--periods expects 'x,y' exponents, got '{raw}'"))?;
    let x: i32 = x.parse().map_err(|_| format!("bad exponent '{x}'"))?;
    let y: i32 = y.parse().map_err(|_| format!("bad exponent '{y}'"))?;
    PeriodRange::new(x, y).map_err(|e| e.to_string())
}

fn build_workload(
    args: &Args,
    topo: &Topology,
    channels: &ChannelSet,
) -> Result<(FlowSet, NetworkModel), String> {
    let flows: usize = args.get_or("flows", 0)?;
    if flows == 0 {
        return Err("--flows is required (and must be positive)".to_string());
    }
    let comm = topo.comm_graph(channels, Prr::new(0.9).expect("valid"));
    let model = NetworkModel::new(topo, channels);
    let cfg = FlowSetConfig::new(flows, periods_of(args)?, pattern_of(args)?);
    let seed: u64 = args.get_or("seed", 1)?;
    let set = FlowSetGenerator::new(seed)
        .generate(&comm, &cfg)
        .map_err(|e| format!("workload generation failed: {e}"))?;
    Ok((set, model))
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    known(args, &["testbed", "seed", "channels", "dot", "save", "load"])?;
    let topo = load_testbed(args)?;
    if let Some(path) = args.get("save") {
        topo.save(path).map_err(|e| format!("cannot save {path}: {e}"))?;
        println!("topology (PRR tables included) saved to {path}");
    }
    let channels = channels_of(args)?;
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
    let reuse = topo.reuse_graph(&channels);
    println!("topology {} ({} nodes)", topo.name(), topo.node_count());
    println!("channels {:?}", channels.iter().map(|c| c.number()).collect::<Vec<_>>());
    println!(
        "communication graph: {} edges, diameter {}, connected: {}",
        comm.edge_count(),
        comm.diameter(),
        comm.is_connected()
    );
    println!(
        "channel reuse graph: {} edges, diameter {} (λ_R)",
        reuse.edge_count(),
        reuse.diameter()
    );
    let aps = comm.select_access_points(2);
    println!("access points: {} and {}", aps[0], aps[1]);
    if let Some(path) = args.get("dot") {
        let mut dot = String::from("graph g {\n  node [shape=point];\n");
        for a in topo.nodes() {
            let p = topo.position(a);
            dot.push_str(&format!(
                "  {} [pos=\"{:.0},{:.0}\"];\n",
                a.index(),
                p.x * 10.0,
                p.y * 10.0 + p.z * 80.0
            ));
        }
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a < b && comm.has_edge(a, b) {
                    dot.push_str(&format!("  {} -- {};\n", a.index(), b.index()));
                }
            }
        }
        dot.push_str("}\n");
        std::fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("communication graph written to {path}");
    }
    Ok(())
}

const SCHEDULE_OPTS: &[&str] = &[
    "testbed", "seed", "channels", "flows", "algo", "pattern", "periods", "rho", "load",
    "analysis", "show",
];

fn cmd_schedule(args: &Args) -> Result<(), String> {
    known(args, SCHEDULE_OPTS)?;
    let topo = load_testbed(args)?;
    let channels = channels_of(args)?;
    let (set, model) = build_workload(args, &topo, &channels)?;
    let algo = algorithm_of(args, Algorithm::Rc { rho_t: 2 })?;
    println!(
        "workload: {} flows, hyperperiod {} slots, demand {} tx/hyperperiod",
        set.len(),
        set.hyperperiod(),
        set.transmission_demand()
    );
    if args.has("analysis") {
        let report = wsan_core::analysis::analyse(&set, &model, 2);
        let guaranteed = report.bounds.iter().filter(|b| b.is_bounded()).count();
        println!(
            "delay analysis (sufficient test, no reuse): {}/{} flows guaranteed{}",
            guaranteed,
            set.len(),
            if report.schedulable() { " — admitted" } else { "" }
        );
    }
    match algo.build().schedule(&set, &model) {
        Ok(schedule) => {
            let m = metrics::compute(&schedule, &model);
            println!("{algo}: SCHEDULABLE — {} transmissions placed", schedule.entry_count());
            println!("  cells without reuse: {:.1}%", 100.0 * m.no_reuse_fraction());
            for (hops, count) in m.reuse_hop_count.iter() {
                println!("  shared cells at {hops} reuse hops: {count}");
            }
            if let Some(rt) = metrics::mean_response_time(&schedule, &set) {
                println!("  mean job response time: {rt:.1} slots");
            }
            println!("  {}", wsan_core::render::summary_line(&schedule));
            if args.has("show") {
                let to = schedule.horizon().min(60);
                println!("{}", wsan_core::render::render_grid(&schedule, 0, to));
            }
            Ok(())
        }
        Err(e) => {
            println!("{algo}: UNSCHEDULABLE ({e})");
            Ok(())
        }
    }
}

/// Parses the optional `--engine slots|events` selector (see
/// [`wsan_sim::SimEngine`]); absent means the slot-stepper.
fn parse_engine(args: &Args) -> Result<wsan_sim::SimEngine, String> {
    match args.get("engine") {
        None => Ok(wsan_sim::SimEngine::default()),
        Some(s) => s.parse(),
    }
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let mut allowed = SCHEDULE_OPTS.to_vec();
    allowed.extend(["reps", "wifi", "autonomous", "engine"]);
    known(args, &allowed)?;
    let topo = load_testbed(args)?;
    let channels = channels_of(args)?;
    let (set, model) = build_workload(args, &topo, &channels)?;
    let reps: u32 = args.get_or("reps", 100)?;
    let interferers: Vec<WifiInterferer> = if args.has("wifi") {
        wsan_expr::detection::per_floor_interferers(&topo, -3.0, 0.10)
    } else {
        Vec::new()
    };
    let seed: u64 = args.get_or("seed", 1)?;
    let sim_config =
        SimConfig { seed: seed ^ 0xD00D, repetitions: reps, interferers, ..SimConfig::default() };
    if args.has("autonomous") {
        let len: u32 = args.get_or("autonomous", 17)?;
        let frame = wsan_core::orchestra::AutonomousSlotframe::receiver_based(
            topo.node_count(),
            len.max(1),
            channels.len(),
        );
        let sim = wsan_sim::AutonomousSimulator::new(&topo, &channels, &set, &frame);
        let report = sim.run(&sim_config);
        println!("autonomous slotframe (L={len}) over {reps} hyperperiods:");
        println!("  network PDR : {:.4} (deadline-constrained)", report.network_pdr());
        println!("  worst flow  : {:.4}", report.worst_flow_pdr());
        return Ok(());
    }
    let algo = algorithm_of(args, Algorithm::Rc { rho_t: 2 })?;
    let schedule = algo
        .build()
        .schedule(&set, &model)
        .map_err(|e| format!("{algo} cannot schedule this workload: {e}"))?;
    let engine = parse_engine(args)?;
    let sim = Simulator::try_new(&topo, &channels, &set, &schedule).map_err(|e| e.to_string())?;
    let report = sim.try_run_with(engine, &sim_config).map_err(|e| e.to_string())?;
    let pdrs = report.flow_pdrs();
    let boxplot = wsan_stats::BoxPlot::of(&pdrs).map_err(|e| e.to_string())?;
    println!("{algo} over {reps} hyperperiod executions:");
    println!("  network PDR : {:.4}", report.network_pdr());
    println!("  median flow : {:.4}", boxplot.median);
    println!("  q1 / q3     : {:.4} / {:.4}", boxplot.q1, boxplot.q3);
    println!("  worst flow  : {:.4}", report.worst_flow_pdr());
    println!("  reused links: {}", report.links_with_reuse().len());
    Ok(())
}

fn cmd_export(args: &Args) -> Result<(), String> {
    let mut allowed = SCHEDULE_OPTS.to_vec();
    allowed.push("out");
    known(args, &allowed)?;
    let topo = load_testbed(args)?;
    let channels = channels_of(args)?;
    let (set, model) = build_workload(args, &topo, &channels)?;
    let algo = algorithm_of(args, Algorithm::Rc { rho_t: 2 })?;
    let schedule = algo
        .build()
        .schedule(&set, &model)
        .map_err(|e| format!("{algo} cannot schedule this workload: {e}"))?;
    let csv = wsan_core::export::to_csv(&schedule);
    match args.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("slotframe with {} transmissions written to {path}", schedule.entry_count());
        }
        _ => print!("{csv}"),
    }
    Ok(())
}

fn cmd_detect(args: &Args) -> Result<(), String> {
    known(args, &["testbed", "seed", "channels", "flows", "epochs", "algo", "repair", "rho"])?;
    let topo = load_testbed(args)?;
    let channels = channels_of(args)?;
    let algo = algorithm_of(args, Algorithm::Ra { rho: 2 })?;
    let seed: u64 = args.get_or("seed", 1)?;
    let cfg = DetectionConfig {
        flow_count: args.get_or("flows", 110)?,
        epochs: args.get_or("epochs", 3)?,
        seed,
        ..DetectionConfig::default()
    };
    let runs = detection(&topo, &channels, &[algo], &cfg);
    let Some(run) = runs.first() else {
        return Err(format!("{algo} cannot schedule the detection workload"));
    };
    println!("{algo}: {} links involved in channel reuse", run.links_with_reuse);
    for (env, epochs) in [("clean", &run.clean), ("wifi", &run.interfered)] {
        println!("[{env}]");
        for epoch in epochs {
            println!(
                "  epoch {}: {} below PRR_t, {} reuse-degraded, {} external",
                epoch.epoch,
                epoch.below_threshold(cfg.policy.prr_threshold).len(),
                epoch.rejected().len(),
                epoch.accepted().len()
            );
            for record in &epoch.records {
                if record.verdict == LinkVerdict::ReuseDegraded {
                    println!(
                        "    reject {} (PRR_r {:.2})",
                        record.link,
                        record.prr_r.unwrap_or(0.0)
                    );
                }
            }
        }
    }
    if args.has("repair") {
        let rejected = run.ever_rejected(true);
        if rejected.is_empty() {
            println!("repair: nothing to do (no rejected links)");
            return Ok(());
        }
        // rebuild the schedule and repair it
        let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid"));
        let model = NetworkModel::new(&topo, &channels);
        let fsc = FlowSetConfig::new(
            cfg.flow_count,
            PeriodRange::new(0, 0).expect("valid"),
            TrafficPattern::PeerToPeer,
        );
        let set = FlowSetGenerator::new(seed).generate(&comm, &fsc).map_err(|e| e.to_string())?;
        let schedule =
            algo.build().schedule(&set, &model).map_err(|e| format!("reschedule failed: {e}"))?;
        let rho: u32 = args.get_or("rho", 2)?;
        let (_, report) = repair::reassign_degraded(&schedule, &model, &set, rho, &rejected)
            .map_err(|e| format!("repair failed: {e}"))?;
        println!(
            "repair: {} jobs re-placed ({} transmissions moved), {} jobs need a full reschedule",
            report.repaired_jobs.len(),
            report.moved_transmissions,
            report.failed_jobs.len()
        );
    }
    Ok(())
}

fn cmd_faults(args: &Args) -> Result<(), String> {
    known(
        args,
        &[
            "testbed", "seed", "channels", "flows", "pattern", "periods", "algo", "rho", "epochs",
            "collapse", "out", "load",
        ],
    )?;
    let topo = load_testbed(args)?;
    let channels = channels_of(args)?;
    let (set, _) = build_workload(args, &topo, &channels)?;
    let algo = algorithm_of(args, Algorithm::Rc { rho_t: 2 })?;
    let seed: u64 = args.get_or("seed", 1)?;
    let epochs: u32 = args.get_or("epochs", 4)?;
    let intensities: Vec<usize> = args
        .get("collapse")
        .unwrap_or("0,1,2,4")
        .split(',')
        .map(|k| k.trim().parse().map_err(|_| format!("bad collapse count '{k}'")))
        .collect::<Result<_, String>>()?;
    let cfg = SupervisorConfig { seed, epochs, ..SupervisorConfig::default() };
    let result = campaign(&topo, &channels, &set, algo, &cfg, &intensities)
        .map_err(|e| format!("fault campaign failed: {e}"))?;
    println!(
        "{algo} fault campaign: {} flows, fault-free network PDR {:.4}",
        result.flows, result.baseline_pdr
    );
    let headers = ["collapsed", "shed", "surviving", "residual PDR", "converged"];
    let rows: Vec<Vec<String>> = result
        .points
        .iter()
        .map(|p| {
            vec![
                p.collapsed_links.to_string(),
                p.shed_flows.to_string(),
                p.surviving_flows.to_string(),
                format!("{:.4}", p.residual_pdr),
                p.converged.to_string(),
            ]
        })
        .collect();
    print!("{}", wsan_expr::table::render(&headers, &rows));
    let out = args.get("out").unwrap_or("results/fault_campaign.json");
    if let Some(parent) = std::path::Path::new(out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    wsan_expr::table::write_json(out, &result).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("campaign written to {out}");
    Ok(())
}

/// Generates a city-scale plant, partitions it into per-gateway shards,
/// schedules every shard in parallel, stitches, and validates the result
/// against the whole network — the multi-gateway scaling path.
fn cmd_shard(args: &Args) -> Result<(), String> {
    known(
        args,
        &[
            "nodes",
            "shards",
            "algo",
            "rho",
            "flows-per-shard",
            "pattern",
            "periods",
            "seed",
            "jobs",
            "channels",
            "out",
        ],
    )?;
    let nodes: usize = args.get_or("nodes", 0)?;
    if nodes == 0 {
        return Err("--nodes is required (and must be positive)".to_string());
    }
    let shards: usize = args.get_or("shards", 2)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let jobs: usize = args.get_or("jobs", 0)?;
    let algo = algorithm_of(args, Algorithm::Rc { rho_t: 2 })?;
    let reuse_floor = match algo {
        Algorithm::Nr => None,
        Algorithm::Ra { rho } => Some(rho),
        Algorithm::Rc { rho_t } | Algorithm::RcLite { rho_t } | Algorithm::RcPerFlow { rho_t } => {
            Some(rho_t)
        }
    };
    // city plants get the full 2.4 GHz band unless the user narrows it:
    // the spectrum is what gets split between conflicting shards
    let channels = if args.has("channels") { channels_of(args)? } else { ChannelId::all() };
    let shard_cfg = wsan_core::shard::ShardConfig {
        shards,
        seed,
        flows_per_shard: args.get_or("flows-per-shard", 6)?,
        periods: periods_of(args)?,
        pattern: pattern_of(args)?,
        reuse_floor,
        prr_t: Prr::new(0.9).expect("valid"),
    };
    let plant_cfg = wsan_net::plants::PlantConfig::city(format!("city-{nodes}"), nodes);
    let plant = wsan_net::plants::generate(&plant_cfg, seed);
    println!(
        "plant {}: {} nodes, {} links (cutoff {:.1} m)",
        plant.name(),
        plant.node_count(),
        plant.links().len(),
        plant.cutoff_m()
    );
    let outcome = wsan_expr::sharding::schedule_sharded(&plant, &channels, &shard_cfg, &algo, jobs)
        .map_err(|e| format!("sharded scheduling failed: {e}"))?;
    let report = &outcome.report;
    println!(
        "{algo} over {} shard(s), {} spectrum color(s): {} flows, {} entries, horizon {}",
        report.shards, report.colors, report.flows, report.entries, report.horizon
    );
    for shard in outcome.plan.shards() {
        println!(
            "  shard {}: gateway n{}, {} nodes, offsets {}..{}",
            shard.index,
            shard.gateway.index(),
            shard.nodes.len(),
            shard.offset_base,
            shard.offset_base + shard.offsets
        );
    }
    println!(
        "stitched schedule validated against the whole network \
         (schedule {:.1} ms, stitch {:.1} ms, validate {:.1} ms, digest {:016x})",
        report.schedule_ns as f64 / 1e6,
        report.stitch_ns as f64 / 1e6,
        report.validate_ns as f64 / 1e6,
        report.digest
    );
    if let Some(out) = args.get("out") {
        wsan_expr::table::write_json(out, report)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("report written to {out}");
    }
    Ok(())
}

/// Runs a named experiment campaign through the checkpointing engine:
/// every sweep point is appended to a manifest as it completes, so an
/// interrupted run re-invoked with `--resume` only computes what's missing.
fn cmd_campaign(args: &Args) -> Result<(), String> {
    known(args, &["name", "jobs", "resume", "sets", "seed", "quick", "out", "manifest", "engine"])?;
    let names = wsan_expr::campaigns::NAMES.join("|");
    let Some(name) = args.get("name") else {
        return Err(format!("--name is required ({names})"));
    };
    let opts = wsan_expr::campaigns::SweepOptions {
        sets: args.get_or("sets", 0)?, // 0 = the campaign's own default
        seed: args.get_or("seed", 1)?,
        quick: args.has("quick"),
        engine: parse_engine(args)?,
    };
    let manifest = args
        .get("manifest")
        .map(str::to_string)
        .unwrap_or_else(|| format!("results/{name}.manifest.jsonl"));
    let cfg = wsan_expr::campaign::CampaignConfig {
        jobs: args.get_or("jobs", 0)?,
        window: 0,
        manifest: Some(manifest.into()),
        resume: args.has("resume"),
    };
    let outcome = wsan_expr::campaigns::run_named(name, &opts, &cfg).map_err(|e| e.to_string())?;
    let out = args
        .get("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("results/campaign_{name}.json"));
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let mut json = outcome.json;
    if !json.ends_with('\n') {
        json.push('\n');
    }
    std::fs::write(&out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "campaign '{name}': {} points ({} executed, {} resumed) → {out}",
        outcome.summary.total, outcome.summary.executed, outcome.summary.resumed
    );
    Ok(())
}

/// Serialises tests that arm/disarm the process-global flight recorder.
#[cfg(test)]
pub(crate) fn flightrec_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(parts: &[&str]) -> Result<(), String> {
        dispatch(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn missing_subcommand_is_an_error() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn help_works() {
        run(&["help"]).unwrap();
    }

    #[test]
    fn topology_requires_testbed() {
        let err = run(&["topology"]).unwrap_err();
        assert!(err.contains("--testbed"));
    }

    #[test]
    fn topology_runs_on_wustl() {
        run(&["topology", "--testbed", "wustl", "--seed", "2"]).unwrap();
    }

    #[test]
    fn schedule_requires_flows() {
        let err = run(&["schedule", "--testbed", "wustl"]).unwrap_err();
        assert!(err.contains("--flows"));
    }

    #[test]
    fn schedule_small_workload() {
        run(&["schedule", "--testbed", "wustl", "--flows", "8", "--algo", "rc", "--seed", "3"])
            .unwrap();
    }

    #[test]
    fn simulate_small_workload() {
        run(&["simulate", "--testbed", "wustl", "--flows", "8", "--reps", "5", "--seed", "3"])
            .unwrap();
    }

    #[test]
    fn simulate_selects_the_event_engine() {
        run(&[
            "simulate",
            "--testbed",
            "wustl",
            "--flows",
            "8",
            "--reps",
            "5",
            "--seed",
            "3",
            "--engine",
            "events",
        ])
        .unwrap();
        let err = run(&[
            "simulate",
            "--testbed",
            "wustl",
            "--flows",
            "8",
            "--reps",
            "5",
            "--engine",
            "quantum",
        ])
        .unwrap_err();
        assert!(err.contains("quantum"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err =
            run(&["schedule", "--testbed", "wustl", "--flows", "8", "--zap", "1"]).unwrap_err();
        assert!(err.contains("--zap"));
    }

    #[test]
    fn bad_algorithm_is_rejected() {
        let err = run(&["schedule", "--testbed", "wustl", "--flows", "8", "--algo", "magic"])
            .unwrap_err();
        assert!(err.contains("magic"));
    }
}

#[cfg(test)]
mod export_tests {
    use super::*;

    fn run(parts: &[&str]) -> Result<(), String> {
        dispatch(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn export_round_trips_through_the_csv_parser() {
        let dir = std::env::temp_dir().join("wsan-cli-export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.csv");
        run(&[
            "export",
            "--testbed",
            "wustl",
            "--flows",
            "6",
            "--seed",
            "4",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        let schedule = wsan_core::export::from_csv(&csv).unwrap();
        assert!(schedule.entry_count() > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn autonomous_simulation_runs() {
        run(&[
            "simulate",
            "--testbed",
            "wustl",
            "--flows",
            "6",
            "--reps",
            "3",
            "--autonomous",
            "7",
        ])
        .unwrap();
    }

    #[test]
    fn run_alias_with_metrics_out_writes_a_snapshot() {
        let dir = std::env::temp_dir().join("wsan-cli-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        run(&[
            "run",
            "--testbed",
            "wustl",
            "--flows",
            "6",
            "--reps",
            "3",
            "--seed",
            "3",
            "--metrics-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let snapshot: wsan_obs::MetricsSnapshot = serde_json::from_str(&json).unwrap();
        // scheduler decisions and per-slot simulation counters must be present
        assert!(snapshot.counters.contains_key("core.schedule.runs"));
        assert!(snapshot.counters.contains_key("sim.tx"));
        assert!(snapshot.counters["sim.tx"] > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_log_level_is_rejected() {
        let err = run(&["schedule", "--testbed", "wustl", "--flows", "8", "--log-level", "blah"])
            .unwrap_err();
        assert!(err.contains("blah"));
    }

    #[test]
    fn bad_log_format_is_rejected() {
        let err = run(&["schedule", "--testbed", "wustl", "--flows", "8", "--log-format", "xml"])
            .unwrap_err();
        assert!(err.contains("xml"));
    }

    #[test]
    fn campaign_smoke_runs_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join("wsan-cli-campaign");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("smoke.json");
        let manifest = dir.join("smoke.manifest.jsonl");
        let argv = |resume: bool| {
            let mut v = vec![
                "campaign".to_string(),
                "--name".to_string(),
                "smoke".to_string(),
                "--sets".to_string(),
                "2".to_string(),
                "--seed".to_string(),
                "9".to_string(),
                "--out".to_string(),
                out.to_str().unwrap().to_string(),
                "--manifest".to_string(),
                manifest.to_str().unwrap().to_string(),
            ];
            if resume {
                v.push("--resume".to_string());
            }
            v
        };
        dispatch(&argv(false)).unwrap();
        let first = std::fs::read_to_string(&out).unwrap();
        assert!(manifest.exists(), "manifest must be checkpointed");
        // resuming the finished campaign replays every point from the
        // manifest and reproduces the identical aggregate
        dispatch(&argv(true)).unwrap();
        assert_eq!(std::fs::read_to_string(&out).unwrap(), first);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn campaign_requires_a_known_name() {
        assert!(run(&["campaign"]).unwrap_err().contains("--name"));
        let err = run(&["campaign", "--name", "nope"]).unwrap_err();
        assert!(err.contains("nope"), "got: {err}");
    }

    #[test]
    fn flightrec_dump_exports_to_chrome_trace() {
        let _guard = super::flightrec_test_lock();
        let dir = std::env::temp_dir().join("wsan-cli-flightrec");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("dump.jsonl");
        let chrome = dir.join("trace.json");
        run(&[
            "run",
            "--testbed",
            "wustl",
            "--flows",
            "6",
            "--reps",
            "3",
            "--seed",
            "3",
            "--engine",
            "events",
            "--flightrec",
            "256",
            "--flightrec-dump",
            dump.to_str().unwrap(),
        ])
        .unwrap();
        wsan_obs::flightrec::disarm();
        let raw = std::fs::read_to_string(&dump).unwrap();
        assert!(!raw.trim().is_empty(), "armed run must leave records behind");
        for line in raw.lines() {
            let _record: wsan_obs::FlightRecord = serde_json::from_str(line).unwrap();
        }
        run(&[
            "trace",
            "export",
            "--in",
            dump.to_str().unwrap(),
            "--out",
            chrome.to_str().unwrap(),
            "--chrome",
        ])
        .unwrap();
        let json = std::fs::read_to_string(&chrome).unwrap();
        let doc: serde::value::Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_seq().unwrap();
        assert!(!events.is_empty(), "chrome trace must contain events");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn panic_hook_flushes_the_flight_recorder() {
        let _guard = super::flightrec_test_lock();
        let dir = std::env::temp_dir().join("wsan-cli-panic");
        std::fs::create_dir_all(&dir).unwrap();
        let dump = dir.join("panic-dump.jsonl");
        let _ = std::fs::remove_file(&dump);
        let argv: Vec<String> = ["--flightrec", "64", "--flightrec-dump", dump.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv).unwrap();
        init_observability(&args).unwrap();
        wsan_obs::event(wsan_obs::Level::Info, "cli-test", "pre-panic breadcrumb", &[]);
        let caught = std::panic::catch_unwind(|| panic!("synthetic crash"));
        assert!(caught.is_err());
        wsan_obs::flightrec::disarm();
        let raw = std::fs::read_to_string(&dump).expect("panic hook must write the dump");
        assert!(raw.contains("pre-panic breadcrumb"), "{raw}");
        for line in raw.lines() {
            let _record: wsan_obs::FlightRecord = serde_json::from_str(line).unwrap();
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn trace_requires_the_export_verb_and_an_input() {
        let err = run(&["trace"]).unwrap_err();
        assert!(err.contains("trace export"), "{err}");
        let err = run(&["trace", "export"]).unwrap_err();
        assert!(err.contains("--in"), "{err}");
    }

    #[test]
    fn metrics_interval_requires_metrics_out() {
        let err =
            run(&["schedule", "--testbed", "wustl", "--flows", "8", "--metrics-interval-ms", "50"])
                .unwrap_err();
        assert!(err.contains("--metrics-out"), "{err}");
    }

    #[test]
    fn fault_campaign_writes_json() {
        let dir = std::env::temp_dir().join("wsan-cli-faults");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.json");
        run(&[
            "faults",
            "--testbed",
            "wustl",
            "--flows",
            "6",
            "--seed",
            "5",
            "--epochs",
            "2",
            "--collapse",
            "0,1",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let result: wsan_expr::recovery::CampaignResult = serde_json::from_str(&json).unwrap();
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[0].collapsed_links, 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn shard_requires_nodes() {
        let err = run(&["shard"]).unwrap_err();
        assert!(err.contains("--nodes"), "{err}");
    }

    #[test]
    fn shard_schedules_a_city_plant_and_writes_a_report() {
        let dir = std::env::temp_dir().join("wsan-cli-shard");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard.json");
        run(&[
            "shard",
            "--nodes",
            "120",
            "--shards",
            "2",
            "--flows-per-shard",
            "3",
            "--seed",
            "3",
            "--jobs",
            "2",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let report: wsan_expr::sharding::ShardedReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.flows, 6);
        assert!(report.entries > 0);
        let _ = std::fs::remove_dir_all(dir);
    }
}
