//! Minimal flag parsing for the `wsan` binary (kept dependency-free).

use std::collections::BTreeMap;

/// Parsed command line: positional subcommand plus `--key value` options
/// (`--flag` without a value stores an empty string).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses everything after the subcommand.
    ///
    /// # Errors
    ///
    /// Returns a message for options not starting with `--`.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut options = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(key) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}' (options start with --)"));
            };
            let value = match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    v.clone()
                }
                _ => String::new(),
            };
            options.insert(key.to_string(), value);
            i += 1;
        }
        Ok(Args { options })
    }

    /// Whether `--key` was present at all.
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Parses `--key` as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                format!("--{key} expects a {}, got '{raw}'", std::any::type_name::<T>())
            }),
        }
    }

    /// Parses `--channels a-b` into an inclusive range, default `11-14`.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed ranges.
    pub fn channel_range(&self) -> Result<(u8, u8), String> {
        let raw = self.get("channels").unwrap_or("11-14");
        let (a, b) =
            raw.split_once('-').ok_or_else(|| format!("--channels expects 'a-b', got '{raw}'"))?;
        let first: u8 = a.parse().map_err(|_| format!("bad channel '{a}'"))?;
        let last: u8 = b.parse().map_err(|_| format!("bad channel '{b}'"))?;
        Ok((first, last))
    }

    /// Unknown-option check: every provided option must be in `allowed`.
    ///
    /// # Errors
    ///
    /// Names the first unknown option.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!("unknown option --{key}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = parse(&["--flows", "40", "--wifi", "--seed", "7"]);
        assert_eq!(a.get("flows"), Some("40"));
        assert!(a.has("wifi"));
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_or("missing", 3usize).unwrap(), 3);
    }

    #[test]
    fn rejects_positional_arguments() {
        let err = Args::parse(&["stray".to_string()]).unwrap_err();
        assert!(err.contains("stray"));
    }

    #[test]
    fn channel_ranges() {
        assert_eq!(parse(&[]).channel_range().unwrap(), (11, 14));
        assert_eq!(parse(&["--channels", "12-16"]).channel_range().unwrap(), (12, 16));
        assert!(parse(&["--channels", "x"]).channel_range().is_err());
    }

    #[test]
    fn unknown_option_detection() {
        let a = parse(&["--flows", "40", "--bogus", "1"]);
        assert!(a.ensure_known(&["flows"]).is_err());
        assert!(a.ensure_known(&["flows", "bogus"]).is_ok());
    }

    #[test]
    fn bad_value_is_reported() {
        let a = parse(&["--flows", "many"]);
        let err = a.get_or("flows", 0usize).unwrap_err();
        assert!(err.contains("many"));
    }
}
