//! `wsan` — command-line front end for the conservative channel reuse stack.
//!
//! ```text
//! wsan topology  --testbed wustl [--seed 1] [--channels 11-14] [--dot out.dot]
//! wsan schedule  --testbed wustl --flows 40 [--algo rc] [--pattern p2p] ...
//! wsan simulate  --testbed wustl --flows 40 [--algo rc] [--reps 100] [--wifi]
//! wsan detect    --testbed wustl --flows 110 [--epochs 6] [--repair]
//! ```
//!
//! Every command is deterministic in its `--seed`, and accepts
//! `--log-level`, `--log-format pretty|json` and `--metrics-out FILE` for
//! structured logging and a JSON metrics snapshot (`run` is an alias for
//! `simulate`).

mod args;
mod commands;
mod serve;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
