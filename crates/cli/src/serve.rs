//! `wsan serve` — the long-lived online gateway process.
//!
//! Reads JSONL requests (`add_flow`, `remove_flow`, `update_rate`,
//! `retire_link`, `status`, `export`, `shutdown`) from stdin — or from a
//! Unix socket with `--listen` — and answers one JSON response per line.
//! Every acknowledged mutation is `fsync`ed to the write-ahead journal
//! (`--journal`), so a crashed gateway restarted with `--resume-journal`
//! replays to exactly the schedule it acknowledged. See
//! `wsan_core::gateway` for the delta-scheduling and shedding semantics.

use crate::args::Args;
use crate::commands::{channels_of, known, load_testbed};
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;
use wsan_core::gateway::journal::JournalHeader;
use wsan_core::gateway::service::GatewayService;
use wsan_core::gateway::{GatewayConfig, GatewayState};
use wsan_core::{NetworkModel, NoReuse, ReuseAggressively, ReuseConservatively, Scheduler};
use wsan_net::Prr;

pub(crate) fn cmd_serve(args: &Args) -> Result<(), String> {
    known(
        args,
        &[
            "testbed",
            "load",
            "seed",
            "channels",
            "prr",
            "algo",
            "rho",
            "journal",
            "resume-journal",
            "paranoid",
            "deadline-us",
            "listen",
        ],
    )?;
    let mut service = build_service(args)?;

    if args.has("journal") && args.has("resume-journal") {
        return Err("--journal and --resume-journal are mutually exclusive".to_string());
    }
    if let Some(path) = args.get("journal") {
        service.journal_create(path).map_err(|e| format!("cannot create journal: {e}"))?;
        eprintln!("journaling to {path}");
    } else if let Some(path) = args.get("resume-journal") {
        let replayed = service
            .journal_resume(path)
            .map_err(|e| format!("cannot resume journal {path}: {e}"))?;
        eprintln!(
            "resumed {path}: replayed {replayed} operation(s), {} flow(s) admitted",
            service.state().len()
        );
    }

    match args.get("listen") {
        Some(socket) => serve_socket(&mut service, socket),
        None => serve_stdin(&mut service),
    }
}

/// Builds the gateway service from the topology/algorithm flags. The same
/// flags must be passed again on restart: the journal header records the
/// configuration identity and a mismatch refuses to resume.
fn build_service(args: &Args) -> Result<GatewayService, String> {
    let topo = load_testbed(args)?;
    let channels = channels_of(args)?;
    let prr_raw: f64 = args.get_or("prr", 0.9)?;
    let prr = Prr::new(prr_raw).map_err(|e| e.to_string())?;
    let comm = topo.comm_graph(&channels, prr);
    let model = NetworkModel::new(&topo, &channels);

    let rho: u32 = args.get_or("rho", 2)?;
    let (scheduler, rho_t, algo): (Box<dyn Scheduler + Send + Sync>, Option<u32>, String) =
        match args.get("algo").unwrap_or("rc") {
            "nr" => (Box::new(NoReuse::new()), None, "nr".to_string()),
            "ra" => (Box::new(ReuseAggressively::new(rho)), Some(rho), format!("ra/{rho}")),
            "rc" => (Box::new(ReuseConservatively::new(rho)), Some(rho), format!("rc/{rho}")),
            other => return Err(format!("unknown algorithm '{other}' (nr|ra|rc)")),
        };

    let config =
        GatewayConfig { rho_t, paranoid: args.has("paranoid"), ..GatewayConfig::default() };
    let state = GatewayState::new(model, scheduler, config);

    let (lo, hi) = args.channel_range()?;
    let seed: u64 = args.get_or("seed", 1)?;
    let network = format!("{}/seed={seed}/ch={lo}-{hi}/prr={prr_raw}", topo.name());
    let header = JournalHeader::new(&network, &algo);

    let budget = match args.get("deadline-us") {
        Some(raw) => {
            let us: u64 = raw.parse().map_err(|_| format!("bad --deadline-us '{raw}'"))?;
            Some(Duration::from_micros(us))
        }
        None => None,
    };

    eprintln!(
        "gateway serving {algo} on {} ({} nodes, {} channels)",
        topo.name(),
        topo.node_count(),
        channels.len()
    );
    Ok(GatewayService::new(state, comm, header).with_budget(budget))
}

/// One request per stdin line, one response per stdout line, flushed
/// immediately so a client driving us through a pipe sees each ack as soon
/// as it is durable.
fn serve_stdin(service: &mut GatewayService) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        writeln!(out, "{response}").map_err(|e| format!("stdout write failed: {e}"))?;
        out.flush().map_err(|e| format!("stdout flush failed: {e}"))?;
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// Serves connections on a Unix socket, one client at a time, until a
/// client sends `shutdown`. A dropped connection keeps the gateway (and
/// its schedule) alive for the next client.
fn serve_socket(service: &mut GatewayService, socket: &str) -> Result<(), String> {
    let _ = std::fs::remove_file(socket);
    let listener = std::os::unix::net::UnixListener::bind(socket)
        .map_err(|e| format!("cannot bind {socket}: {e}"))?;
    eprintln!("listening on {socket}");
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| format!("socket clone failed: {e}"))?;
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let response = service.handle_line(&line);
            if writeln!(writer, "{response}").is_err() {
                break;
            }
            if service.shutdown_requested() {
                let _ = std::fs::remove_file(socket);
                return Ok(());
            }
        }
    }
    Ok(())
}
