//! `wsan serve` — the long-lived online gateway process.
//!
//! Reads JSONL requests (`add_flow`, `remove_flow`, `update_rate`,
//! `retire_link`, `status`, `export`, `shutdown`) from stdin — or from a
//! Unix socket with `--listen` — and answers one JSON response per line.
//! Every acknowledged mutation is `fsync`ed to the write-ahead journal
//! (`--journal`), so a crashed gateway restarted with `--resume-journal`
//! replays to exactly the schedule it acknowledged. See
//! `wsan_core::gateway` for the delta-scheduling and shedding semantics.
//!
//! ## Status plane
//!
//! `--status-socket PATH` opens a second Unix socket served from a
//! background thread. The request loop publishes its counters into a
//! shared block of atomics after every request, and the status thread
//! answers `status` / `metrics` / `flightrec` query lines (one JSON
//! object per line) purely from those atomics, the global metrics
//! registry, and the armed flight recorder — it never locks or touches
//! the gateway state, so a status read cannot pause or reorder the
//! request loop.

use crate::args::Args;
use crate::commands::{channels_of, known, load_testbed};
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsan_core::gateway::journal::JournalHeader;
use wsan_core::gateway::service::GatewayService;
use wsan_core::gateway::{GatewayConfig, GatewayState};
use wsan_core::{NetworkModel, NoReuse, ReuseAggressively, ReuseConservatively, Scheduler};
use wsan_net::Prr;

pub(crate) fn cmd_serve(args: &Args) -> Result<(), String> {
    known(
        args,
        &[
            "testbed",
            "load",
            "seed",
            "channels",
            "prr",
            "algo",
            "rho",
            "journal",
            "resume-journal",
            "paranoid",
            "deadline-us",
            "listen",
            "status-socket",
        ],
    )?;
    let mut service = build_service(args)?;

    if args.has("journal") && args.has("resume-journal") {
        return Err("--journal and --resume-journal are mutually exclusive".to_string());
    }
    if let Some(path) = args.get("journal") {
        service.journal_create(path).map_err(|e| format!("cannot create journal: {e}"))?;
        eprintln!("journaling to {path}");
    } else if let Some(path) = args.get("resume-journal") {
        let replayed = service
            .journal_resume(path)
            .map_err(|e| format!("cannot resume journal {path}: {e}"))?;
        eprintln!(
            "resumed {path}: replayed {replayed} operation(s), {} flow(s) admitted",
            service.state().len()
        );
    }

    let shared = Arc::new(StatusShared::new());
    if let Some(path) = args.get("status-socket") {
        if path.is_empty() {
            return Err("--status-socket expects a socket path".to_string());
        }
        spawn_status_plane(path, Arc::clone(&shared))?;
    }

    let result = match args.get("listen") {
        Some(socket) => serve_socket(&mut service, socket, &shared),
        None => serve_stdin(&mut service, &shared),
    };
    if let Some(path) = args.get("status-socket") {
        let _ = std::fs::remove_file(path);
    }
    result
}

/// `wsan status` — one-shot client for the status plane: connects to a
/// `--status-socket`, sends one query line, prints the one-line JSON
/// answer. Keeps CI and operators free of `nc`/`socat` dependencies.
pub(crate) fn cmd_status(args: &Args) -> Result<(), String> {
    known(args, &["socket", "query"])?;
    let Some(path) = args.get("socket") else {
        return Err("--socket PATH is required".to_string());
    };
    let query = args.get("query").unwrap_or("status");
    let mut stream = std::os::unix::net::UnixStream::connect(path)
        .map_err(|e| format!("cannot connect to {path}: {e}"))?;
    writeln!(stream, "{query}").map_err(|e| format!("cannot send query: {e}"))?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).map_err(|e| format!("cannot read answer: {e}"))?;
    if line.is_empty() {
        return Err("status plane closed the connection without answering".to_string());
    }
    print!("{line}");
    Ok(())
}

/// Builds the gateway service from the topology/algorithm flags. The same
/// flags must be passed again on restart: the journal header records the
/// configuration identity and a mismatch refuses to resume.
fn build_service(args: &Args) -> Result<GatewayService, String> {
    let topo = load_testbed(args)?;
    let channels = channels_of(args)?;
    let prr_raw: f64 = args.get_or("prr", 0.9)?;
    let prr = Prr::new(prr_raw).map_err(|e| e.to_string())?;
    let comm = topo.comm_graph(&channels, prr);
    let model = NetworkModel::new(&topo, &channels);

    let rho: u32 = args.get_or("rho", 2)?;
    let (scheduler, rho_t, algo): (Box<dyn Scheduler + Send + Sync>, Option<u32>, String) =
        match args.get("algo").unwrap_or("rc") {
            "nr" => (Box::new(NoReuse::new()), None, "nr".to_string()),
            "ra" => (Box::new(ReuseAggressively::new(rho)), Some(rho), format!("ra/{rho}")),
            "rc" => (Box::new(ReuseConservatively::new(rho)), Some(rho), format!("rc/{rho}")),
            other => return Err(format!("unknown algorithm '{other}' (nr|ra|rc)")),
        };

    let config =
        GatewayConfig { rho_t, paranoid: args.has("paranoid"), ..GatewayConfig::default() };
    let state = GatewayState::new(model, scheduler, config);

    let (lo, hi) = args.channel_range()?;
    let seed: u64 = args.get_or("seed", 1)?;
    let network = format!("{}/seed={seed}/ch={lo}-{hi}/prr={prr_raw}", topo.name());
    let header = JournalHeader::new(&network, &algo);

    let budget = match args.get("deadline-us") {
        Some(raw) => {
            let us: u64 = raw.parse().map_err(|_| format!("bad --deadline-us '{raw}'"))?;
            Some(Duration::from_micros(us))
        }
        None => None,
    };

    eprintln!(
        "gateway serving {algo} on {} ({} nodes, {} channels)",
        topo.name(),
        topo.node_count(),
        channels.len()
    );
    Ok(GatewayService::new(state, comm, header)
        .with_budget(budget)
        .with_flightrec_dump(args.get("flightrec-dump").map(std::path::PathBuf::from)))
}

/// Live gateway counters shared between the request loop (sole writer,
/// after every request) and the status plane (reader). Plain relaxed
/// atomics: a status read sees some recent consistent-enough snapshot and
/// never blocks the writer.
struct StatusShared {
    started: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    flows: AtomicU64,
    entries: AtomicU64,
    horizon: AtomicU64,
    retired: AtomicU64,
    overloaded: AtomicBool,
}

impl StatusShared {
    fn new() -> StatusShared {
        StatusShared {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            flows: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            horizon: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            overloaded: AtomicBool::new(false),
        }
    }

    /// Publishes the post-request state of the gateway. Called by the
    /// request loop after every `handle_line`.
    fn publish(&self, service: &GatewayService, ok: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let state = service.state();
        self.flows.store(state.len() as u64, Ordering::Relaxed);
        self.entries.store(state.schedule().entry_count() as u64, Ordering::Relaxed);
        self.horizon.store(u64::from(state.schedule().horizon()), Ordering::Relaxed);
        self.retired.store(state.retired().len() as u64, Ordering::Relaxed);
        self.overloaded.store(service.overloaded(), Ordering::Relaxed);
    }
}

/// Binds the status socket and spawns the answering thread. The thread
/// serves one client at a time and dies with the process.
fn spawn_status_plane(path: &str, shared: Arc<StatusShared>) -> Result<(), String> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| format!("cannot bind status socket {path}: {e}"))?;
    eprintln!("status plane listening on {path}");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let Ok(mut writer) = stream.try_clone() else { continue };
            for line in BufReader::new(stream).lines() {
                let Ok(line) = line else { break };
                let query = line.trim();
                if query.is_empty() {
                    continue;
                }
                let response = answer_status_query(query, &shared);
                if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
                    break;
                }
            }
        }
    });
    Ok(())
}

/// Answers one status-plane query line with one JSON object.
/// Queries: `status` (live request-loop counters), `metrics` (global
/// registry snapshot, quantiles included), `flightrec` (decoded ring
/// contents of the armed flight recorder).
fn answer_status_query(query: &str, shared: &StatusShared) -> String {
    use serde::value::Value;
    use serde::Serialize;
    let render = |fields: Vec<(&str, Value)>| {
        let doc = Value::Map(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect());
        serde_json::to_string(&doc).unwrap_or_else(|_| r#"{"ok":false}"#.to_string())
    };
    match query {
        "status" => {
            let recorded = wsan_obs::flightrec::armed().map_or(0, |rec| rec.recorded());
            render(vec![
                ("ok", Value::Bool(true)),
                ("query", Value::Str("status".to_string())),
                (
                    "uptime_ms",
                    Value::UInt(
                        u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX),
                    ),
                ),
                ("requests", Value::UInt(shared.requests.load(Ordering::Relaxed))),
                ("errors", Value::UInt(shared.errors.load(Ordering::Relaxed))),
                ("flows", Value::UInt(shared.flows.load(Ordering::Relaxed))),
                ("entries", Value::UInt(shared.entries.load(Ordering::Relaxed))),
                ("horizon", Value::UInt(shared.horizon.load(Ordering::Relaxed))),
                ("retired", Value::UInt(shared.retired.load(Ordering::Relaxed))),
                ("overloaded", Value::Bool(shared.overloaded.load(Ordering::Relaxed))),
                ("flightrec_recorded", Value::UInt(recorded)),
            ])
        }
        "metrics" => render(vec![
            ("ok", Value::Bool(true)),
            ("query", Value::Str("metrics".to_string())),
            ("metrics", wsan_obs::global_metrics().snapshot().to_value()),
        ]),
        "flightrec" => match wsan_obs::flightrec::armed() {
            Some(rec) => {
                let records = rec.dump();
                render(vec![
                    ("ok", Value::Bool(true)),
                    ("query", Value::Str("flightrec".to_string())),
                    ("recorded", Value::UInt(rec.recorded())),
                    ("capacity", Value::UInt(rec.capacity() as u64)),
                    ("records", records.to_value()),
                ])
            }
            None => render(vec![
                ("ok", Value::Bool(false)),
                ("query", Value::Str("flightrec".to_string())),
                (
                    "error",
                    Value::Str("flight recorder is not armed (run with --flightrec N)".to_string()),
                ),
            ]),
        },
        other => render(vec![
            ("ok", Value::Bool(false)),
            ("error", Value::Str(format!("unknown query '{other}' (status|metrics|flightrec)"))),
        ]),
    }
}

/// Whether a gateway response line reports success. Responses always lead
/// with the `ok` field (see `wsan_core::gateway::service`).
fn response_ok(response: &str) -> bool {
    response.starts_with("{\"ok\":true") || response.starts_with("{\"ok\": true")
}

/// One request per stdin line, one response per stdout line, flushed
/// immediately so a client driving us through a pipe sees each ack as soon
/// as it is durable.
fn serve_stdin(service: &mut GatewayService, shared: &StatusShared) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin read failed: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        shared.publish(service, response_ok(&response));
        writeln!(out, "{response}").map_err(|e| format!("stdout write failed: {e}"))?;
        out.flush().map_err(|e| format!("stdout flush failed: {e}"))?;
        if service.shutdown_requested() {
            break;
        }
    }
    Ok(())
}

/// Serves connections on a Unix socket, one client at a time, until a
/// client sends `shutdown`. A dropped connection keeps the gateway (and
/// its schedule) alive for the next client.
fn serve_socket(
    service: &mut GatewayService,
    socket: &str,
    shared: &StatusShared,
) -> Result<(), String> {
    let _ = std::fs::remove_file(socket);
    let listener = std::os::unix::net::UnixListener::bind(socket)
        .map_err(|e| format!("cannot bind {socket}: {e}"))?;
    eprintln!("listening on {socket}");
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
        let mut writer = stream.try_clone().map_err(|e| format!("socket clone failed: {e}"))?;
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let response = service.handle_line(&line);
            shared.publish(service, response_ok(&response));
            if writeln!(writer, "{response}").is_err() {
                break;
            }
            if service.shutdown_requested() {
                let _ = std::fs::remove_file(socket);
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_queries_render_one_json_object() {
        let shared = StatusShared::new();
        shared.requests.store(5, Ordering::Relaxed);
        shared.errors.store(1, Ordering::Relaxed);
        shared.flows.store(3, Ordering::Relaxed);
        let status = answer_status_query("status", &shared);
        assert!(status.starts_with("{\"ok\":true"), "{status}");
        assert!(status.contains("\"requests\":5"), "{status}");
        assert!(status.contains("\"errors\":1"), "{status}");
        assert!(status.contains("\"flows\":3"), "{status}");
        assert!(!status.contains('\n'));

        let metrics = answer_status_query("metrics", &shared);
        assert!(metrics.contains("\"metrics\""), "{metrics}");

        let unknown = answer_status_query("frobnicate", &shared);
        assert!(unknown.starts_with("{\"ok\":false"), "{unknown}");
        assert!(unknown.contains("frobnicate"), "{unknown}");
    }

    #[test]
    fn flightrec_query_reports_disarmed_and_armed_rings() {
        let _guard = crate::commands::flightrec_test_lock();
        let shared = StatusShared::new();
        // Whether another test armed the global recorder or not, the query
        // must answer with a single well-formed JSON line.
        let answer = answer_status_query("flightrec", &shared);
        assert!(answer.starts_with("{\"ok\":"), "{answer}");

        let _rec = wsan_obs::flightrec::arm(64, wsan_obs::Level::Trace);
        let armed = answer_status_query("flightrec", &shared);
        assert!(armed.starts_with("{\"ok\":true"), "{armed}");
        assert!(armed.contains("\"capacity\":64"), "{armed}");
        wsan_obs::flightrec::disarm();
    }

    #[test]
    fn response_ok_reads_the_leading_field() {
        assert!(response_ok(r#"{"ok":true,"op":"status"}"#));
        assert!(!response_ok(r#"{"ok":false,"error":{"kind":"malformed"}}"#));
    }
}
