//! Experiment harness reproducing the paper's evaluation (§VII).
//!
//! Each module maps to one group of figures:
//!
//! | Module | Figures | Question |
//! |---|---|---|
//! | [`schedulable`] | 1, 2, 3 | schedulable ratio vs. #channels / #flows |
//! | [`efficiency`] | 4, 5 | Tx/channel and reuse hop-count distributions |
//! | [`exectime`] | 6 | scheduler execution time vs. #flows |
//! | [`reliability`] | 8, 9 | PDR box plots and Tx/channel on the testbed sim |
//! | [`detection`] | 10, 11 | classifying reuse-degraded vs. external links |
//!
//! The harness is deterministic: every experiment takes explicit seeds, and
//! the figure binaries in `wsan-bench` print the same series the paper
//! plots (plus JSON dumps under `results/`).
//!
//! Sweeps run on the [`campaign`] engine — deterministic parallel
//! execution with per-point checkpoints and resume — and the [`campaigns`]
//! catalog names each figure's sweep for the `wsan campaign` subcommand
//! and the figure binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
pub mod campaign;
pub mod campaigns;
pub mod churn;
pub mod detection;
pub mod efficiency;
pub mod exectime;
pub mod parallel;
pub mod recovery;
pub mod reliability;
pub mod schedulable;
pub mod sharding;
pub mod table;

pub use algo::Algorithm;
