//! Algorithm-efficiency experiments (Figs. 4, 5): how much channel reuse
//! each algorithm introduces, and at what hop distances.

use crate::parallel::parallel_map;
use crate::schedulable::{set_seed, WorkloadConfig};
use crate::Algorithm;
use wsan_core::metrics::{compute, ScheduleMetrics};
use wsan_core::NetworkModel;
use wsan_flow::{FlowSetConfig, FlowSetGenerator};
use wsan_net::{ChannelId, Prr, Topology};

/// Aggregated efficiency metrics of one algorithm at one channel count.
#[derive(Debug, Clone)]
pub struct EfficiencyResult {
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// Channel count used.
    pub channels: usize,
    /// Metrics merged over every schedulable flow set.
    pub metrics: ScheduleMetrics,
    /// Number of flow sets that were schedulable (and therefore counted).
    pub schedulable_sets: usize,
}

/// Evaluates Tx/channel and reuse hop-count distributions for each
/// algorithm over `cfg.flow_sets` generated workloads at `m` channels.
///
/// The same flow sets feed every algorithm; only schedulable sets
/// contribute metrics (an unschedulable run has no schedule to measure).
pub fn evaluate(
    topology: &Topology,
    m: usize,
    algorithms: &[Algorithm],
    cfg: &WorkloadConfig,
) -> Vec<EfficiencyResult> {
    let channels = ChannelId::all().take(m);
    let comm = topology.comm_graph(&channels, Prr::new(cfg.prr_threshold).expect("valid PRR"));
    let model = NetworkModel::new(topology, &channels);
    let fsc = FlowSetConfig::new(cfg.flow_count, cfg.periods, cfg.pattern);
    let per_set: Vec<Vec<Option<ScheduleMetrics>>> = parallel_map(cfg.flow_sets, |i| {
        let mut generator = FlowSetGenerator::new(set_seed(cfg.seed, i));
        match generator.generate(&comm, &fsc) {
            Ok(set) => algorithms
                .iter()
                .map(|a| a.build().schedule(&set, &model).ok().map(|s| compute(&s, &model)))
                .collect(),
            Err(_) => vec![None; algorithms.len()],
        }
    });
    algorithms
        .iter()
        .enumerate()
        .map(|(ai, &algorithm)| {
            let mut metrics = ScheduleMetrics::default();
            let mut schedulable_sets = 0;
            for row in &per_set {
                if let Some(m) = &row[ai] {
                    metrics.merge(m);
                    schedulable_sets += 1;
                }
            }
            EfficiencyResult { algorithm, channels: m, metrics, schedulable_sets }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_flow::{PeriodRange, TrafficPattern};
    use wsan_net::testbeds;

    #[test]
    fn rc_has_higher_no_reuse_fraction_than_ra() {
        let topo = testbeds::wustl(4);
        let cfg = WorkloadConfig {
            flow_sets: 6,
            flow_count: 25,
            periods: PeriodRange::new(-1, 1).unwrap(),
            pattern: TrafficPattern::PeerToPeer,
            seed: 11,
            prr_threshold: 0.9,
        };
        let results =
            evaluate(&topo, 3, &[Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }], &cfg);
        let ra = &results[0];
        let rc = &results[1];
        assert!(ra.schedulable_sets > 0, "need schedulable sets for the comparison");
        assert!(rc.schedulable_sets > 0);
        assert!(
            rc.metrics.no_reuse_fraction() >= ra.metrics.no_reuse_fraction(),
            "RC must not reuse more than RA: RC {} vs RA {}",
            rc.metrics.no_reuse_fraction(),
            ra.metrics.no_reuse_fraction()
        );
    }

    #[test]
    fn reuse_hop_counts_respect_the_floor() {
        let topo = testbeds::wustl(4);
        let cfg = WorkloadConfig {
            flow_sets: 4,
            flow_count: 25,
            periods: PeriodRange::new(-1, 1).unwrap(),
            pattern: TrafficPattern::PeerToPeer,
            seed: 3,
            prr_threshold: 0.9,
        };
        for result in evaluate(&topo, 3, &Algorithm::paper_suite(), &cfg) {
            for (hops, _) in result.metrics.reuse_hop_count.iter() {
                assert!(hops >= 2, "{} produced reuse at {hops} hops", result.algorithm);
            }
        }
    }
}
