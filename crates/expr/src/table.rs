//! Plain-text table rendering and JSON result dumps for the figure
//! binaries.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Renders an aligned plain-text table.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match header width");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = w);
        }
        out.push('\n');
    };
    write_row(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Serializes `value` as a pretty JSON string (the same rendering
/// [`write_json`] puts on disk).
///
/// # Errors
///
/// Returns the serialization error, if any.
pub fn to_json_pretty<T: Serialize>(value: &T) -> std::io::Result<String> {
    serde_json::to_string_pretty(value).map_err(std::io::Error::other)
}

/// Serializes `value` as pretty JSON into `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_json_pretty(value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let table = render(
            &["m", "NR", "RC"],
            &[
                vec!["3".into(), "10.0%".into(), "95.0%".into()],
                vec!["4".into(), "100.0%".into(), "100.0%".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("NR"));
        assert!(lines[2].ends_with("95.0%"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let _ = render(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.125), "12.5%");
        assert_eq!(f3(1.0 / 3.0), "0.333");
    }

    #[test]
    fn write_json_round_trips() {
        let dir = std::env::temp_dir().join("wsan-table-test");
        let path = dir.join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
