//! Deterministic, resumable, work-stealing campaign engine.
//!
//! A *campaign* is an ordered list of independent sweep points. The engine
//! runs them across a worker pool and streams each result — in the original
//! point order — through a caller-supplied aggregator, so the aggregate
//! output of a parallel run is byte-identical to a sequential one:
//!
//! * **Sharding**: workers claim points work-stealing style (an atomic
//!   cursor), so uneven point costs balance automatically. Each point's
//!   seeding is the caller's job — derive it from the point itself, never
//!   from the worker that happens to run it.
//! * **Bounded memory**: out-of-order results wait in a reorder buffer
//!   whose size is capped by [`CampaignConfig::window`]; workers block
//!   before claiming a point that would overflow it.
//! * **Checkpointing**: with a manifest path set, every finished point is
//!   appended to a JSONL manifest (flushed per line). A later run with
//!   [`CampaignConfig::resume`] replays those results instead of
//!   recomputing them; a truncated trailing line (killed mid-write) is
//!   ignored and that point simply re-runs.
//! * **Cooperative cancellation**: the first failing point poisons the
//!   pool; workers stop claiming, in-flight successes are still
//!   checkpointed (so the work is not lost), and the earliest observed
//!   failure is reported.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One sweep point: a unique key (the manifest identity) plus the input the
/// runner needs.
#[derive(Debug, Clone)]
pub struct PointSpec<I> {
    /// Stable identity of the point within its campaign. Resumption matches
    /// checkpointed results by this key, so it must encode everything that
    /// distinguishes the point (panel, x value, seed index, …).
    pub key: String,
    /// Input handed to the point runner.
    pub input: I,
}

impl<I> PointSpec<I> {
    /// Creates a point spec.
    pub fn new(key: impl Into<String>, input: I) -> Self {
        PointSpec { key: key.into(), input }
    }
}

/// Execution knobs of a campaign run.
#[derive(Debug, Clone, Default)]
pub struct CampaignConfig {
    /// Worker threads; `0` selects `available_parallelism`. `1` runs
    /// sequentially on the calling thread.
    pub jobs: usize,
    /// Reorder-buffer bound in points; `0` selects `max(4 × jobs, 8)`.
    /// Values below `jobs` are raised to `jobs` (smaller windows would
    /// stall the pool).
    pub window: usize,
    /// Checkpoint manifest path (`*.manifest.jsonl`). `None` disables
    /// checkpointing.
    pub manifest: Option<PathBuf>,
    /// Replay results already present in the manifest instead of re-running
    /// their points. Without this flag an existing manifest is overwritten.
    pub resume: bool,
}

/// Why a campaign run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignError {
    /// A point's runner returned an error (or panicked).
    Point {
        /// Key of the earliest failing point observed.
        key: String,
        /// The runner's error message (or panic payload).
        message: String,
    },
    /// The manifest could not be read or written.
    Io {
        /// Manifest path.
        path: PathBuf,
        /// Underlying error rendering.
        message: String,
    },
    /// The manifest exists but does not belong to this campaign (different
    /// name, point set, or format).
    Manifest {
        /// Manifest path.
        path: PathBuf,
        /// What mismatched.
        message: String,
    },
    /// Two points share a key, so manifest identities would collide.
    DuplicateKey {
        /// The offending key.
        key: String,
    },
    /// The requested campaign name is not in the catalog.
    UnknownCampaign {
        /// The unknown name.
        name: String,
    },
    /// Building or serializing the campaign's aggregate failed.
    Aggregate {
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Point { key, message } => {
                write!(f, "campaign point '{key}' failed: {message}")
            }
            CampaignError::Io { path, message } => {
                write!(f, "manifest I/O error at {}: {message}", path.display())
            }
            CampaignError::Manifest { path, message } => {
                write!(f, "manifest {} does not match this campaign: {message}", path.display())
            }
            CampaignError::DuplicateKey { key } => {
                write!(f, "duplicate campaign point key '{key}'")
            }
            CampaignError::UnknownCampaign { name } => {
                write!(f, "unknown campaign '{name}'")
            }
            CampaignError::Aggregate { message } => {
                write!(f, "campaign aggregation failed: {message}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// What a finished campaign run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Total points in the campaign.
    pub total: usize,
    /// Points actually executed this run.
    pub executed: usize,
    /// Points replayed from the manifest.
    pub resumed: usize,
}

/// First line of a manifest file; identifies the campaign the checkpointed
/// results belong to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ManifestHeader {
    format: String,
    version: u64,
    campaign: String,
    fingerprint: u64,
    points: u64,
}

const MANIFEST_FORMAT: &str = "wsan-campaign-manifest";
const MANIFEST_VERSION: u64 = 1;

/// FNV-1a 64 over the campaign name and every point key, in order. Resuming
/// against a manifest whose fingerprint differs is refused: the checkpoint
/// belongs to a different sweep.
fn fingerprint<I>(name: &str, points: &[PointSpec<I>]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(name.as_bytes());
    eat(b"\n");
    for p in points {
        eat(p.key.as_bytes());
        eat(b"\n");
    }
    hash
}

/// Open manifest handle used for appending checkpoints.
struct Checkpointer {
    file: std::fs::File,
    path: PathBuf,
}

impl Checkpointer {
    /// Appends one `(key, result)` line and flushes it, so a killed process
    /// loses at most the line being written. Returns the result so callers
    /// can keep using it without cloning.
    fn append<R: Serialize>(&mut self, key: &str, result: R) -> Result<R, CampaignError> {
        let pair = (key.to_string(), result);
        let line = serde_json::to_string(&pair).map_err(|e| CampaignError::Manifest {
            path: self.path.clone(),
            message: format!("cannot serialize point '{key}': {e}"),
        })?;
        let (_, result) = pair;
        let io_err = |e: std::io::Error| CampaignError::Io {
            path: self.path.clone(),
            message: e.to_string(),
        };
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.write_all(b"\n").map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        Ok(result)
    }
}

/// Parses an existing manifest into `original index → result`, matching
/// lines by point key. Unparseable lines (a truncated tail from a killed
/// run) and unknown or repeated keys are skipped — their points re-run.
fn load_manifest<R: Deserialize>(
    path: &Path,
    text: &str,
    expect_fingerprint: u64,
    key_index: &BTreeMap<&str, usize>,
) -> Result<BTreeMap<usize, R>, CampaignError> {
    let mut lines = text.lines();
    let header_line = lines.next().unwrap_or("");
    let header: ManifestHeader =
        serde_json::from_str(header_line).map_err(|_| CampaignError::Manifest {
            path: path.to_path_buf(),
            message: "missing or unreadable header line".to_string(),
        })?;
    if header.format != MANIFEST_FORMAT || header.version != MANIFEST_VERSION {
        return Err(CampaignError::Manifest {
            path: path.to_path_buf(),
            message: format!("unsupported format {}/{}", header.format, header.version),
        });
    }
    if header.fingerprint != expect_fingerprint {
        return Err(CampaignError::Manifest {
            path: path.to_path_buf(),
            message: format!(
                "fingerprint {:016x} does not match this campaign's {:016x} \
                 (different name or point set) — delete the manifest or drop --resume",
                header.fingerprint, expect_fingerprint
            ),
        });
    }
    let mut resumed = BTreeMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let Ok((key, result)) = serde_json::from_str::<(String, R)>(line) else {
            continue;
        };
        if let Some(&idx) = key_index.get(key.as_str()) {
            resumed.entry(idx).or_insert(result);
        }
    }
    Ok(resumed)
}

/// Prepares the manifest for this run: loads resumable results (when
/// `resume` is set and the file exists) and opens the file for appending,
/// writing a fresh header when starting over.
fn open_manifest<I, R: Deserialize>(
    name: &str,
    points: &[PointSpec<I>],
    cfg: &CampaignConfig,
    key_index: &BTreeMap<&str, usize>,
) -> Result<(Option<Checkpointer>, BTreeMap<usize, R>), CampaignError> {
    let Some(path) = &cfg.manifest else {
        return Ok((None, BTreeMap::new()));
    };
    let fp = fingerprint(name, points);
    let mut resumed = BTreeMap::new();
    let mut fresh = true;
    if cfg.resume {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                resumed = load_manifest(path, &text, fp, key_index)?;
                fresh = false;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(CampaignError::Io { path: path.clone(), message: e.to_string() }),
        }
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CampaignError::Io { path: path.clone(), message: e.to_string() })?;
        }
    }
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(!fresh)
        .write(true)
        .truncate(fresh)
        .open(path)
        .map_err(|e| CampaignError::Io { path: path.clone(), message: e.to_string() })?;
    let mut ckpt = Checkpointer { file, path: path.clone() };
    if fresh {
        let header = ManifestHeader {
            format: MANIFEST_FORMAT.to_string(),
            version: MANIFEST_VERSION,
            campaign: name.to_string(),
            fingerprint: fp,
            points: points.len() as u64,
        };
        let line = serde_json::to_string(&header).map_err(|e| CampaignError::Manifest {
            path: ckpt.path.clone(),
            message: e.to_string(),
        })?;
        let io_err =
            |e: std::io::Error| CampaignError::Io { path: path.clone(), message: e.to_string() };
        ckpt.file.write_all(line.as_bytes()).map_err(io_err)?;
        ckpt.file.write_all(b"\n").map_err(io_err)?;
        ckpt.file.flush().map_err(io_err)?;
    }
    Ok((Some(ckpt), resumed))
}

/// Throughput instruments, created only when global metrics are enabled.
struct CampaignMetrics {
    executed: wsan_obs::Counter,
    resumed: wsan_obs::Counter,
    in_flight: wsan_obs::Gauge,
    checkpoint_lag: wsan_obs::Gauge,
    points_per_sec: wsan_obs::Gauge,
}

impl CampaignMetrics {
    fn new() -> Self {
        let reg = wsan_obs::global_metrics();
        CampaignMetrics {
            executed: reg.counter("campaign.points.executed"),
            resumed: reg.counter("campaign.points.resumed"),
            in_flight: reg.gauge("campaign.in_flight"),
            checkpoint_lag: reg.gauge("campaign.checkpoint_lag"),
            points_per_sec: reg.gauge("campaign.points_per_sec"),
        }
    }
}

/// Runs `run_point` once, converting a panic into an `Err` so one exploding
/// sweep point cancels the campaign instead of aborting the process.
fn run_caught<I, R, F>(run_point: &F, point: &PointSpec<I>) -> Result<R, String>
where
    F: Fn(&PointSpec<I>) -> Result<R, String>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_point(point))) {
        Ok(result) => result,
        Err(payload) => Err(crate::parallel::payload_message(payload.as_ref())),
    }
}

/// Runs a campaign: executes every point of `points` not already
/// checkpointed, streaming results through `consume` in the original point
/// order (resumed results included), and returns what was done.
///
/// `consume` sees exactly the same sequence regardless of `cfg.jobs`, so
/// any aggregate built from it is bit-identical between sequential,
/// parallel, and resumed runs.
///
/// # Errors
///
/// [`CampaignError::Point`] carries the earliest failing point observed
/// before the pool drained; manifest problems surface as
/// [`CampaignError::Io`] / [`CampaignError::Manifest`].
pub fn run<I, R, F, A>(
    name: &str,
    points: &[PointSpec<I>],
    cfg: &CampaignConfig,
    run_point: F,
    mut consume: A,
) -> Result<CampaignSummary, CampaignError>
where
    I: Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&PointSpec<I>) -> Result<R, String> + Sync,
    A: FnMut(&PointSpec<I>, R),
{
    let started = Instant::now();
    let mut key_index: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, p) in points.iter().enumerate() {
        if key_index.insert(p.key.as_str(), i).is_some() {
            return Err(CampaignError::DuplicateKey { key: p.key.clone() });
        }
    }
    let metrics = wsan_obs::metrics_enabled().then(CampaignMetrics::new);
    let (mut ckpt, mut resumed_map) = open_manifest::<I, R>(name, points, cfg, &key_index)?;
    let todo: Vec<usize> = (0..points.len()).filter(|i| !resumed_map.contains_key(i)).collect();
    let jobs = if cfg.jobs == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        cfg.jobs
    }
    .min(todo.len().max(1));

    if wsan_obs::enabled(wsan_obs::Level::Info) {
        wsan_obs::event(
            wsan_obs::Level::Info,
            "wsan_expr::campaign",
            "campaign starting",
            &[
                wsan_obs::kv("campaign", name),
                wsan_obs::kv("points", points.len()),
                wsan_obs::kv("resumed", resumed_map.len()),
                wsan_obs::kv("jobs", jobs),
            ],
        );
    }

    let mut executed = 0usize;
    let mut resumed_count = 0usize;

    if jobs <= 1 || todo.len() <= 1 {
        for (idx, point) in points.iter().enumerate() {
            if let Some(result) = resumed_map.remove(&idx) {
                resumed_count += 1;
                consume(point, result);
                continue;
            }
            let result = run_caught(&run_point, point)
                .map_err(|message| CampaignError::Point { key: point.key.clone(), message })?;
            let result = match &mut ckpt {
                Some(c) => c.append(&point.key, result)?,
                None => result,
            };
            executed += 1;
            consume(point, result);
        }
        finish_metrics(metrics.as_ref(), executed, resumed_count, started);
        return Ok(CampaignSummary { total: points.len(), executed, resumed: resumed_count });
    }

    let window = if cfg.window == 0 { (jobs * 4).max(8) } else { cfg.window.max(jobs) };
    let pos_of: BTreeMap<usize, usize> = todo.iter().enumerate().map(|(p, &i)| (i, p)).collect();
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    // number of fresh (non-resumed) results consumed in order; workers wait
    // on it before claiming a position beyond the reorder window
    let gate: (Mutex<usize>, Condvar) = (Mutex::new(0), Condvar::new());
    let (sender, receiver) = mpsc::channel::<(usize, Result<R, String>)>();

    let mut failure: Option<(usize, String)> = None;
    let mut ckpt_error: Option<CampaignError> = None;

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let sender = sender.clone();
            let next = &next;
            let poisoned = &poisoned;
            let gate = &gate;
            let todo = &todo;
            let run_point = &run_point;
            scope.spawn(move || {
                loop {
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let pos = next.fetch_add(1, Ordering::Relaxed);
                    if pos >= todo.len() {
                        break;
                    }
                    {
                        let (lock, cv) = gate;
                        let mut consumed = lock.lock().unwrap_or_else(|e| e.into_inner());
                        while pos >= *consumed + window && !poisoned.load(Ordering::Relaxed) {
                            // the timeout is a safety net for the poison
                            // wakeup; normal progress comes from notify_all
                            let (guard, _) = cv
                                .wait_timeout(consumed, Duration::from_millis(50))
                                .unwrap_or_else(|e| e.into_inner());
                            consumed = guard;
                        }
                    }
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let result = run_caught(run_point, &points[todo[pos]]);
                    if result.is_err() {
                        poisoned.store(true, Ordering::Relaxed);
                        gate.1.notify_all();
                    }
                    if sender.send((pos, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(sender);

        // the aggregator runs on the calling thread: consume any leading
        // resumed points, then fold in fresh results as they arrive
        let mut buffer: BTreeMap<usize, R> = BTreeMap::new();
        let mut orig_next = 0usize;
        let mut fresh_consumed = 0usize;
        let advance_ready = |orig_next: &mut usize,
                             fresh_consumed: &mut usize,
                             buffer: &mut BTreeMap<usize, R>,
                             resumed_map: &mut BTreeMap<usize, R>,
                             consume: &mut A,
                             resumed_count: &mut usize| {
            while *orig_next < points.len() {
                if let Some(result) = resumed_map.remove(orig_next) {
                    *resumed_count += 1;
                    consume(&points[*orig_next], result);
                    *orig_next += 1;
                    continue;
                }
                let pos = pos_of[orig_next];
                let Some(result) = buffer.remove(&pos) else {
                    break;
                };
                consume(&points[*orig_next], result);
                *orig_next += 1;
                *fresh_consumed += 1;
                let (lock, cv) = &gate;
                *lock.lock().unwrap_or_else(|e| e.into_inner()) = *fresh_consumed;
                cv.notify_all();
            }
        };
        advance_ready(
            &mut orig_next,
            &mut fresh_consumed,
            &mut buffer,
            &mut resumed_map,
            &mut consume,
            &mut resumed_count,
        );
        for (pos, result) in receiver.iter() {
            match result {
                Ok(result) => {
                    // checkpoint immediately — even out of order, and even
                    // after a failure elsewhere: finished work stays saved
                    let result = match &mut ckpt {
                        Some(c) if ckpt_error.is_none() => {
                            match c.append(&points[todo[pos]].key, result) {
                                Ok(result) => result,
                                Err(e) => {
                                    ckpt_error = Some(e);
                                    poisoned.store(true, Ordering::Relaxed);
                                    gate.1.notify_all();
                                    continue;
                                }
                            }
                        }
                        _ => result,
                    };
                    executed += 1;
                    buffer.insert(pos, result);
                }
                Err(message) => {
                    if failure.as_ref().is_none_or(|(p, _)| pos < *p) {
                        failure = Some((pos, message));
                    }
                }
            }
            advance_ready(
                &mut orig_next,
                &mut fresh_consumed,
                &mut buffer,
                &mut resumed_map,
                &mut consume,
                &mut resumed_count,
            );
            if let Some(m) = &metrics {
                let claimed = next.load(Ordering::Relaxed).min(todo.len());
                m.in_flight.set(claimed.saturating_sub(executed) as f64);
                m.checkpoint_lag.set(buffer.len() as f64);
            }
        }
    });

    finish_metrics(metrics.as_ref(), executed, resumed_count, started);
    if let Some(e) = ckpt_error {
        return Err(e);
    }
    if let Some((pos, message)) = failure {
        return Err(CampaignError::Point { key: points[todo[pos]].key.clone(), message });
    }
    Ok(CampaignSummary { total: points.len(), executed, resumed: resumed_count })
}

/// Final metric updates of a campaign run.
fn finish_metrics(
    metrics: Option<&CampaignMetrics>,
    executed: usize,
    resumed: usize,
    started: Instant,
) {
    let Some(m) = metrics else { return };
    m.executed.add(executed as u64);
    m.resumed.add(resumed as u64);
    m.in_flight.set(0.0);
    m.checkpoint_lag.set(0.0);
    let secs = started.elapsed().as_secs_f64();
    m.points_per_sec.set(if secs > 0.0 { executed as f64 / secs } else { 0.0 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<PointSpec<u64>> {
        (0..n).map(|i| PointSpec::new(format!("p{i}"), i as u64)).collect()
    }

    fn square(p: &PointSpec<u64>) -> Result<u64, String> {
        Ok(p.input * p.input)
    }

    fn collect(cfg: &CampaignConfig, n: usize) -> (Vec<(String, u64)>, CampaignSummary) {
        let mut out = Vec::new();
        let summary = run("squares", &specs(n), cfg, square, |p, r| {
            out.push((p.key.clone(), r));
        })
        .unwrap();
        (out, summary)
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (seq, s1) = collect(&CampaignConfig { jobs: 1, ..Default::default() }, 25);
        let (par, s2) = collect(&CampaignConfig { jobs: 4, window: 4, ..Default::default() }, 25);
        assert_eq!(seq, par);
        assert_eq!(s1.executed, 25);
        assert_eq!(s2.executed, 25);
        assert_eq!(s2.resumed, 0);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let points = vec![PointSpec::new("same", 1u64), PointSpec::new("same", 2u64)];
        let err =
            run("dup", &points, &CampaignConfig::default(), square, |_, _: u64| {}).unwrap_err();
        assert!(matches!(err, CampaignError::DuplicateKey { .. }));
    }

    #[test]
    fn failing_point_cancels_and_reports_its_key() {
        let points = specs(40);
        let ran = AtomicUsize::new(0);
        let err = run(
            "fails",
            &points,
            &CampaignConfig { jobs: 4, window: 4, ..Default::default() },
            |p| {
                ran.fetch_add(1, Ordering::SeqCst);
                if p.input == 0 {
                    Err("boom".to_string())
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                    Ok(p.input)
                }
            },
            |_, _: u64| {},
        )
        .unwrap_err();
        match err {
            CampaignError::Point { key, message } => {
                assert_eq!(key, "p0");
                assert_eq!(message, "boom");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(ran.load(Ordering::SeqCst) < 40, "pool kept claiming points after the failure");
    }

    #[test]
    fn panicking_point_is_reported_not_propagated() {
        let points = specs(3);
        let err = run(
            "panics",
            &points,
            &CampaignConfig { jobs: 2, ..Default::default() },
            |p| {
                if p.input == 1 {
                    panic!("kapow");
                }
                Ok(p.input)
            },
            |_, _: u64| {},
        )
        .unwrap_err();
        match err {
            CampaignError::Point { message, .. } => assert!(message.contains("kapow")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn manifest_round_trips_and_resume_skips_done_points() {
        let dir = std::env::temp_dir().join("wsan-campaign-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = dir.join("sq.manifest.jsonl");
        let cfg =
            CampaignConfig { jobs: 1, manifest: Some(manifest.clone()), ..Default::default() };
        let (first, s1) = collect(&cfg, 10);
        assert_eq!(s1.executed, 10);
        // resume over a complete manifest: nothing re-runs
        let cfg2 = CampaignConfig { resume: true, ..cfg };
        let mut out = Vec::new();
        let s2 = run(
            "squares",
            &specs(10),
            &cfg2,
            |_| -> Result<u64, String> { Err("must not re-run".into()) },
            |p, r| out.push((p.key.clone(), r)),
        )
        .unwrap();
        assert_eq!(s2.executed, 0);
        assert_eq!(s2.resumed, 10);
        assert_eq!(out, first);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn resume_refuses_a_foreign_manifest() {
        let dir = std::env::temp_dir().join("wsan-campaign-foreign");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = dir.join("m.manifest.jsonl");
        let cfg = CampaignConfig { jobs: 1, manifest: Some(manifest), ..Default::default() };
        collect(&cfg, 5);
        let cfg2 = CampaignConfig { resume: true, ..cfg };
        // same name, different point set → fingerprint mismatch
        let err = run("squares", &specs(6), &cfg2, square, |_, _: u64| {}).unwrap_err();
        assert!(matches!(err, CampaignError::Manifest { .. }), "got {err:?}");
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("wsan-campaign-foreign"));
    }

    #[test]
    fn truncated_manifest_line_just_reruns_that_point() {
        let dir = std::env::temp_dir().join("wsan-campaign-truncated");
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = dir.join("m.manifest.jsonl");
        let cfg =
            CampaignConfig { jobs: 1, manifest: Some(manifest.clone()), ..Default::default() };
        let (full, _) = collect(&cfg, 6);
        // chop the final line in half, as a kill mid-write would
        let text = std::fs::read_to_string(&manifest).unwrap();
        let cut = text.trim_end().len() - 4;
        std::fs::write(&manifest, &text[..cut]).unwrap();
        let cfg2 = CampaignConfig { resume: true, ..cfg };
        let mut out = Vec::new();
        let summary = run("squares", &specs(6), &cfg2, square, |p, r| {
            out.push((p.key.clone(), r));
        })
        .unwrap();
        assert_eq!(summary.resumed, 5);
        assert_eq!(summary.executed, 1);
        assert_eq!(out, full);
        let _ = std::fs::remove_dir_all(dir);
    }
}
