//! Detection-policy experiments (Figs. 10, 11): classifying links whose
//! reliability degrades under channel reuse, with and without external
//! WiFi interference.

use crate::schedulable::set_seed;
use crate::Algorithm;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use wsan_core::NetworkModel;
use wsan_detect::{DetectionPolicy, EpochReport};
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{ChannelSet, DirectedLink, Position, Prr, Topology};
use wsan_sim::{CaptureModel, LinkCondition, SimConfig, SimEngine, Simulator, WifiInterferer};

/// Parameters of the detection experiment.
#[derive(Debug, Clone)]
pub struct DetectionConfig {
    /// Flows in the workload. The paper uses 50 peer-to-peer flows at 1 s;
    /// our synthetic topology has shorter routes, so the default is denser
    /// (110 flows) to put the conservative scheduler under comparable
    /// pressure — at 50 flows RC's laxity never goes negative and it
    /// (correctly) introduces no reuse at all.
    pub flow_count: usize,
    /// Health-report epochs (paper: 6).
    pub epochs: usize,
    /// PRR samples per link per condition per epoch (paper: 18).
    pub samples_per_epoch: u32,
    /// Schedule repetitions aggregated into one PRR sample.
    pub window_reps: u32,
    /// Base seed.
    pub seed: u64,
    /// Capture model.
    pub capture: CaptureModel,
    /// Detection policy (`PRR_t`, α).
    pub policy: DetectionPolicy,
    /// Effective WiFi interferer power (dBm).
    pub wifi_power_dbm: f64,
    /// WiFi duty cycle.
    pub wifi_duty: f64,
    /// `PRR_t` for the communication graph.
    pub prr_threshold: f64,
    /// Which simulation core executes the runs. The interfered environment
    /// is outside the event engine's byte-identity contract, so switching
    /// engines changes individual draws (not the statistics).
    pub engine: SimEngine,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            flow_count: 110,
            epochs: 6,
            samples_per_epoch: 18,
            window_reps: 10,
            seed: 0xFEED,
            capture: CaptureModel::default(),
            policy: DetectionPolicy::default(),
            wifi_power_dbm: -3.0,
            wifi_duty: 0.10,
            prr_threshold: 0.9,
            engine: SimEngine::default(),
        }
    }
}

/// Outcome of the detection experiment for one scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionRun {
    /// Algorithm name.
    pub algorithm: String,
    /// Number of links associated with channel reuse in the schedule.
    pub links_with_reuse: usize,
    /// Per-epoch reports in the clean environment.
    pub clean: Vec<EpochReport>,
    /// Per-epoch reports under WiFi interference.
    pub interfered: Vec<EpochReport>,
}

impl DetectionRun {
    /// Links rejected (reuse-degraded) in at least one epoch of the given
    /// environment.
    pub fn ever_rejected(&self, interfered: bool) -> Vec<DirectedLink> {
        let epochs = if interfered { &self.interfered } else { &self.clean };
        let mut out = Vec::new();
        for epoch in epochs {
            for link in epoch.rejected() {
                if !out.contains(&link) {
                    out.push(link);
                }
            }
        }
        out.sort();
        out
    }
}

/// One interferer per floor, placed at the floor's node centroid — the
/// synthetic analogue of the paper's three Raspberry-Pi pairs.
pub fn per_floor_interferers(
    topology: &Topology,
    power_dbm: f64,
    duty: f64,
) -> Vec<WifiInterferer> {
    let model = topology.propagation_model().cloned().unwrap_or_default();
    let mut floors: BTreeMap<i64, (f64, f64, f64, usize)> = BTreeMap::new();
    for node in topology.nodes() {
        let p = topology.position(node);
        let floor = (p.z / model.floor_height_m).round() as i64;
        let e = floors.entry(floor).or_insert((0.0, 0.0, 0.0, 0));
        e.0 += p.x;
        e.1 += p.y;
        e.2 += p.z;
        e.3 += 1;
    }
    floors
        .values()
        .map(|&(x, y, z, n)| {
            let c = n as f64;
            WifiInterferer::wifi_channel_1(Position::new(x / c, y / c, z / c), power_dbm, duty)
        })
        .collect()
}

/// Runs the detection experiment for each algorithm: schedule the workload,
/// execute it epoch by epoch in a clean environment and again under WiFi
/// interference, and classify every reuse-involved link each epoch.
///
/// Algorithms whose schedule fails are skipped (the paper's workload is
/// schedulable by both RA and RC).
pub fn evaluate(
    topology: &Topology,
    channels: &ChannelSet,
    algorithms: &[Algorithm],
    cfg: &DetectionConfig,
) -> Vec<DetectionRun> {
    algorithms
        .iter()
        .filter_map(|&algo| {
            evaluate_algo(topology, channels, algo, cfg).unwrap_or_else(|e| panic!("{e}"))
        })
        .collect()
}

/// Campaign-engine variant of [`evaluate`] for a single algorithm, with the
/// panicking paths turned into errors. `Ok(None)` means the algorithm could
/// not schedule the workload (skipped, matching [`evaluate`]).
///
/// # Errors
///
/// Returns a message when the workload cannot be generated or the
/// simulator rejects its inputs.
pub fn evaluate_algo(
    topology: &Topology,
    channels: &ChannelSet,
    algo: Algorithm,
    cfg: &DetectionConfig,
) -> Result<Option<DetectionRun>, String> {
    let prr = Prr::new(cfg.prr_threshold).map_err(|e| e.to_string())?;
    let comm = topology.comm_graph(channels, prr);
    let model = NetworkModel::new(topology, channels);
    let fsc = FlowSetConfig::new(
        cfg.flow_count,
        PeriodRange::new(0, 0).expect("constant range is valid"),
        TrafficPattern::PeerToPeer,
    );
    let set = FlowSetGenerator::new(cfg.seed)
        .generate(&comm, &fsc)
        .map_err(|e| format!("workload generation failed: {e}"))?;
    let interferers = per_floor_interferers(topology, cfg.wifi_power_dbm, cfg.wifi_duty);
    let Ok(schedule) = algo.build().schedule(&set, &model) else {
        return Ok(None);
    };
    let sim = Simulator::try_new(topology, channels, &set, &schedule).map_err(|e| e.to_string())?;
    let reps = cfg.samples_per_epoch * cfg.window_reps;
    let run_env = |wifi: bool| -> Result<Vec<EpochReport>, String> {
        (0..cfg.epochs)
            .map(|epoch| {
                let report = sim
                    .try_run_with(
                        cfg.engine,
                        &SimConfig {
                            seed: set_seed(cfg.seed, epoch + if wifi { 1000 } else { 0 }),
                            repetitions: reps,
                            window_reps: cfg.window_reps,
                            capture: cfg.capture,
                            interferers: if wifi { interferers.clone() } else { Vec::new() },
                            discovery_probes: 1,
                            ..SimConfig::default()
                        },
                    )
                    .map_err(|e| e.to_string())?;
                let samples = report.links_with_reuse().into_iter().map(|link| {
                    (
                        link,
                        report.prr_distribution(link, LinkCondition::Reuse),
                        report.prr_distribution(link, LinkCondition::ContentionFree),
                    )
                });
                Ok(EpochReport::evaluate(epoch, &cfg.policy, samples))
            })
            .collect()
    };
    let clean = run_env(false)?;
    let interfered = run_env(true)?;
    let links_with_reuse = clean
        .iter()
        .chain(&interfered)
        .flat_map(|e| e.records.iter().map(|r| r.link))
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    Ok(Some(DetectionRun { algorithm: algo.to_string(), links_with_reuse, clean, interfered }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::{testbeds, ChannelId};

    #[test]
    fn interferers_land_one_per_floor() {
        let topo = testbeds::wustl(1);
        let ws = per_floor_interferers(&topo, 6.0, 0.3);
        assert_eq!(ws.len(), 3);
        let mut zs: Vec<f64> = ws.iter().map(|w| w.position.z).collect();
        zs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(zs[0] < zs[1] && zs[1] < zs[2]);
    }

    #[test]
    fn detection_experiment_runs_end_to_end() {
        let topo = testbeds::wustl(5);
        let channels = ChannelId::range(11, 14).unwrap();
        let cfg = DetectionConfig {
            flow_count: 15,
            epochs: 2,
            samples_per_epoch: 6,
            window_reps: 4,
            ..DetectionConfig::default()
        };
        let runs = evaluate(&topo, &channels, &[Algorithm::Ra { rho: 2 }], &cfg);
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.clean.len(), 2);
        assert_eq!(run.interfered.len(), 2);
        // the schedule decides which links reuse; both environments see the
        // same schedule, so reuse-involved links overlap heavily
        assert!(run.links_with_reuse > 0 || run.clean.iter().all(|e| e.records.is_empty()));
    }
}
