//! Parallel multi-gateway sharded scheduling on the campaign worker pool.
//!
//! `wsan_core::shard` provides the pure pieces — partition, per-shard
//! problem construction, stitching, whole-network validation. This module
//! drives them: the per-shard schedule jobs run as points of the
//! deterministic campaign engine (work stealing, ordered consumption), so
//! a city-scale plant schedules on all cores and still produces a
//! byte-identical stitched schedule for `--jobs 1` and `--jobs N`.

use crate::campaign::{run, CampaignConfig, CampaignError, PointSpec};
use crate::Algorithm;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use wsan_core::shard::{
    build_problem, plan, schedule_shard, stitch, validate_stitched, ShardConfig, ShardError,
    ShardPart, ShardPlan,
};
use wsan_core::{Schedule, SchedulerConfig};
use wsan_net::plants::Plant;
use wsan_net::ChannelSet;

/// Why a sharded run failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShardedError {
    /// Partitioning, flow generation, scheduling, or stitching failed.
    Shard(ShardError),
    /// The worker pool failed (a shard job panicked, checkpoint I/O, …).
    Campaign(CampaignError),
    /// The stitched schedule failed whole-network validation — a bug in
    /// the partition/coloring/stitch pipeline, never expected in a release.
    Invalid {
        /// Number of interference violations found.
        violations: usize,
    },
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedError::Shard(e) => write!(f, "{e}"),
            ShardedError::Campaign(e) => write!(f, "shard pool failed: {e}"),
            ShardedError::Invalid { violations } => {
                write!(f, "stitched schedule failed validation with {violations} violation(s)")
            }
        }
    }
}

impl std::error::Error for ShardedError {}

impl From<ShardError> for ShardedError {
    fn from(e: ShardError) -> Self {
        ShardedError::Shard(e)
    }
}

impl From<CampaignError> for ShardedError {
    fn from(e: CampaignError) -> Self {
        ShardedError::Campaign(e)
    }
}

/// Measured outcome of one sharded scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedReport {
    /// Plant name.
    pub plant: String,
    /// Nodes in the plant.
    pub nodes: usize,
    /// Shards (= gateways) the plant was partitioned into.
    pub shards: usize,
    /// Spectrum colors the shard conflict graph needed.
    pub colors: usize,
    /// Total flows scheduled across all shards.
    pub flows: usize,
    /// Entries in the stitched whole-network schedule.
    pub entries: usize,
    /// Stitched hyperperiod in slots.
    pub horizon: u32,
    /// FNV-1a digest of the stitched schedule (determinism pin).
    pub digest: u64,
    /// Wall-clock of the parallel partition+schedule phase, nanoseconds.
    pub schedule_ns: u64,
    /// Wall-clock of stitching, nanoseconds.
    pub stitch_ns: u64,
    /// Wall-clock of whole-network validation, nanoseconds.
    pub validate_ns: u64,
}

/// A stitched whole-network schedule plus its plan and measurements.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The validated whole-network schedule.
    pub schedule: Schedule,
    /// The partition and spectrum plan that produced it.
    pub plan: ShardPlan,
    /// Timings and shape.
    pub report: ShardedReport,
}

/// Partitions `plant` into `cfg.shards` gateway shards, schedules every
/// shard with `algorithm` on `jobs` workers, stitches the results, and
/// validates the stitched schedule against the whole plant.
///
/// Deterministic in `(plant, channels, cfg, algorithm)`: the stitched
/// schedule (and its `digest`) is byte-identical for any `jobs`.
///
/// # Errors
///
/// [`ShardedError`] when any stage fails; `Invalid` in particular means
/// the pipeline itself is buggy (the validator exists so that such a bug
/// can never ship a schedule silently).
pub fn schedule_sharded(
    plant: &Plant,
    channels: &ChannelSet,
    cfg: &ShardConfig,
    algorithm: &Algorithm,
    jobs: usize,
) -> Result<ShardedOutcome, ShardedError> {
    let started = Instant::now();
    let plan = plan(plant, channels, cfg, jobs)?;
    let scheduler = algorithm.build();
    let sched_cfg = SchedulerConfig::default();
    let points: Vec<PointSpec<usize>> =
        (0..cfg.shards).map(|i| PointSpec::new(format!("shard{i}"), i)).collect();
    let pool_cfg = CampaignConfig { jobs, ..CampaignConfig::default() };
    // The shard points already spread over the pool; give each point's
    // internal distance extraction the workers left over so a one-shard
    // run on a big plant still uses every core without oversubscribing a
    // many-shard run.
    let effective = if jobs == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        jobs
    };
    let inner_jobs = (effective / cfg.shards.max(1)).max(1);
    let mut parts: Vec<ShardPart> = Vec::with_capacity(cfg.shards);
    run(
        "shard",
        &points,
        &pool_cfg,
        |p| {
            let problem = build_problem(plant, channels, &plan, cfg, p.input, inner_jobs)
                .map_err(|e| e.to_string())?;
            let schedule = schedule_shard(&problem, scheduler.as_ref(), &sched_cfg)
                .map_err(|e| e.to_string())?;
            Ok(ShardPart {
                shard: p.input,
                flow_count: problem.flows.len(),
                local_to_global: problem.local_to_global,
                offset_base: problem.offset_base,
                schedule,
            })
        },
        |_, part| parts.push(part),
    )?;
    let schedule_ns = elapsed_ns(started);

    let stitch_started = Instant::now();
    let schedule = stitch(plant.node_count(), channels.len(), &parts)?;
    let stitch_ns = elapsed_ns(stitch_started);

    let validate_started = Instant::now();
    validate_stitched(plant, channels, cfg.reuse_floor, &schedule)
        .map_err(|v| ShardedError::Invalid { violations: v.len() })?;
    let validate_ns = elapsed_ns(validate_started);

    let report = ShardedReport {
        plant: plant.name().to_string(),
        nodes: plant.node_count(),
        shards: cfg.shards,
        colors: plan.color_count,
        flows: parts.iter().map(|p| p.flow_count).sum(),
        entries: schedule.entry_count(),
        horizon: schedule.horizon(),
        digest: schedule_digest(&schedule),
        schedule_ns,
        stitch_ns,
        validate_ns,
    };
    Ok(ShardedOutcome { schedule, plan, report })
}

/// FNV-1a digest over a schedule's dimensions and entries, in placement
/// order — equal digests ⇒ byte-identical schedules for all practical
/// purposes (used to pin `--jobs 1` vs `--jobs N` determinism).
pub fn schedule_digest(schedule: &Schedule) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(u64::from(schedule.horizon()));
    eat(schedule.channel_count() as u64);
    eat(schedule.node_count() as u64);
    for entry in schedule.entries() {
        eat(u64::from(entry.slot));
        eat(entry.offset as u64);
        eat(entry.tx.flow.index() as u64);
        eat(u64::from(entry.tx.job_index));
        eat(entry.tx.link.tx.index() as u64);
        eat(entry.tx.link.rx.index() as u64);
        eat(u64::from(entry.tx.seq));
        eat(u64::from(entry.tx.attempt));
    }
    h
}

fn elapsed_ns(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::plants::{generate, PlantConfig};
    use wsan_net::propagation::PropagationModel;
    use wsan_net::ChannelId;

    fn small_plant() -> Plant {
        let cfg = PlantConfig {
            name: "sharding-test".to_string(),
            buildings_x: 2,
            buildings_y: 2,
            floors: 2,
            nodes_per_floor: 10,
            building_width_m: 40.0,
            building_depth_m: 20.0,
            street_gap_m: 12.0,
            model: PropagationModel::default(),
            channel_offset_sigma_db: 1.5,
        };
        generate(&cfg, 3)
    }

    #[test]
    fn sharded_schedule_is_identical_across_job_counts() {
        let plant = small_plant();
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(3, 11, 4);
        let algo = Algorithm::Rc { rho_t: 2 };
        let seq = schedule_sharded(&plant, &channels, &cfg, &algo, 1).unwrap();
        let par = schedule_sharded(&plant, &channels, &cfg, &algo, 4).unwrap();
        assert_eq!(seq.schedule, par.schedule);
        assert_eq!(seq.report.digest, par.report.digest);
        assert_eq!(seq.plan, par.plan);
        assert!(seq.report.entries > 0);
        assert_eq!(seq.report.shards, 3);
    }

    #[test]
    fn sharded_run_validates_and_reports_shape() {
        let plant = small_plant();
        let channels = ChannelId::all();
        let cfg = ShardConfig::new(2, 5, 4);
        let out = schedule_sharded(&plant, &channels, &cfg, &Algorithm::Nr, 2).unwrap();
        assert_eq!(out.report.nodes, plant.node_count());
        assert_eq!(out.report.flows, 8);
        assert!(out.report.colors >= 1);
        assert_eq!(out.schedule.node_count(), plant.node_count());
    }
}
