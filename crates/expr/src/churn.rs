//! Flow-churn campaign: hammer a long-lived [`GatewayState`] with a
//! deterministic random admit/remove/re-rate/retire sequence and verify —
//! after **every** operation — that the incrementally maintained schedule
//! is byte-identical to a recompute-from-scratch of the same flow set.
//!
//! The record of an episode is fully deterministic in its seed: operation
//! mix, delta-path counts, evictions, rejections, and the final schedule
//! shape. No wall-clock time is recorded, so campaign checkpoints resume
//! bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wsan_core::gateway::{DeltaPath, FlowSpec, GatewayConfig, GatewayState};
use wsan_core::{NetworkModel, ReuseConservatively, Scheduler};
use wsan_flow::Period;
use wsan_net::{routing, testbeds, ChannelId, CommGraph, NodeId, Prr};

/// One churn episode's knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Operations to attempt.
    pub ops: usize,
    /// Episode seed (topology PRR draw and operation stream).
    pub seed: u64,
    /// Reuse hop-distance floor for the RC gateway and its oracle.
    pub rho_t: u32,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { ops: 60, seed: 1, rho_t: 2 }
    }
}

/// Deterministic outcome of one churn episode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnRecord {
    /// Episode seed.
    pub seed: u64,
    /// Operations attempted.
    pub ops: usize,
    /// Successful admissions.
    pub admitted: usize,
    /// Successful removals.
    pub removed: usize,
    /// Successful re-rates.
    pub updated: usize,
    /// Link retirements applied.
    pub retired: usize,
    /// Operations rejected (infeasible, retired route, unroutable, …).
    pub rejected: usize,
    /// Flows shed by the feasibility/recovery ladders.
    pub evicted: usize,
    /// Delta operations that re-placed only a priority suffix.
    pub suffix_paths: usize,
    /// Delta operations that fell back to a full recompute.
    pub full_paths: usize,
    /// Operations resolved by the recovery ladder.
    pub recovery_paths: usize,
    /// Operations that left the schedule untouched.
    pub unchanged_paths: usize,
    /// Post-operation states whose schedule differed from a fresh
    /// recompute of the same flow set. **Must be zero** — the campaign's
    /// whole point.
    pub oracle_mismatches: usize,
    /// Admitted flows at the end of the episode.
    pub final_flows: usize,
    /// Scheduled transmissions at the end of the episode.
    pub final_entries: usize,
    /// Final schedule horizon in slots.
    pub final_horizon: u32,
}

/// Runs one churn episode on the WUSTL testbed (seeded PRR draw), checking
/// the delta schedule against the recompute oracle after every operation.
pub fn episode(cfg: &ChurnConfig) -> ChurnRecord {
    let topo = testbeds::wustl(cfg.seed);
    let channels = ChannelId::range(11, 14).expect("valid channel range");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("valid PRR"));
    let model = NetworkModel::new(&topo, &channels);
    let oracle = ReuseConservatively::new(cfg.rho_t);
    let mut gw = GatewayState::new(
        model,
        Box::new(ReuseConservatively::new(cfg.rho_t)),
        GatewayConfig { rho_t: Some(cfg.rho_t), ..GatewayConfig::default() },
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let mut rec = ChurnRecord {
        seed: cfg.seed,
        ops: cfg.ops,
        admitted: 0,
        removed: 0,
        updated: 0,
        retired: 0,
        rejected: 0,
        evicted: 0,
        suffix_paths: 0,
        full_paths: 0,
        recovery_paths: 0,
        unchanged_paths: 0,
        oracle_mismatches: 0,
        final_flows: 0,
        final_entries: 0,
        final_horizon: 0,
    };
    let mut next_name = 0usize;
    let mut retires_left = 3usize;

    for _ in 0..cfg.ops {
        let roll: f64 = rng.gen();
        let result = if roll < 0.55 || gw.is_empty() {
            let name = format!("f{next_name}");
            match random_spec(&mut rng, &comm) {
                Some(spec) => match gw.add_flow(&name, spec) {
                    Ok(report) => {
                        rec.admitted += 1;
                        next_name += 1;
                        Some(report)
                    }
                    Err(_) => {
                        rec.rejected += 1;
                        None
                    }
                },
                None => {
                    rec.rejected += 1;
                    None
                }
            }
        } else if roll < 0.75 {
            let name = random_flow(&mut rng, &gw);
            match gw.remove_flow(&name) {
                Ok(report) => {
                    rec.removed += 1;
                    Some(report)
                }
                Err(_) => {
                    rec.rejected += 1;
                    None
                }
            }
        } else if roll < 0.92 || retires_left == 0 {
            let name = random_flow(&mut rng, &gw);
            let (period, deadline) = random_timing(&mut rng, 2);
            match gw.update_rate(&name, period, deadline) {
                Ok(report) => {
                    rec.updated += 1;
                    Some(report)
                }
                Err(_) => {
                    rec.rejected += 1;
                    None
                }
            }
        } else {
            // retire a random communication edge (both directions)
            retires_left -= 1;
            let a = NodeId::new(rng.gen_range(0..comm.node_count()));
            let neighbors = comm.neighbors(a);
            if neighbors.is_empty() {
                rec.rejected += 1;
                None
            } else {
                let b = neighbors[rng.gen_range(0..neighbors.len())];
                match gw.retire_links(&[
                    wsan_net::DirectedLink::new(a, b),
                    wsan_net::DirectedLink::new(b, a),
                ]) {
                    Ok(report) => {
                        rec.retired += 1;
                        Some(report)
                    }
                    Err(_) => {
                        rec.rejected += 1;
                        None
                    }
                }
            }
        };
        if let Some(report) = result {
            rec.evicted += report.evicted.len();
            match report.path {
                DeltaPath::Suffix { .. } => rec.suffix_paths += 1,
                DeltaPath::Full => rec.full_paths += 1,
                DeltaPath::Recovery => rec.recovery_paths += 1,
                DeltaPath::Unchanged => rec.unchanged_paths += 1,
            }
        }
        // the oracle: recompute the whole flow set from scratch
        let fresh = oracle.schedule(&gw.flow_set(), gw.model());
        let matches = match fresh {
            Ok(ref s) => s == gw.schedule(),
            Err(_) => false,
        };
        if !matches {
            rec.oracle_mismatches += 1;
        }
    }

    rec.final_flows = gw.len();
    rec.final_entries = gw.schedule().entry_count();
    rec.final_horizon = gw.schedule().horizon();
    rec
}

/// A random admission spec: shortest-path route between two distinct
/// nodes, period from {32, 64, 128} slots, deadline uniform in the
/// feasible-looking window.
fn random_spec(rng: &mut StdRng, comm: &CommGraph) -> Option<FlowSpec> {
    let n = comm.node_count();
    let src = NodeId::new(rng.gen_range(0..n));
    let dst = NodeId::new(rng.gen_range(0..n));
    if src == dst {
        return None;
    }
    let route = routing::shortest_path(comm, src, dst).ok()?;
    let hops = route.hop_count() as u32;
    let (period, _) = random_timing(rng, hops);
    // retries double the per-job slot demand; keep a plausible window
    let min_d = (2 * hops).min(period.slots());
    let deadline = rng.gen_range(min_d..=period.slots());
    Some(FlowSpec { route, period, deadline_slots: deadline })
}

/// A period from {32, 64, 128} and a deadline within it, at least
/// `2 * hops` when that fits.
fn random_timing(rng: &mut StdRng, hops: u32) -> (Period, u32) {
    let slots = 32u32 << rng.gen_range(0..3u32);
    let period = Period::from_slots(slots).expect("nonzero");
    let min_d = (2 * hops).clamp(1, slots);
    let deadline = rng.gen_range(min_d..=slots);
    (period, deadline)
}

/// A uniformly drawn admitted flow name (caller ensures non-empty).
fn random_flow(rng: &mut StdRng, gw: &GatewayState) -> String {
    let names = gw.flow_names();
    names[rng.gen_range(0..names.len())].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_is_deterministic_and_oracle_clean() {
        let cfg = ChurnConfig { ops: 25, seed: 5, rho_t: 2 };
        let a = episode(&cfg);
        let b = episode(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.oracle_mismatches, 0, "{a:?}");
        assert!(a.admitted > 0, "{a:?}");
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let a = episode(&ChurnConfig { ops: 20, seed: 1, rho_t: 2 });
        let b = episode(&ChurnConfig { ops: 20, seed: 2, rho_t: 2 });
        assert_ne!(a, b);
    }
}
