//! Schedulable-ratio experiments (Figs. 1, 2, 3).
//!
//! A flow set is *schedulable* under an algorithm when every transmission
//! of every job meets its deadline; the schedulable ratio is the fraction
//! of randomly generated flow sets that are. The paper sweeps the number of
//! channels and the number of flows on both testbed topologies and both
//! traffic patterns.

use crate::parallel::parallel_map;
use crate::Algorithm;
use serde::{Deserialize, Serialize};
use wsan_core::NetworkModel;
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{ChannelId, Prr, Topology};

/// Workload parameters of a schedulability experiment.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Flow sets per configuration point (paper: 100).
    pub flow_sets: usize,
    /// Flows per set.
    pub flow_count: usize,
    /// Harmonic period range.
    pub periods: PeriodRange,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Base seed; set `i` uses a seed derived from `(seed, i)`.
    pub seed: u64,
    /// Communication-graph link threshold `PRR_t` (paper: 0.9).
    pub prr_threshold: f64,
}

impl WorkloadConfig {
    /// The paper's defaults: 100 flow sets, `PRR_t = 0.9`.
    pub fn new(flow_count: usize, periods: PeriodRange, pattern: TrafficPattern) -> Self {
        WorkloadConfig {
            flow_sets: 100,
            flow_count,
            periods,
            pattern,
            seed: 0xD1CE,
            prr_threshold: 0.9,
        }
    }
}

/// Schedulable ratio of each algorithm at one configuration point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioPoint {
    /// The swept parameter's value (#channels or #flows).
    pub x: usize,
    /// `(algorithm name, schedulable ratio)` pairs.
    pub ratios: Vec<(String, f64)>,
}

/// Evaluates the schedulable ratio of `algorithms` on `topology` using the
/// first `m` channels of the 2.4 GHz band.
///
/// Every algorithm sees the *same* sequence of generated flow sets, so
/// ratios are directly comparable. Flow sets that cannot even be generated
/// (no routes) count as unschedulable for everyone.
pub fn ratio_at(
    topology: &Topology,
    m: usize,
    algorithms: &[Algorithm],
    cfg: &WorkloadConfig,
) -> Vec<(Algorithm, f64)> {
    let channels = ChannelId::all().take(m);
    let comm = topology.comm_graph(&channels, Prr::new(cfg.prr_threshold).expect("valid PRR"));
    let model = NetworkModel::new(topology, &channels);
    let fsc = FlowSetConfig::new(cfg.flow_count, cfg.periods, cfg.pattern);
    let outcomes: Vec<Vec<bool>> = parallel_map(cfg.flow_sets, |i| {
        let mut generator = FlowSetGenerator::new(set_seed(cfg.seed, i));
        match generator.generate(&comm, &fsc) {
            Ok(set) => {
                algorithms.iter().map(|a| a.build().schedule(&set, &model).is_ok()).collect()
            }
            Err(_) => vec![false; algorithms.len()],
        }
    });
    algorithms
        .iter()
        .enumerate()
        .map(|(ai, algo)| {
            let ok = outcomes.iter().filter(|o| o[ai]).count();
            (*algo, ok as f64 / cfg.flow_sets.max(1) as f64)
        })
        .collect()
}

/// Sweeps the channel count (Figs. 1(a,b), 2(a,b), 3(a)).
pub fn sweep_channels(
    topology: &Topology,
    channel_counts: &[usize],
    algorithms: &[Algorithm],
    cfg: &WorkloadConfig,
) -> Vec<RatioPoint> {
    channel_counts
        .iter()
        .map(|&m| RatioPoint {
            x: m,
            ratios: ratio_at(topology, m, algorithms, cfg)
                .into_iter()
                .map(|(a, r)| (a.to_string(), r))
                .collect(),
        })
        .collect()
}

/// Sweeps the flow count at a fixed channel count (Figs. 1(c), 2(c), 3(b)).
pub fn sweep_flows(
    topology: &Topology,
    m: usize,
    flow_counts: &[usize],
    algorithms: &[Algorithm],
    cfg: &WorkloadConfig,
) -> Vec<RatioPoint> {
    flow_counts
        .iter()
        .map(|&n| {
            let point_cfg = WorkloadConfig { flow_count: n, ..*cfg };
            RatioPoint {
                x: n,
                ratios: ratio_at(topology, m, algorithms, &point_cfg)
                    .into_iter()
                    .map(|(a, r)| (a.to_string(), r))
                    .collect(),
            }
        })
        .collect()
}

/// Derives the deterministic seed of flow set `i`.
pub fn set_seed(base: u64, i: usize) -> u64 {
    base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::testbeds;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            flow_sets: 8,
            flow_count: 10,
            periods: PeriodRange::new(0, 2).unwrap(),
            pattern: TrafficPattern::PeerToPeer,
            seed: 1,
            prr_threshold: 0.9,
        }
    }

    #[test]
    fn ratios_are_valid_fractions_and_reuse_never_hurts() {
        let topo = testbeds::wustl(2);
        let ratios = ratio_at(&topo, 3, &Algorithm::paper_suite(), &small_cfg());
        let get = |name: &str| {
            ratios.iter().find(|(a, _)| a.to_string() == name).map(|(_, r)| *r).unwrap()
        };
        for (_, r) in &ratios {
            assert!((0.0..=1.0).contains(r));
        }
        // With identical flow sets, RA and RC can only do at least as well
        // as NR: reuse strictly enlarges the feasible placements.
        assert!(get("RA") >= get("NR"));
        assert!(get("RC") >= get("NR"));
    }

    #[test]
    fn sweep_channels_produces_one_point_per_m() {
        let topo = testbeds::wustl(2);
        let mut cfg = small_cfg();
        cfg.flow_sets = 4;
        let points = sweep_channels(&topo, &[3, 4], &[Algorithm::Nr], &cfg);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].x, 3);
        assert_eq!(points[1].x, 4);
        assert_eq!(points[0].ratios.len(), 1);
    }

    #[test]
    fn sweep_flows_overrides_flow_count() {
        let topo = testbeds::wustl(2);
        let mut cfg = small_cfg();
        cfg.flow_sets = 4;
        let points = sweep_flows(&topo, 4, &[5, 15], &[Algorithm::Rc { rho_t: 2 }], &cfg);
        assert_eq!(points.len(), 2);
        // more flows can only lower (or keep) the ratio
        let r5 = points[0].ratios[0].1;
        let r15 = points[1].ratios[0].1;
        assert!(r15 <= r5 + 1e-12);
    }

    #[test]
    fn determinism_across_calls() {
        let topo = testbeds::wustl(2);
        let cfg = small_cfg();
        let a = ratio_at(&topo, 4, &Algorithm::paper_suite(), &cfg);
        let b = ratio_at(&topo, 4, &Algorithm::paper_suite(), &cfg);
        assert_eq!(a, b);
    }
}
