//! The three algorithms under evaluation.

use serde::{Deserialize, Serialize};
use std::fmt;
use wsan_core::{
    NoReuse, ReuseAggressively, ReuseConservatively, ReuseTrigger, RhoReset, Scheduler,
};

/// One of the evaluated scheduling algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Standard WirelessHART: no channel reuse.
    Nr,
    /// Aggressive reuse at fixed hop distance `rho`.
    Ra {
        /// The fixed reuse hop distance (paper: 2).
        rho: u32,
    },
    /// Conservative reuse with floor `rho_t` (the paper's contribution).
    Rc {
        /// The minimum reuse hop distance (paper: 2).
        rho_t: u32,
    },
    /// RC with the pseudocode's per-flow `ρ` reset — ablation variant.
    RcPerFlow {
        /// The minimum reuse hop distance.
        rho_t: u32,
    },
    /// RC without the laxity heuristic (reuse only on certain deadline
    /// miss) — ablation variant quantifying what Eq. 1 buys.
    RcLite {
        /// The minimum reuse hop distance.
        rho_t: u32,
    },
}

impl Algorithm {
    /// The paper's comparison suite: NR, RA(ρ=2), RC(ρ_t=2).
    pub fn paper_suite() -> Vec<Algorithm> {
        vec![Algorithm::Nr, Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }]
    }

    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler + Send + Sync> {
        match *self {
            Algorithm::Nr => Box::new(NoReuse::new()),
            Algorithm::Ra { rho } => Box::new(ReuseAggressively::new(rho)),
            Algorithm::Rc { rho_t } => Box::new(ReuseConservatively::new(rho_t)),
            Algorithm::RcPerFlow { rho_t } => {
                Box::new(ReuseConservatively::new(rho_t).with_reset(RhoReset::PerFlow))
            }
            Algorithm::RcLite { rho_t } => Box::new(
                ReuseConservatively::new(rho_t).with_trigger(ReuseTrigger::DeadlineMissOnly),
            ),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::Nr => write!(f, "NR"),
            Algorithm::Ra { .. } => write!(f, "RA"),
            Algorithm::Rc { .. } => write!(f, "RC"),
            Algorithm::RcPerFlow { .. } => write!(f, "RC/flow"),
            Algorithm::RcLite { .. } => write!(f, "RC-lite"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_is_nr_ra_rc() {
        let names: Vec<String> = Algorithm::paper_suite().iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["NR", "RA", "RC"]);
    }

    #[test]
    fn build_produces_named_schedulers() {
        assert_eq!(Algorithm::Nr.build().name(), "NR");
        assert_eq!(Algorithm::Ra { rho: 2 }.build().name(), "RA");
        assert_eq!(Algorithm::Rc { rho_t: 2 }.build().name(), "RC");
        assert_eq!(Algorithm::RcPerFlow { rho_t: 2 }.build().name(), "RC");
    }
}
