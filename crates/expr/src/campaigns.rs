//! Named catalog of the paper's sweeps as campaign-engine point lists.
//!
//! Each entry decomposes one evaluation (Figs. 1–6, 8–11, fault sweep)
//! into independent [`PointSpec`]s whose seeds derive from the point — not
//! from the worker that runs it — and aggregates the streamed results back
//! into the same shapes the figure binaries print. The figure binaries and
//! the `wsan campaign` subcommand both route through here, so a sweep can
//! be sharded over cores, interrupted, and resumed identically everywhere.

use crate::campaign::{run, CampaignConfig, CampaignError, CampaignSummary, PointSpec};
use crate::schedulable::{ratio_at, RatioPoint, WorkloadConfig};
use crate::{detection, efficiency, exectime, recovery, reliability, table, Algorithm};
use serde::{Deserialize, Serialize};
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId, Prr, Topology};

/// Every campaign the catalog knows, in `run_named` dispatch order.
pub const NAMES: &[&str] = &[
    "smoke",
    "schedulable",
    "efficiency",
    "exectime",
    "reliability",
    "detection",
    "faults",
    "churn",
    "scale",
];

/// Scale knobs shared by every catalog campaign (mirrors the figure
/// binaries' `--sets/--seed/--quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Flow sets (or repetitions) per configuration point; `0` selects the
    /// campaign's paper-scale default.
    pub sets: usize,
    /// Base seed.
    pub seed: u64,
    /// Quick mode: shrink the heaviest dimensions (and cap `sets` at 10).
    pub quick: bool,
    /// Simulation core executing the simulator-backed campaigns
    /// (reliability, detection); schedulability-only campaigns and the
    /// recovery-supervised fault sweep ignore it.
    pub engine: wsan_sim::SimEngine,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { sets: 0, seed: 1, quick: false, engine: wsan_sim::SimEngine::default() }
    }
}

impl SweepOptions {
    /// Effective per-point set count given the campaign's default.
    fn sets_or(&self, default: usize) -> usize {
        let sets = if self.sets == 0 { default } else { self.sets };
        if self.quick {
            sets.min(10)
        } else {
            sets
        }
    }
}

/// Aggregate JSON plus the run's execution summary.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Pretty-printed aggregate, byte-identical for sequential, parallel,
    /// and resumed runs of the same campaign at the same seed.
    pub json: String,
    /// What the engine executed vs. replayed.
    pub summary: CampaignSummary,
}

/// Runs a catalog campaign by name and serializes its aggregate.
///
/// # Errors
///
/// [`CampaignError::UnknownCampaign`] for names outside [`NAMES`];
/// otherwise whatever the engine reports.
pub fn run_named(
    name: &str,
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<CampaignOutcome, CampaignError> {
    fn outcome<T: Serialize>(
        (value, summary): (T, CampaignSummary),
    ) -> Result<CampaignOutcome, CampaignError> {
        let json = table::to_json_pretty(&value)
            .map_err(|e| CampaignError::Aggregate { message: e.to_string() })?;
        Ok(CampaignOutcome { json, summary })
    }
    match name {
        "smoke" => outcome(smoke(opts, cfg)?),
        "schedulable" => outcome(schedulable(opts, cfg)?),
        "efficiency" => outcome(efficiency_rows(opts, cfg)?),
        "exectime" => outcome(exectime_points(opts, cfg)?),
        "reliability" => outcome(reliability_sets(opts, cfg)?),
        "detection" => outcome(detection_runs(opts, cfg)?),
        "faults" => outcome(faults(opts, cfg)?),
        "churn" => outcome(churn(opts, cfg)?),
        "scale" => outcome(scale(opts, cfg)?),
        other => Err(CampaignError::UnknownCampaign { name: other.to_string() }),
    }
}

/// Gateway flow-churn episodes: each point runs a seeded
/// admit/remove/re-rate/retire stream against an online RC gateway and
/// fails hard if any post-operation schedule differs from a fresh
/// recompute of the same flow set (see [`crate::churn`]).
pub fn churn(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<crate::churn::ChurnRecord>, CampaignSummary), CampaignError> {
    let sets = opts.sets_or(8);
    let ops = if opts.quick { 25 } else { 60 };
    let points: Vec<PointSpec<crate::churn::ChurnConfig>> = (0..sets)
        .map(|i| {
            let seed = opts.seed.wrapping_add(i as u64);
            PointSpec::new(format!("s{seed}"), crate::churn::ChurnConfig { ops, seed, rho_t: 2 })
        })
        .collect();
    let mut out = Vec::new();
    let summary = run(
        "churn",
        &points,
        cfg,
        |p| {
            let rec = crate::churn::episode(&p.input);
            if rec.oracle_mismatches > 0 {
                return Err(format!(
                    "{} delta/oracle mismatch(es) at seed {}",
                    rec.oracle_mismatches, rec.seed
                ));
            }
            Ok(rec)
        },
        |_, r| out.push(r),
    )?;
    Ok((out, summary))
}

/// A tiny three-point schedulability sweep on the small WUSTL topology —
/// seconds, not minutes — used by the golden-digest tests and the CI
/// interrupt/resume smoke.
pub fn smoke(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<RatioPoint>, CampaignSummary), CampaignError> {
    let topo = testbeds::wustl(2);
    let wl = WorkloadConfig {
        flow_sets: opts.sets_or(4),
        seed: opts.seed,
        ..WorkloadConfig::new(
            8,
            PeriodRange::new(0, 2).expect("constant range is valid"),
            TrafficPattern::PeerToPeer,
        )
    };
    let points: Vec<PointSpec<usize>> =
        [3usize, 4, 5].iter().map(|&m| PointSpec::new(format!("m{m}"), m)).collect();
    let mut out = Vec::new();
    let summary = run(
        "smoke",
        &points,
        cfg,
        |p| {
            Ok(RatioPoint {
                x: p.input,
                ratios: ratio_at(&topo, p.input, &Algorithm::paper_suite(), &wl)
                    .into_iter()
                    .map(|(a, r)| (a.to_string(), r))
                    .collect(),
            })
        },
        |_, r| out.push(r),
    )?;
    Ok((out, summary))
}

/// One series of schedulable-ratio points (one figure panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelSeries {
    /// Panel name (`fig1a` … `fig3b`).
    pub panel: String,
    /// Human-readable description of the panel's configuration.
    pub title: String,
    /// The swept axis's label (`#ch` or `#flows`).
    pub x_label: String,
    /// Ratio points in sweep order.
    pub points: Vec<RatioPoint>,
}

/// What one schedulable-ratio point evaluates: `m` channels on `topo` with
/// the point's workload; `x` is the panel's swept-axis value.
struct SchedInput<'a> {
    panel: &'static str,
    topo: &'a Topology,
    m: usize,
    x: usize,
    workload: WorkloadConfig,
}

/// How one figure panel sweeps: channel panels vary `m` at a fixed flow
/// count, flow panels vary the flow count at fixed `m`.
enum PanelSweep {
    Channels { flows: usize },
    Flows { m: usize, counts: &'static [usize] },
}

/// Figures 1–3: the eight schedulable-ratio panels as one campaign, one
/// point per (panel, x value).
pub fn schedulable(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<PanelSeries>, CampaignSummary), CampaignError> {
    let indriya = testbeds::indriya(1);
    let wustl = testbeds::wustl(1);
    let p_short = PeriodRange::new(0, 2).expect("constant range is valid");
    let p_wide = PeriodRange::new(-1, 3).expect("constant range is valid");
    let cen = TrafficPattern::Centralized;
    let p2p = TrafficPattern::PeerToPeer;
    let sets = opts.sets_or(100);
    let channel_counts: &[usize] = &[3, 4, 5, 6, 7, 8];

    type PanelDef<'a> = (&'static str, &'a Topology, TrafficPattern, PeriodRange, PanelSweep);
    let defs: Vec<PanelDef<'_>> = vec![
        ("fig1a", &indriya, cen, p_short, PanelSweep::Channels { flows: 60 }),
        ("fig1b", &indriya, cen, p_wide, PanelSweep::Channels { flows: 55 }),
        (
            "fig1c",
            &indriya,
            cen,
            p_short,
            PanelSweep::Flows { m: 4, counts: &[30, 40, 50, 60, 70, 80] },
        ),
        ("fig2a", &indriya, p2p, p_short, PanelSweep::Channels { flows: 90 }),
        ("fig2b", &indriya, p2p, p_wide, PanelSweep::Channels { flows: 100 }),
        (
            "fig2c",
            &indriya,
            p2p,
            p_short,
            PanelSweep::Flows { m: 4, counts: &[40, 60, 80, 100, 120, 140] },
        ),
        ("fig3a", &wustl, p2p, p_short, PanelSweep::Channels { flows: 130 }),
        (
            "fig3b",
            &wustl,
            p2p,
            p_short,
            PanelSweep::Flows { m: 4, counts: &[60, 90, 120, 150, 180] },
        ),
    ];

    let mut panels: Vec<PanelSeries> = Vec::new();
    let mut points: Vec<PointSpec<SchedInput<'_>>> = Vec::new();
    for (name, topo, pattern, periods, sweep) in &defs {
        let wl = |flows: usize| WorkloadConfig {
            flow_sets: sets,
            seed: opts.seed,
            ..WorkloadConfig::new(flows, *periods, *pattern)
        };
        let (title, x_label) = match sweep {
            PanelSweep::Channels { flows } => (
                format!(
                    "{name}: {flows} flows, {pattern:?}, P={periods}, topology {}",
                    topo.name()
                ),
                "#ch",
            ),
            PanelSweep::Flows { m, .. } => (
                format!("{name}: {m} channels, {pattern:?}, P={periods}, topology {}", topo.name()),
                "#flows",
            ),
        };
        panels.push(PanelSeries {
            panel: name.to_string(),
            title,
            x_label: x_label.to_string(),
            points: Vec::new(),
        });
        match sweep {
            PanelSweep::Channels { flows } => {
                for &m in channel_counts {
                    points.push(PointSpec::new(
                        format!("{name}/m{m}"),
                        SchedInput { panel: name, topo, m, x: m, workload: wl(*flows) },
                    ));
                }
            }
            PanelSweep::Flows { m, counts } => {
                for &n in *counts {
                    points.push(PointSpec::new(
                        format!("{name}/n{n}"),
                        SchedInput { panel: name, topo, m: *m, x: n, workload: wl(n) },
                    ));
                }
            }
        }
    }

    let summary = run(
        "schedulable",
        &points,
        cfg,
        |p| {
            Ok(RatioPoint {
                x: p.input.x,
                ratios: ratio_at(
                    p.input.topo,
                    p.input.m,
                    &Algorithm::paper_suite(),
                    &p.input.workload,
                )
                .into_iter()
                .map(|(a, r)| (a.to_string(), r))
                .collect(),
            })
        },
        |p, r| {
            if let Some(series) = panels.iter_mut().find(|s| s.panel == p.input.panel) {
                series.points.push(r);
            }
        },
    )?;
    Ok((panels, summary))
}

/// One (pattern, channel count, algorithm) efficiency row of Figs. 4–5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyRow {
    /// Traffic pattern of the workload.
    pub pattern: String,
    /// Channel count used.
    pub channels: usize,
    /// Algorithm measured.
    pub algorithm: String,
    /// Flow sets that were schedulable (and therefore counted).
    pub schedulable_sets: usize,
    /// Proportions for 1, 2, 3, 4+ transmissions per channel.
    pub tx_per_channel: Vec<f64>,
    /// Proportions for reuse hop counts 2, 3, 4+ (index 0 ↔ 2 hops).
    pub reuse_hops: Vec<f64>,
}

/// Figures 4–5: Tx/channel and reuse hop-count distributions, one point
/// per (pattern, channel count), flattened into rows.
pub fn efficiency_rows(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<EfficiencyRow>, CampaignSummary), CampaignError> {
    let topo = testbeds::indriya(1);
    let algos = [Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }];
    let sets = opts.sets_or(100);
    let mut points = Vec::new();
    for (pattern, flows) in [(TrafficPattern::Centralized, 16), (TrafficPattern::PeerToPeer, 60)] {
        for m in [3usize, 4, 5, 6, 7, 8] {
            points.push(PointSpec::new(format!("{pattern:?}/m{m}"), (pattern, flows, m)));
        }
    }
    let mut rows = Vec::new();
    let summary = run(
        "efficiency",
        &points,
        cfg,
        |p| {
            let (pattern, flows, m) = p.input;
            let wl = WorkloadConfig {
                flow_sets: sets,
                seed: opts.seed,
                ..WorkloadConfig::new(
                    flows,
                    PeriodRange::new(0, 2).expect("constant range is valid"),
                    pattern,
                )
            };
            Ok(efficiency::evaluate(&topo, m, &algos, &wl)
                .into_iter()
                .map(|result| {
                    let tx = result.metrics.tx_per_channel.proportions_with_tail(4);
                    let hop_hist = &result.metrics.reuse_hop_count;
                    let reuse_hops = if hop_hist.total() == 0 {
                        vec![0.0; 3]
                    } else {
                        let h = hop_hist.proportions_with_tail(4);
                        vec![h[2], h[3], h[4]]
                    };
                    EfficiencyRow {
                        pattern: format!("{pattern:?}"),
                        channels: m,
                        algorithm: result.algorithm.to_string(),
                        schedulable_sets: result.schedulable_sets,
                        tx_per_channel: tx[1..].to_vec(),
                        reuse_hops,
                    }
                })
                .collect::<Vec<_>>())
        },
        |_, r: Vec<EfficiencyRow>| rows.extend(r),
    )?;
    Ok((rows, summary))
}

/// Figure 6: scheduler execution time, one point per flow count.
pub fn exectime_points(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<exectime::TimingPoint>, CampaignSummary), CampaignError> {
    let topo = testbeds::indriya(1);
    let wl = WorkloadConfig {
        flow_sets: opts.sets_or(20),
        seed: opts.seed,
        ..WorkloadConfig::new(
            0,
            PeriodRange::new(0, 2).expect("constant range is valid"),
            TrafficPattern::PeerToPeer,
        )
    };
    let points: Vec<PointSpec<usize>> = [40usize, 60, 80, 100, 120, 140, 160]
        .iter()
        .map(|&n| PointSpec::new(format!("n{n}"), n))
        .collect();
    let mut out = Vec::new();
    let summary = run(
        "exectime",
        &points,
        cfg,
        |p| {
            exectime::measure(&topo, 5, &[p.input], &Algorithm::paper_suite(), &wl)
                .into_iter()
                .next()
                .ok_or_else(|| "no timing point produced".to_string())
        },
        |_, r| out.push(r),
    )?;
    Ok((out, summary))
}

/// Figures 8–9: network reliability, one point per flow set.
pub fn reliability_sets(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<reliability::FlowSetReliability>, CampaignSummary), CampaignError> {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).expect("2.4 GHz channels");
    let rel = reliability::ReliabilityConfig {
        flow_sets: opts.sets_or(5),
        flow_count: if opts.quick { 25 } else { 50 },
        repetitions: if opts.quick { 30 } else { 100 },
        seed: opts.seed,
        engine: opts.engine,
        ..reliability::ReliabilityConfig::default()
    };
    let points: Vec<PointSpec<usize>> =
        (0..rel.flow_sets).map(|i| PointSpec::new(format!("set{i}"), i)).collect();
    let mut out = Vec::new();
    let summary = run(
        "reliability",
        &points,
        cfg,
        |p| reliability::evaluate_set(&topo, &channels, &Algorithm::paper_suite(), &rel, p.input),
        |_, r| out.push(r),
    )?;
    Ok((out, summary))
}

/// Figures 10–11: reuse-degradation detection, one point per algorithm.
pub fn detection_runs(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<detection::DetectionRun>, CampaignSummary), CampaignError> {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).expect("2.4 GHz channels");
    let det = detection::DetectionConfig {
        epochs: if opts.quick { 2 } else { 6 },
        window_reps: if opts.quick { 5 } else { 10 },
        flow_count: if opts.quick { 60 } else { 110 },
        seed: opts.seed,
        engine: opts.engine,
        ..detection::DetectionConfig::default()
    };
    let algos = [Algorithm::Ra { rho: 2 }, Algorithm::Rc { rho_t: 2 }];
    let points: Vec<PointSpec<Algorithm>> =
        algos.iter().map(|&a| PointSpec::new(a.to_string(), a)).collect();
    let mut out = Vec::new();
    let summary = run(
        "detection",
        &points,
        cfg,
        |p| detection::evaluate_algo(&topo, &channels, p.input, &det),
        |_, r| out.extend(r),
    )?;
    Ok((out, summary))
}

/// What one fault-sweep point computed: the fault-free baseline for a
/// `…/baseline` point, one intensity outcome otherwise. `skipped` carries
/// the scheduler's error when the algorithm cannot schedule the workload
/// at all (matching the figure binary, which skips such algorithms instead
/// of failing the whole sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPointOutcome {
    /// Why the point was skipped, if it was.
    pub skipped: Option<String>,
    /// Fault-free network PDR (baseline points only).
    pub baseline_pdr: Option<f64>,
    /// The intensity outcome (intensity points only).
    pub point: Option<recovery::CampaignPoint>,
}

/// What one fault-sweep point evaluates.
enum FaultKind {
    Baseline,
    Intensity(usize),
}

/// The fault-intensity sweep, one point per (algorithm, intensity) plus a
/// baseline point per algorithm.
pub fn faults(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<recovery::CampaignResult>, CampaignSummary), CampaignError> {
    let topo = testbeds::wustl(1);
    let channels = ChannelId::range(11, 14).expect("2.4 GHz channels");
    let comm = topo.comm_graph(&channels, Prr::new(0.9).expect("0.9 is a valid PRR"));
    let flow_count = if opts.quick { 30 } else { 60 };
    let fsc = FlowSetConfig::new(
        flow_count,
        PeriodRange::new(0, 0).expect("constant range is valid"),
        TrafficPattern::PeerToPeer,
    );
    let set = FlowSetGenerator::new(opts.seed)
        .generate(&comm, &fsc)
        .map_err(|e| CampaignError::Aggregate { message: format!("workload generation: {e}") })?;
    let sup = recovery::SupervisorConfig {
        seed: opts.seed,
        epochs: if opts.quick { 3 } else { 6 },
        samples_per_epoch: if opts.quick { 6 } else { 12 },
        window_reps: if opts.quick { 3 } else { 5 },
        ..recovery::SupervisorConfig::default()
    };
    let intensities: &[usize] = if opts.quick { &[0, 1, 2, 4] } else { &[0, 1, 2, 4, 8, 12] };

    let mut points: Vec<PointSpec<(Algorithm, FaultKind)>> = Vec::new();
    for algo in [Algorithm::Nr, Algorithm::Rc { rho_t: 2 }] {
        points.push(PointSpec::new(format!("{algo}/baseline"), (algo, FaultKind::Baseline)));
        for &k in intensities {
            points.push(PointSpec::new(format!("{algo}/k{k}"), (algo, FaultKind::Intensity(k))));
        }
    }
    let mut results: Vec<recovery::CampaignResult> = Vec::new();
    let summary = run(
        "faults",
        &points,
        cfg,
        |p| {
            let (algo, kind) = &p.input;
            let computed = match kind {
                FaultKind::Baseline => {
                    recovery::baseline_pdr(&topo, &channels, &set, *algo, &sup).map(|pdr| {
                        FaultPointOutcome { skipped: None, baseline_pdr: Some(pdr), point: None }
                    })
                }
                FaultKind::Intensity(k) => recovery::intensity_point(
                    &topo, &channels, &set, *algo, &sup, *k,
                )
                .map(|point| FaultPointOutcome {
                    skipped: None,
                    baseline_pdr: None,
                    point: Some(point),
                }),
            };
            // an unschedulable workload skips the algorithm, as the figure
            // binary does; other failures cancel the campaign
            match computed {
                Ok(outcome) => Ok(outcome),
                Err(recovery::RecoveryError::Schedule(e)) => Ok(FaultPointOutcome {
                    skipped: Some(e.to_string()),
                    baseline_pdr: None,
                    point: None,
                }),
                Err(e) => Err(e.to_string()),
            }
        },
        |p, r: FaultPointOutcome| {
            let (algo, _) = &p.input;
            if let Some(pdr) = r.baseline_pdr {
                results.push(recovery::CampaignResult {
                    algorithm: algo.to_string(),
                    flows: set.len(),
                    seed: sup.seed,
                    baseline_pdr: pdr,
                    points: Vec::new(),
                });
            } else if let Some(point) = r.point {
                if let Some(result) =
                    results.iter_mut().rev().find(|c| c.algorithm == algo.to_string())
                {
                    result.points.push(point);
                }
            }
        },
    )?;
    Ok((results, summary))
}

/// One city-scale sharded scheduling measurement: a generated plant of
/// `nodes` nodes partitioned into `shards` gateways.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleRecord {
    /// Target plant size the generator was asked for.
    pub target_nodes: usize,
    /// Shards the plant was partitioned into.
    pub shards: usize,
    /// Algorithm used inside every shard.
    pub algorithm: String,
    /// Whether every shard admitted its full flow set. `false` is a data
    /// point, not a failure: at 5k/10k nodes the no-reuse baseline runs
    /// out of slots where the reuse algorithms still fit, and that gap is
    /// exactly the sweep's schedulability series.
    pub schedulable: bool,
    /// The sharded run's shape and timings; `None` when unschedulable.
    pub report: Option<crate::sharding::ShardedReport>,
}

/// City-scale sweep: plant size × shard count, each point generating a
/// plant, scheduling it shard-parallel-free (shards are scheduled
/// sequentially inside the point — the campaign pool already parallelizes
/// across points), stitching, and validating the whole network. The
/// stitched-schedule digest in each record pins determinism across runs
/// and job counts.
pub fn scale(
    opts: &SweepOptions,
    cfg: &CampaignConfig,
) -> Result<(Vec<ScaleRecord>, CampaignSummary), CampaignError> {
    let node_targets: &[usize] = if opts.quick { &[120, 240] } else { &[300, 600, 1200] };
    let shard_counts: &[usize] = if opts.quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut points = Vec::new();
    for &nodes in node_targets {
        for &shards in shard_counts {
            points.push(PointSpec::new(
                format!("n{nodes}/k{shards}"),
                (nodes, shards, Algorithm::Rc { rho_t: 2 }),
            ));
        }
    }
    // The 10k-node reach: the paper stops at testbed scale; these points
    // carry its RC/RA/NR comparison to plant sizes only the capped-distance
    // graph core can hold. Shards fixed at 8 — the node-count axis is the
    // question here, the shard axis is swept above.
    if !opts.quick {
        for nodes in [5_000usize, 10_000] {
            for algo in Algorithm::paper_suite() {
                points.push(PointSpec::new(format!("n{nodes}/k8/{algo}"), (nodes, 8, algo)));
            }
        }
    }
    let mut out = Vec::new();
    let summary = run(
        "scale",
        &points,
        cfg,
        |p| {
            let (nodes, shards, algo) = p.input;
            let plant_cfg = wsan_net::plants::PlantConfig::city(format!("city-{nodes}"), nodes);
            let plant = wsan_net::plants::generate(&plant_cfg, opts.seed);
            let shard_cfg = wsan_core::shard::ShardConfig {
                flows_per_shard: if opts.quick { 3 } else { 6 },
                ..wsan_core::shard::ShardConfig::new(shards, opts.seed, 0)
            };
            let channels = ChannelId::all();
            match crate::sharding::schedule_sharded(&plant, &channels, &shard_cfg, &algo, 1) {
                Ok(outcome) => Ok(ScaleRecord {
                    target_nodes: nodes,
                    shards,
                    algorithm: algo.to_string(),
                    schedulable: true,
                    report: Some(outcome.report),
                }),
                // An admission failure is the schedulability result itself,
                // not a campaign error — record it so a sweep that includes
                // the no-reuse baseline still completes.
                Err(crate::sharding::ShardedError::Shard(
                    wsan_core::shard::ShardError::Schedule { .. },
                )) => Ok(ScaleRecord {
                    target_nodes: nodes,
                    shards,
                    algorithm: algo.to_string(),
                    schedulable: false,
                    report: None,
                }),
                Err(e) => Err(e.to_string()),
            }
        },
        |_, r| out.push(r),
    )?;
    Ok((out, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_runs_and_matches_sequentially() {
        let opts = SweepOptions { sets: 2, seed: 7, ..SweepOptions::default() };
        let (seq, s1) = smoke(&opts, &CampaignConfig { jobs: 1, ..Default::default() }).unwrap();
        let (par, s2) = smoke(&opts, &CampaignConfig { jobs: 3, ..Default::default() }).unwrap();
        assert_eq!(seq, par);
        assert_eq!(s1.total, 3);
        assert_eq!(s2.executed, 3);
        for point in &seq {
            assert_eq!(point.ratios.len(), 3);
        }
    }

    #[test]
    fn unknown_campaign_is_a_typed_error() {
        let err =
            run_named("nope", &SweepOptions::default(), &CampaignConfig::default()).unwrap_err();
        assert!(matches!(err, CampaignError::UnknownCampaign { .. }));
    }
}
