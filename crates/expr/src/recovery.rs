//! Closed-loop fault recovery: simulate under injected faults, classify per
//! §VI, repair with bounded retries and exponential backoff, and degrade
//! gracefully when repair cannot restore feasibility.
//!
//! Each *epoch* plays one health-report period: the current schedule runs on
//! the faulted PHY, every reuse-involved link is classified with the
//! [`DetectionPolicy`], and links whose contention-free PRR collapsed below
//! [`SupervisorConfig::dead_prr`] are declared dead (a crashed endpoint or a
//! jammed link — no schedule change can serve them). On degradation the
//! supervisor calls [`wsan_core::recovery::recover`]; between attempts it
//! backs off exponentially (in epochs), and after
//! [`SupervisorConfig::max_attempts`] failed repairs it escalates the
//! stubborn links to dead, shedding the flows that cross them. Sacrificed
//! flows and residual PDR are reported per epoch.

use crate::schedulable::set_seed;
use crate::Algorithm;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use wsan_core::recovery::{recover, RecoveryPolicy};
use wsan_core::{NetworkModel, Schedule, ScheduleError};
use wsan_detect::{DetectionPolicy, LinkVerdict};
use wsan_flow::FlowSet;
use wsan_net::{ChannelSet, DirectedLink, Topology};
use wsan_sim::{
    CaptureModel, FaultPlan, LinkCondition, SimConfig, SimError, Simulator, WifiInterferer,
};

/// Why the supervisor could not run at all. Degradation is *not* an error —
/// it is handled by repair and shedding; these are structural failures of
/// the inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// The initial workload was unschedulable, or schedule and flow set
    /// went inconsistent.
    Schedule(ScheduleError),
    /// The simulator rejected its inputs (bad fault plan, mismatched
    /// channel set, …).
    Sim(SimError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Schedule(e) => write!(f, "scheduling failed: {e}"),
            RecoveryError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<ScheduleError> for RecoveryError {
    fn from(e: ScheduleError) -> Self {
        RecoveryError::Schedule(e)
    }
}

impl From<SimError> for RecoveryError {
    fn from(e: SimError) -> Self {
        RecoveryError::Sim(e)
    }
}

/// Parameters of the recovery supervisor.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Base seed (epoch seeds derive from it).
    pub seed: u64,
    /// Health-report epochs to supervise.
    pub epochs: u32,
    /// PRR samples per link per condition per epoch.
    pub samples_per_epoch: u32,
    /// Schedule repetitions aggregated into one PRR sample.
    pub window_reps: u32,
    /// Capture model of the PHY.
    pub capture: CaptureModel,
    /// The §VI detection policy classifying reuse-involved links.
    pub policy: DetectionPolicy,
    /// Repair / shed policy handed to [`wsan_core::recovery::recover`].
    pub recovery: RecoveryPolicy,
    /// Repair attempts before stubbornly degraded links are escalated to
    /// dead (their flows shed).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, in epochs; doubles with
    /// every further attempt.
    pub backoff_epochs: u32,
    /// A scheduled link whose contention-free PRR falls below this is
    /// considered dead: no reassignment can revive it.
    pub dead_prr: f64,
    /// Baseline environment interferers (present every epoch).
    pub interferers: Vec<WifiInterferer>,
    /// The faults injected into epoch 0; later epochs see
    /// [`FaultPlan::settled`].
    pub faults: FaultPlan,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            seed: 0xFA11,
            epochs: 6,
            samples_per_epoch: 12,
            window_reps: 5,
            capture: CaptureModel::default(),
            policy: DetectionPolicy::default(),
            recovery: RecoveryPolicy::default(),
            max_attempts: 3,
            backoff_epochs: 1,
            dead_prr: 0.05,
            interferers: Vec::new(),
            faults: FaultPlan::default(),
        }
    }
}

/// What the supervisor did in one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EpochAction {
    /// No degraded or dead links were observed.
    Healthy,
    /// Degradation persists but a previous attempt's backoff window is
    /// still open — wait before re-attempting.
    Backoff {
        /// Epochs left in the window after this one.
        remaining: u32,
    },
    /// Recovery ran: repair, reschedule, and possibly shed flows.
    Recovered {
        /// Transmissions moved by the repair pass.
        moved_transmissions: usize,
        /// Scheduler invocations (0 = in-place repair sufficed).
        reschedules: u32,
        /// Flows sacrificed this epoch, by their index in the *original*
        /// flow set.
        shed: Vec<usize>,
    },
}

/// One epoch of the supervised run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch number.
    pub epoch: u32,
    /// Links the policy classified as reuse-degraded.
    pub reuse_degraded: usize,
    /// Scheduled links whose contention-free PRR collapsed below the dead
    /// threshold.
    pub dead_links: usize,
    /// Fault events that fired during the epoch.
    pub faults_fired: usize,
    /// Network PDR over the surviving flows this epoch.
    pub network_pdr: f64,
    /// Flows still being served at the end of the epoch.
    pub surviving_flows: usize,
    /// What the supervisor did.
    pub action: EpochAction,
}

/// Serializable summary of a supervised run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoverySummary {
    /// Algorithm that built (and rebuilds) the schedule.
    pub algorithm: String,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// All sacrificed flows, by original index, in shedding order.
    pub shed_flows: Vec<usize>,
    /// Network PDR over the surviving flows in the final epoch.
    pub residual_pdr: f64,
    /// Whether the final epoch observed no degradation at all.
    pub converged: bool,
}

/// Full outcome of a supervised run: the summary plus the live final state
/// (not serialized — the schedule and flow set are for callers that keep
/// operating the network or want to re-validate).
#[derive(Debug, Clone)]
pub struct SupervisorOutcome {
    /// The serializable run summary.
    pub summary: RecoverySummary,
    /// The final schedule (validated by recovery whenever it changed).
    pub schedule: Schedule,
    /// The final surviving flow set (ids re-tagged dense).
    pub flows: FlowSet,
    /// Original flow index of each surviving flow, by its dense id.
    pub survivors: Vec<usize>,
    /// Final-epoch PDR of each surviving flow, by its dense id.
    pub final_flow_pdr: Vec<f64>,
}

/// Instrument handles for the supervisor's closed loop, built once per
/// supervised run and only when global metrics are on.
struct RecoveryMetrics {
    healthy: wsan_obs::Counter,
    backoff: wsan_obs::Counter,
    recovered: wsan_obs::Counter,
    shed_flows: wsan_obs::Counter,
    moved_transmissions: wsan_obs::Counter,
    reschedules: wsan_obs::Counter,
}

impl RecoveryMetrics {
    fn new() -> Self {
        let reg = wsan_obs::global_metrics();
        RecoveryMetrics {
            healthy: reg.counter("recovery.epochs.healthy"),
            backoff: reg.counter("recovery.epochs.backoff"),
            recovered: reg.counter("recovery.epochs.recovered"),
            shed_flows: reg.counter("recovery.shed_flows"),
            moved_transmissions: reg.counter("recovery.moved_transmissions"),
            reschedules: reg.counter("recovery.reschedules"),
        }
    }
}

/// Records one finished epoch into metrics and the event stream.
fn note_epoch(metrics: Option<&RecoveryMetrics>, rec: &EpochRecord) {
    if let Some(m) = metrics {
        match &rec.action {
            EpochAction::Healthy => m.healthy.inc(),
            EpochAction::Backoff { .. } => m.backoff.inc(),
            EpochAction::Recovered { moved_transmissions, reschedules, shed } => {
                m.recovered.inc();
                m.moved_transmissions.add(*moved_transmissions as u64);
                m.reschedules.add(u64::from(*reschedules));
                m.shed_flows.add(shed.len() as u64);
            }
        }
    }
    if wsan_obs::enabled(wsan_obs::Level::Info) {
        let action = match &rec.action {
            EpochAction::Healthy => "healthy",
            EpochAction::Backoff { .. } => "backoff",
            EpochAction::Recovered { .. } => "recovered",
        };
        wsan_obs::event(
            wsan_obs::Level::Info,
            "wsan_expr::recovery",
            "epoch classified",
            &[
                wsan_obs::kv("epoch", rec.epoch),
                wsan_obs::kv("action", action),
                wsan_obs::kv("reuse_degraded", rec.reuse_degraded),
                wsan_obs::kv("dead_links", rec.dead_links),
                wsan_obs::kv("faults_fired", rec.faults_fired),
                wsan_obs::kv("network_pdr", rec.network_pdr),
                wsan_obs::kv("surviving_flows", rec.surviving_flows),
            ],
        );
    }
}

/// Runs the closed loop: simulate → classify → repair/reschedule/shed →
/// re-validate, epoch by epoch.
///
/// # Errors
///
/// Returns [`RecoveryError`] when the *initial* workload cannot be
/// scheduled at all or the simulator rejects its inputs. Fault-induced
/// infeasibility is not an error — it surfaces as shed flows in the
/// summary.
pub fn supervise(
    topology: &Topology,
    channels: &ChannelSet,
    flows: &FlowSet,
    algorithm: Algorithm,
    cfg: &SupervisorConfig,
) -> Result<SupervisorOutcome, RecoveryError> {
    let metrics = wsan_obs::metrics_enabled().then(RecoveryMetrics::new);
    let _span = wsan_obs::span(
        wsan_obs::Level::Info,
        "recovery.supervise",
        if wsan_obs::enabled(wsan_obs::Level::Info) {
            vec![
                wsan_obs::kv("algorithm", wsan_obs::FieldValue::display(algorithm)),
                wsan_obs::kv("flows", flows.len()),
                wsan_obs::kv("epochs", cfg.epochs),
            ]
        } else {
            Vec::new()
        },
    );
    let model = NetworkModel::new(topology, channels);
    let scheduler = algorithm.build();
    let mut schedule = scheduler.schedule(flows, &model)?;
    let mut current = flows.clone();
    // original flow index of each currently-served flow, by dense id
    let mut survivors: Vec<usize> = (0..flows.len()).collect();
    let mut shed_total: Vec<usize> = Vec::new();
    let mut attempts = 0u32;
    let mut backoff_left = 0u32;
    let mut epochs = Vec::new();
    let mut residual_pdr = 0.0;
    let mut final_flow_pdr: Vec<f64> = Vec::new();
    let reps = cfg.samples_per_epoch * cfg.window_reps;

    for epoch in 0..cfg.epochs {
        if current.is_empty() {
            // everything shed: nothing to measure or recover
            residual_pdr = 0.0;
            final_flow_pdr.clear();
            let rec = EpochRecord {
                epoch,
                reuse_degraded: 0,
                dead_links: 0,
                faults_fired: 0,
                network_pdr: 0.0,
                surviving_flows: 0,
                action: EpochAction::Healthy,
            };
            note_epoch(metrics.as_ref(), &rec);
            epochs.push(rec);
            continue;
        }
        let plan = if epoch == 0 { cfg.faults.clone() } else { cfg.faults.settled() };
        let sim = Simulator::try_new(topology, channels, &current, &schedule)?;
        let (report, fault_log) = sim.try_run_faulted(&SimConfig {
            seed: set_seed(cfg.seed, epoch as usize),
            repetitions: reps,
            window_reps: cfg.window_reps,
            capture: cfg.capture,
            interferers: cfg.interferers.clone(),
            discovery_probes: 1,
            faults: plan,
        })?;
        residual_pdr = report.network_pdr();
        final_flow_pdr = report.flow_pdrs();

        let mut degraded: Vec<DirectedLink> = Vec::new();
        for link in report.links_with_reuse() {
            let reuse = report.prr_distribution(link, LinkCondition::Reuse);
            let cf = report.prr_distribution(link, LinkCondition::ContentionFree);
            if cfg.policy.classify(&reuse, &cf) == LinkVerdict::ReuseDegraded {
                degraded.push(link);
            }
        }
        let scheduled_links: BTreeSet<DirectedLink> =
            schedule.entries().iter().map(|e| e.tx.link).collect();
        let mut dead: Vec<DirectedLink> = scheduled_links
            .iter()
            .copied()
            .filter(|l| {
                report
                    .overall_prr(*l, LinkCondition::ContentionFree)
                    .is_some_and(|p| p < cfg.dead_prr)
            })
            .collect();
        let reuse_degraded = degraded.len();
        let dead_links = dead.len();

        if degraded.is_empty() && dead.is_empty() {
            attempts = 0;
            backoff_left = 0;
            let rec = EpochRecord {
                epoch,
                reuse_degraded,
                dead_links,
                faults_fired: fault_log.fired(),
                network_pdr: residual_pdr,
                surviving_flows: current.len(),
                action: EpochAction::Healthy,
            };
            note_epoch(metrics.as_ref(), &rec);
            epochs.push(rec);
            continue;
        }
        if backoff_left > 0 {
            backoff_left -= 1;
            let rec = EpochRecord {
                epoch,
                reuse_degraded,
                dead_links,
                faults_fired: fault_log.fired(),
                network_pdr: residual_pdr,
                surviving_flows: current.len(),
                action: EpochAction::Backoff { remaining: backoff_left },
            };
            note_epoch(metrics.as_ref(), &rec);
            epochs.push(rec);
            continue;
        }
        attempts += 1;
        if attempts > cfg.max_attempts {
            // repair keeps failing on these links: stop trying to save
            // them and shed the flows that depend on them instead
            dead.append(&mut degraded);
        }
        let out = recover(
            &schedule,
            &model,
            &current,
            scheduler.as_ref(),
            &cfg.recovery,
            &degraded,
            &dead,
        )?;
        let shed_this: Vec<usize> = out.shed.iter().map(|id| survivors[id.index()]).collect();
        survivors = out.survivors.iter().map(|id| survivors[id.index()]).collect();
        shed_total.extend(shed_this.iter().copied());
        schedule = out.schedule;
        current = out.flows;
        backoff_left = cfg.backoff_epochs.saturating_mul(1u32 << (attempts - 1).min(16));
        let rec = EpochRecord {
            epoch,
            reuse_degraded,
            dead_links,
            faults_fired: fault_log.fired(),
            network_pdr: residual_pdr,
            surviving_flows: current.len(),
            action: EpochAction::Recovered {
                moved_transmissions: out.repair.moved_transmissions,
                reschedules: out.reschedules,
                shed: shed_this,
            },
        };
        note_epoch(metrics.as_ref(), &rec);
        epochs.push(rec);
    }

    let converged =
        matches!(epochs.last(), None | Some(EpochRecord { action: EpochAction::Healthy, .. }));
    Ok(SupervisorOutcome {
        summary: RecoverySummary {
            algorithm: algorithm.to_string(),
            epochs,
            shed_flows: shed_total,
            residual_pdr,
            converged,
        },
        schedule,
        flows: current,
        survivors,
        final_flow_pdr,
    })
}

/// One point of a fault-intensity sweep: `collapsed_links` of the busiest
/// scheduled links collapse to PRR 0 mid-epoch, and the supervisor recovers
/// what it can.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignPoint {
    /// Links collapsed by the fault plan.
    pub collapsed_links: usize,
    /// Flows sacrificed across the run.
    pub shed_flows: usize,
    /// Flows still served at the end.
    pub surviving_flows: usize,
    /// Network PDR over the surviving flows in the final epoch.
    pub residual_pdr: f64,
    /// Whether the final epoch observed no degradation.
    pub converged: bool,
    /// Total fault events that fired in the onset epoch.
    pub faults_fired: usize,
}

/// A full fault-intensity sweep for one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Algorithm that built and rebuilt the schedules.
    pub algorithm: String,
    /// Flows in the (pre-fault) workload.
    pub flows: usize,
    /// Base seed of the sweep.
    pub seed: u64,
    /// Fault-free network PDR of the same workload (the recovery target).
    pub baseline_pdr: f64,
    /// One point per swept intensity.
    pub points: Vec<CampaignPoint>,
}

/// Scheduled links ordered busiest first: collapsing them hurts the most
/// flows.
fn busiest_links(schedule: &Schedule) -> Vec<(DirectedLink, usize)> {
    let mut load: std::collections::BTreeMap<DirectedLink, usize> =
        std::collections::BTreeMap::new();
    for entry in schedule.entries() {
        *load.entry(entry.tx.link).or_default() += 1;
    }
    let mut by_load: Vec<(DirectedLink, usize)> = load.into_iter().collect();
    by_load.sort_by_key(|&(link, count)| (std::cmp::Reverse(count), link));
    by_load
}

/// Fault-free reference PDR of the workload under `algorithm` — the value
/// recovery aims back to.
///
/// # Errors
///
/// See [`supervise`].
pub fn baseline_pdr(
    topology: &Topology,
    channels: &ChannelSet,
    flows: &FlowSet,
    algorithm: Algorithm,
    cfg: &SupervisorConfig,
) -> Result<f64, RecoveryError> {
    let model = NetworkModel::new(topology, channels);
    let schedule = algorithm.build().schedule(flows, &model)?;
    let reps = cfg.samples_per_epoch * cfg.window_reps;
    let sim = Simulator::try_new(topology, channels, flows, &schedule)?;
    let baseline = sim.try_run(&SimConfig {
        seed: set_seed(cfg.seed, 0),
        repetitions: reps,
        window_reps: cfg.window_reps,
        capture: cfg.capture,
        interferers: cfg.interferers.clone(),
        discovery_probes: 1,
        ..SimConfig::default()
    })?;
    Ok(baseline.network_pdr())
}

/// One intensity of the fault sweep, computable independently of the other
/// intensities (the campaign engine's unit of work): the `k` busiest
/// scheduled links collapse to PRR 0 halfway through epoch 0, and
/// [`supervise`] runs the closed loop. The schedule is rebuilt
/// deterministically from the same inputs, so the point equals what a full
/// [`campaign`] run would produce at that intensity.
///
/// # Errors
///
/// See [`supervise`].
pub fn intensity_point(
    topology: &Topology,
    channels: &ChannelSet,
    flows: &FlowSet,
    algorithm: Algorithm,
    cfg: &SupervisorConfig,
    k: usize,
) -> Result<CampaignPoint, RecoveryError> {
    let model = NetworkModel::new(topology, channels);
    let schedule = algorithm.build().schedule(flows, &model)?;
    let reps = cfg.samples_per_epoch * cfg.window_reps;
    let by_load = busiest_links(&schedule);
    let onset = u64::from(schedule.horizon()) * u64::from(reps / 2);
    let mut plan = FaultPlan::new(cfg.faults.seed ^ k as u64);
    for &(link, _) in by_load.iter().take(k) {
        plan = plan.collapse_link_at(onset, link, 0.0);
    }
    let out = supervise(
        topology,
        channels,
        flows,
        algorithm,
        &SupervisorConfig { faults: plan, ..cfg.clone() },
    )?;
    Ok(CampaignPoint {
        collapsed_links: k.min(by_load.len()),
        shed_flows: out.summary.shed_flows.len(),
        surviving_flows: out.flows.len(),
        residual_pdr: out.summary.residual_pdr,
        converged: out.summary.converged,
        faults_fired: out.summary.epochs.first().map_or(0, |e| e.faults_fired),
    })
}

/// Sweeps fault intensity vs. recovered PDR: for each entry of
/// `intensities`, the that-many busiest scheduled links collapse to PRR 0
/// halfway through epoch 0, and [`supervise`] runs the closed loop.
///
/// # Errors
///
/// See [`supervise`]; the sweep aborts on the first structural failure.
pub fn campaign(
    topology: &Topology,
    channels: &ChannelSet,
    flows: &FlowSet,
    algorithm: Algorithm,
    cfg: &SupervisorConfig,
    intensities: &[usize],
) -> Result<CampaignResult, RecoveryError> {
    let baseline = baseline_pdr(topology, channels, flows, algorithm, cfg)?;
    let points = intensities
        .iter()
        .map(|&k| intensity_point(topology, channels, flows, algorithm, cfg, k))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignResult {
        algorithm: algorithm.to_string(),
        flows: flows.len(),
        seed: cfg.seed,
        baseline_pdr: baseline,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
    use wsan_net::{testbeds, ChannelId, Prr};

    fn workload() -> (Topology, ChannelSet, FlowSet) {
        let topo = testbeds::wustl(5);
        let channels = ChannelId::range(11, 14).unwrap();
        let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
        let fsc =
            FlowSetConfig::new(12, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
        let flows = FlowSetGenerator::new(0xFEED).generate(&comm, &fsc).unwrap();
        (topo, channels, flows)
    }

    fn small_cfg() -> SupervisorConfig {
        SupervisorConfig {
            epochs: 3,
            samples_per_epoch: 6,
            window_reps: 4,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn faultless_supervision_stays_healthy() {
        let (topo, channels, flows) = workload();
        let out =
            supervise(&topo, &channels, &flows, Algorithm::Rc { rho_t: 2 }, &small_cfg()).unwrap();
        assert!(out.summary.shed_flows.is_empty());
        assert!(out.summary.converged);
        assert_eq!(out.flows.len(), flows.len());
        assert_eq!(out.survivors, (0..flows.len()).collect::<Vec<_>>());
    }

    #[test]
    fn dead_link_sheds_its_flows_and_revalidates() {
        let (topo, channels, flows) = workload();
        let model = NetworkModel::new(&topo, &channels);
        let algo = Algorithm::Rc { rho_t: 2 };
        // the supervisor will build this exact schedule (same inputs)
        let schedule = algo.build().schedule(&flows, &model).unwrap();
        let victim = schedule.entries()[0].tx.link;
        let cfg = SupervisorConfig {
            faults: FaultPlan::new(11).collapse_link_at(0, victim, 0.0),
            ..small_cfg()
        };
        let out = supervise(&topo, &channels, &flows, algo, &cfg).unwrap();
        // every flow crossing the dead link was sacrificed, and only those
        let doomed: Vec<usize> =
            flows.iter().filter(|f| f.links().contains(&victim)).map(|f| f.id().index()).collect();
        assert!(!doomed.is_empty());
        for f in &doomed {
            assert!(out.summary.shed_flows.contains(f), "flow {f} crosses the dead link");
        }
        for s in &out.survivors {
            assert!(!doomed.contains(s));
        }
        // the surviving schedule is still independently valid
        wsan_core::validate::check(&out.schedule, &out.flows, &model, Some(2)).unwrap();
        assert!(out.schedule.entries().iter().all(|e| e.tx.link != victim));
    }

    #[test]
    fn campaign_zero_intensity_matches_baseline_shape() {
        let (topo, channels, flows) = workload();
        let cfg = SupervisorConfig { epochs: 2, ..small_cfg() };
        let result =
            campaign(&topo, &channels, &flows, Algorithm::Rc { rho_t: 2 }, &cfg, &[0, 1]).unwrap();
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[0].collapsed_links, 0);
        assert_eq!(result.points[0].shed_flows, 0, "no faults, nothing shed");
        assert!(result.baseline_pdr > 0.0);
        // collapsing the busiest link cannot *increase* the survivor count
        assert!(result.points[1].surviving_flows <= result.points[0].surviving_flows);
    }

    #[test]
    fn unschedulable_workload_is_a_structured_error() {
        let (topo, channels, _) = workload();
        let comm = topo.comm_graph(&channels, Prr::new(0.9).unwrap());
        let fsc =
            FlowSetConfig::new(600, PeriodRange::new(0, 0).unwrap(), TrafficPattern::PeerToPeer);
        let heavy = FlowSetGenerator::new(1).generate(&comm, &fsc).unwrap();
        let err = supervise(&topo, &channels, &heavy, Algorithm::Nr, &small_cfg());
        assert!(matches!(err, Err(RecoveryError::Schedule(_))));
    }
}
