//! Tiny data-parallel helper over std scoped threads.
//!
//! The implementation lives in [`wsan_net::parallel`] so the graph layer's
//! multi-source BFS builders can use the same pool without a dependency
//! cycle; this module re-exports it for the schedulability sweeps and the
//! campaign engine, which predate the move.

pub use wsan_net::parallel::{parallel_map, parallel_map_with, payload_message};
