//! Tiny data-parallel helper over std scoped threads.
//!
//! The schedulability sweeps evaluate 100 independent flow sets per
//! configuration point; this spreads them over the machine's cores without
//! pulling in a task-scheduling dependency.

/// Applies `f` to `0..n` across up to `available_parallelism` threads and
/// returns the results in index order.
///
/// `f` must be `Sync` because multiple worker threads call it concurrently.
///
/// # Panics
///
/// If `f` panics for some item, the panic is re-raised on the calling
/// thread with the failing index and the original payload's message
/// attached (e.g. `parallel_map: item 3 panicked: boom`), instead of an
/// anonymous "worker panicked" abort that loses which sweep point died.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if workers <= 1 {
        return (0..n).map(|i| call_checked(&f, i)).collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    let mut failure: Option<(usize, String)> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let wrapped = std::panic::AssertUnwindSafe(|| f(i));
                    match std::panic::catch_unwind(wrapped) {
                        Ok(value) => out.push((i, value)),
                        Err(payload) => return Err((i, payload_message(payload.as_ref()))),
                    }
                }
                Ok(out)
            }));
        }
        for handle in handles {
            match handle.join().expect("worker thread could not be joined") {
                Ok(chunk) => {
                    for (i, value) in chunk {
                        results[i] = Some(value);
                    }
                }
                // keep the earliest failing index for a deterministic report
                Err((i, msg)) if failure.as_ref().is_none_or(|(j, _)| i < *j) => {
                    failure = Some((i, msg));
                }
                Err(_) => {}
            }
        }
    });
    if let Some((index, message)) = failure {
        panic!("parallel_map: item {index} panicked: {message}");
    }
    results.into_iter().map(|r| r.expect("all indices computed")).collect()
}

/// Sequential fallback with the same panic enrichment as the worker path.
fn call_checked<T, F: Fn(usize) -> T>(f: &F, i: usize) -> T {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))) {
        Ok(value) => value,
        Err(payload) => {
            panic!("parallel_map: item {i} panicked: {}", payload_message(payload.as_ref()))
        }
    }
}

/// Best-effort extraction of the human-readable message from a panic
/// payload (`&str` and `String` cover `panic!` and `assert!` payloads).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    #[should_panic(expected = "parallel_map: item 3 panicked: sweep point exploded")]
    fn panicking_item_reports_its_index_and_message() {
        let _ = parallel_map(8, |i| {
            if i == 3 {
                panic!("sweep point exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "item 0 panicked")]
    fn sequential_path_reports_too() {
        // n = 1 takes the workers <= 1 fallback
        let _: Vec<u32> = parallel_map(1, |_| panic!("boom"));
    }

    #[test]
    fn earliest_failing_index_wins() {
        // All items panic; the re-raised index must be deterministic (0).
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = parallel_map(16, |i| panic!("item-{i}"));
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with("parallel_map: item 0 panicked"), "got: {msg}");
    }
}
