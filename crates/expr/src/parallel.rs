//! Tiny data-parallel helper over std scoped threads.
//!
//! The schedulability sweeps evaluate 100 independent flow sets per
//! configuration point; this spreads them over the machine's cores without
//! pulling in a task-scheduling dependency.

/// Applies `f` to `0..n` across up to `available_parallelism` threads and
/// returns the results in index order.
///
/// `f` must be `Sync` because multiple worker threads call it concurrently.
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    out.push((i, f(i)));
                }
                out
            }));
        }
        for handle in handles {
            for (i, value) in handle.join().expect("worker panicked") {
                results[i] = Some(value);
            }
        }
    });
    results.into_iter().map(|r| r.expect("all indices computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }
}
