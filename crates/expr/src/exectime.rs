//! Scheduler execution-time measurement (Fig. 6).
//!
//! The paper times NR, RA, and RC on a laptop while growing the traffic
//! load (peer-to-peer, 5 channels, `P = [2^0, 2^2]`). Absolute numbers
//! depend on the host; the *ordering* (NR ≪ RC < RA under load) and growth
//! trends are algorithmic.

use crate::schedulable::{set_seed, WorkloadConfig};
use crate::Algorithm;
use serde::{Deserialize, Serialize};
use std::time::Instant;
use wsan_core::NetworkModel;
use wsan_flow::{FlowSetConfig, FlowSetGenerator};
use wsan_net::{ChannelId, Prr, Topology};

/// Timing of the algorithms at one flow count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingPoint {
    /// Number of flows.
    pub flows: usize,
    /// Per-algorithm results.
    pub algorithms: Vec<AlgoTiming>,
}

/// Timing of one algorithm at one flow count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoTiming {
    /// Algorithm name.
    pub algorithm: String,
    /// Mean wall-clock milliseconds over the *schedulable* runs, `None`
    /// when no run was schedulable (the paper stops plotting NR once it can
    /// no longer generate schedules).
    pub mean_ms: Option<f64>,
    /// Fraction of runs that were schedulable.
    pub schedulable_ratio: f64,
}

/// Measures mean scheduling time per algorithm at each flow count.
///
/// Runs single-threaded (timing fidelity beats throughput here); the flow
/// sets are the same across algorithms at each point.
pub fn measure(
    topology: &Topology,
    m: usize,
    flow_counts: &[usize],
    algorithms: &[Algorithm],
    cfg: &WorkloadConfig,
) -> Vec<TimingPoint> {
    let channels = ChannelId::all().take(m);
    let comm = topology.comm_graph(&channels, Prr::new(cfg.prr_threshold).expect("valid PRR"));
    let model = NetworkModel::new(topology, &channels);
    flow_counts
        .iter()
        .map(|&n| {
            let fsc = FlowSetConfig::new(n, cfg.periods, cfg.pattern);
            let sets: Vec<_> = (0..cfg.flow_sets)
                .filter_map(|i| {
                    FlowSetGenerator::new(set_seed(cfg.seed, i)).generate(&comm, &fsc).ok()
                })
                .collect();
            let algorithms = algorithms
                .iter()
                .map(|algo| {
                    let scheduler = algo.build();
                    let mut total_ms = 0.0;
                    let mut ok = 0usize;
                    for set in &sets {
                        let start = Instant::now();
                        let result = scheduler.schedule(set, &model);
                        let elapsed = start.elapsed().as_secs_f64() * 1e3;
                        if result.is_ok() {
                            total_ms += elapsed;
                            ok += 1;
                        }
                    }
                    AlgoTiming {
                        algorithm: algo.to_string(),
                        mean_ms: (ok > 0).then(|| total_ms / ok as f64),
                        schedulable_ratio: if sets.is_empty() {
                            0.0
                        } else {
                            ok as f64 / sets.len() as f64
                        },
                    }
                })
                .collect();
            TimingPoint { flows: n, algorithms }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_flow::{PeriodRange, TrafficPattern};
    use wsan_net::testbeds;

    #[test]
    fn timing_points_cover_requested_counts() {
        let topo = testbeds::wustl(6);
        let cfg = WorkloadConfig {
            flow_sets: 2,
            flow_count: 0, // overridden per point
            periods: PeriodRange::new(0, 2).unwrap(),
            pattern: TrafficPattern::PeerToPeer,
            seed: 5,
            prr_threshold: 0.9,
        };
        let points = measure(&topo, 5, &[5, 10], &Algorithm::paper_suite(), &cfg);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].flows, 5);
        for p in &points {
            assert_eq!(p.algorithms.len(), 3);
            for a in &p.algorithms {
                if let Some(ms) = a.mean_ms {
                    assert!(ms >= 0.0);
                }
            }
        }
    }
}
