//! Network-reliability experiments on the simulated testbed (Figs. 8, 9).
//!
//! Five flow sets of 50 flows (half at 0.5 s, half at 1 s) run on four
//! channels; each schedule executes 100 times and the per-flow Packet
//! Delivery Ratios are summarized as box plots. Fig. 9 reports the
//! Tx/channel distribution of the same schedules.

use crate::schedulable::set_seed;
use crate::Algorithm;
use serde::{Deserialize, Serialize};
use wsan_core::metrics::compute;
use wsan_core::NetworkModel;
use wsan_flow::{FlowSetConfig, FlowSetGenerator, PeriodRange, TrafficPattern};
use wsan_net::{ChannelSet, Prr, Topology};
use wsan_sim::{CaptureModel, SimConfig, SimEngine, Simulator};
use wsan_stats::{BoxPlot, Histogram};

/// Parameters of the reliability experiment.
#[derive(Debug, Clone)]
pub struct ReliabilityConfig {
    /// Number of distinct flow sets (paper: 5).
    pub flow_sets: usize,
    /// Flows per set (paper: 50).
    pub flow_count: usize,
    /// Schedule executions per flow set (paper: 100).
    pub repetitions: u32,
    /// Harmonic period range (paper: `[2^-1, 2^0]` s).
    pub periods: PeriodRange,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Base seed.
    pub seed: u64,
    /// Capture model of the PHY.
    pub capture: CaptureModel,
    /// `PRR_t` for the communication graph.
    pub prr_threshold: f64,
    /// How many generation attempts to make per flow set until every
    /// algorithm can schedule it (the paper's five sets are implicitly
    /// feasible for all three algorithms).
    pub feasibility_attempts: usize,
    /// Which simulation core executes the runs. Both engines are
    /// equivalent (byte-identical here, since reliability runs use a clean
    /// environment); the event engine is faster on sparse schedules.
    pub engine: SimEngine,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            flow_sets: 5,
            flow_count: 50,
            repetitions: 100,
            periods: PeriodRange::new(-1, 0).expect("valid range"),
            pattern: TrafficPattern::PeerToPeer,
            seed: 0xBEEF,
            capture: CaptureModel::default(),
            prr_threshold: 0.9,
            feasibility_attempts: 50,
            engine: SimEngine::default(),
        }
    }
}

/// Reliability outcome of one algorithm on one flow set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgoReliability {
    /// Algorithm name.
    pub algorithm: String,
    /// Box-plot summary of the per-flow PDRs.
    pub pdr_boxplot: BoxPlot,
    /// Worst per-flow PDR (the paper's key robustness number).
    pub worst_pdr: f64,
    /// Median per-flow PDR.
    pub median_pdr: f64,
    /// Tx/channel distribution of the schedule (Fig. 9).
    pub tx_per_channel: Histogram,
}

/// Reliability outcomes of all algorithms on one flow set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSetReliability {
    /// Index of the flow set (0-based; the paper labels them 1–5).
    pub set_index: usize,
    /// Seed that generated the (feasible) flow set.
    pub set_seed: u64,
    /// Per-algorithm outcomes, in the order requested.
    pub algorithms: Vec<AlgoReliability>,
}

/// Runs the reliability experiment.
///
/// For each of `cfg.flow_sets` workloads, a flow set schedulable by *every*
/// algorithm is drawn (re-sampling deterministically up to
/// `feasibility_attempts` times), each algorithm's schedule is executed
/// `repetitions` times on the PHY, and per-flow PDRs are summarized.
///
/// # Panics
///
/// Panics when no commonly-schedulable flow set can be found — lower the
/// flow count or raise the attempt budget.
pub fn evaluate(
    topology: &Topology,
    channels: &ChannelSet,
    algorithms: &[Algorithm],
    cfg: &ReliabilityConfig,
) -> Vec<FlowSetReliability> {
    let comm = topology.comm_graph(channels, Prr::new(cfg.prr_threshold).expect("valid PRR"));
    let model = NetworkModel::new(topology, channels);
    let fsc = FlowSetConfig::new(cfg.flow_count, cfg.periods, cfg.pattern);
    let mut results = Vec::with_capacity(cfg.flow_sets);
    let mut attempt = 0usize;
    for set_index in 0..cfg.flow_sets {
        // find a flow set schedulable by all algorithms
        let (seed, set, schedules) = loop {
            assert!(
                attempt < cfg.feasibility_attempts + cfg.flow_sets,
                "no flow set schedulable by all algorithms within the attempt budget"
            );
            let seed = set_seed(cfg.seed, attempt);
            attempt += 1;
            let Ok(set) = FlowSetGenerator::new(seed).generate(&comm, &fsc) else {
                continue;
            };
            let schedules: Vec<_> =
                algorithms.iter().filter_map(|a| a.build().schedule(&set, &model).ok()).collect();
            if schedules.len() == algorithms.len() {
                break (seed, set, schedules);
            }
        };
        let algo_results = algorithms
            .iter()
            .zip(&schedules)
            .map(|(algo, schedule)| {
                let sim = Simulator::new(topology, channels, &set, schedule);
                let report = sim.run_with(
                    cfg.engine,
                    &SimConfig {
                        seed: seed ^ 0xABCD_EF01,
                        repetitions: cfg.repetitions,
                        window_reps: cfg.repetitions.max(1),
                        capture: cfg.capture,
                        interferers: Vec::new(),
                        discovery_probes: 0,
                        ..SimConfig::default()
                    },
                );
                let pdrs = report.flow_pdrs();
                let boxplot = BoxPlot::of(&pdrs).expect("at least one flow");
                AlgoReliability {
                    algorithm: algo.to_string(),
                    worst_pdr: report.worst_flow_pdr(),
                    median_pdr: boxplot.median,
                    pdr_boxplot: boxplot,
                    tx_per_channel: compute(schedule, &model).tx_per_channel,
                }
            })
            .collect();
        results.push(FlowSetReliability { set_index, set_seed: seed, algorithms: algo_results });
    }
    results
}

/// Campaign-engine variant of [`evaluate`] for a *single* flow set.
///
/// Unlike [`evaluate`], whose feasibility search shares one attempt counter
/// across sets (set `i+1` starts where set `i` stopped), each set here draws
/// candidate seeds from its own range
/// `[set_index · feasibility_attempts, (set_index + 1) · feasibility_attempts)`,
/// so sets are independent: they can run on different workers, in any
/// order, and resume individually without changing each other's workload.
///
/// # Errors
///
/// Returns a message when no commonly-schedulable flow set exists within
/// the set's attempt budget, or when the simulator rejects its inputs.
pub fn evaluate_set(
    topology: &Topology,
    channels: &ChannelSet,
    algorithms: &[Algorithm],
    cfg: &ReliabilityConfig,
    set_index: usize,
) -> Result<FlowSetReliability, String> {
    let prr = Prr::new(cfg.prr_threshold).map_err(|e| e.to_string())?;
    let comm = topology.comm_graph(channels, prr);
    let model = NetworkModel::new(topology, channels);
    let fsc = FlowSetConfig::new(cfg.flow_count, cfg.periods, cfg.pattern);
    let first_attempt = set_index * cfg.feasibility_attempts.max(1);
    let mut found = None;
    for attempt in first_attempt..first_attempt + cfg.feasibility_attempts.max(1) {
        let seed = set_seed(cfg.seed, attempt);
        let Ok(set) = FlowSetGenerator::new(seed).generate(&comm, &fsc) else {
            continue;
        };
        let schedules: Vec<_> =
            algorithms.iter().filter_map(|a| a.build().schedule(&set, &model).ok()).collect();
        if schedules.len() == algorithms.len() {
            found = Some((seed, set, schedules));
            break;
        }
    }
    let Some((seed, set, schedules)) = found else {
        return Err(format!(
            "flow set {set_index}: no workload schedulable by all algorithms within \
             {} attempts — lower the flow count or raise the attempt budget",
            cfg.feasibility_attempts
        ));
    };
    let algo_results = algorithms
        .iter()
        .zip(&schedules)
        .map(|(algo, schedule)| {
            let sim = Simulator::try_new(topology, channels, &set, schedule)
                .map_err(|e| format!("flow set {set_index}: {e}"))?;
            let report = sim
                .try_run_with(
                    cfg.engine,
                    &SimConfig {
                        seed: seed ^ 0xABCD_EF01,
                        repetitions: cfg.repetitions,
                        window_reps: cfg.repetitions.max(1),
                        capture: cfg.capture,
                        interferers: Vec::new(),
                        discovery_probes: 0,
                        ..SimConfig::default()
                    },
                )
                .map_err(|e| format!("flow set {set_index}: {e}"))?;
            let pdrs = report.flow_pdrs();
            let boxplot = BoxPlot::of(&pdrs).map_err(|e| format!("flow set {set_index}: {e}"))?;
            Ok(AlgoReliability {
                algorithm: algo.to_string(),
                worst_pdr: report.worst_flow_pdr(),
                median_pdr: boxplot.median,
                pdr_boxplot: boxplot,
                tx_per_channel: compute(schedule, &model).tx_per_channel,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FlowSetReliability { set_index, set_seed: seed, algorithms: algo_results })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsan_net::{testbeds, ChannelId};

    #[test]
    fn evaluate_set_is_independent_of_other_sets() {
        let topo = testbeds::wustl(8);
        let channels = ChannelId::range(11, 14).unwrap();
        let cfg = ReliabilityConfig {
            flow_sets: 2,
            flow_count: 12,
            repetitions: 20,
            feasibility_attempts: 10,
            ..ReliabilityConfig::default()
        };
        let alone = evaluate_set(&topo, &channels, &Algorithm::paper_suite(), &cfg, 1).unwrap();
        // computing set 0 first must not change what set 1 evaluates to
        let _ = evaluate_set(&topo, &channels, &Algorithm::paper_suite(), &cfg, 0).unwrap();
        let again = evaluate_set(&topo, &channels, &Algorithm::paper_suite(), &cfg, 1).unwrap();
        assert_eq!(alone, again);
        assert_eq!(alone.set_index, 1);
        assert_eq!(alone.algorithms.len(), 3);
    }

    #[test]
    fn reliability_experiment_produces_comparable_outcomes() {
        let topo = testbeds::wustl(8);
        let channels = ChannelId::range(11, 14).unwrap();
        let cfg = ReliabilityConfig {
            flow_sets: 1,
            flow_count: 12,
            repetitions: 30,
            ..ReliabilityConfig::default()
        };
        let results = evaluate(&topo, &channels, &Algorithm::paper_suite(), &cfg);
        assert_eq!(results.len(), 1);
        let algos = &results[0].algorithms;
        assert_eq!(algos.len(), 3);
        for a in algos {
            assert!((0.0..=1.0).contains(&a.worst_pdr), "{}: {}", a.algorithm, a.worst_pdr);
            assert!(a.median_pdr >= a.worst_pdr);
            assert!(a.tx_per_channel.total() > 0);
        }
        // NR must not share channels
        let nr = algos.iter().find(|a| a.algorithm == "NR").unwrap();
        assert_eq!(nr.tx_per_channel.proportion(1), 1.0);
    }

    /// Reliability runs use a clean environment and scheduled-only faults
    /// (none), so they sit inside the event engine's draw-order contract:
    /// both engines must produce identical experiment outcomes.
    #[test]
    fn engines_agree_on_reliability_outcomes() {
        let topo = testbeds::wustl(8);
        let channels = ChannelId::range(11, 14).unwrap();
        let base = ReliabilityConfig {
            flow_sets: 1,
            flow_count: 12,
            repetitions: 20,
            feasibility_attempts: 10,
            ..ReliabilityConfig::default()
        };
        let events = ReliabilityConfig { engine: wsan_sim::SimEngine::EventDriven, ..base.clone() };
        let a = evaluate_set(&topo, &channels, &Algorithm::paper_suite(), &base, 0).unwrap();
        let b = evaluate_set(&topo, &channels, &Algorithm::paper_suite(), &events, 0).unwrap();
        assert_eq!(a, b);
    }
}
