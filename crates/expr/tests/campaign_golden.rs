//! Golden-digest tests for the campaign engine (ISSUE 4 acceptance):
//! the parallel aggregate is byte-identical to the sequential one, and an
//! interrupted campaign resumed with `--resume` reproduces the aggregate of
//! an uninterrupted run without re-running checkpointed points.

use wsan_expr::campaign::CampaignConfig;
use wsan_expr::campaigns::{run_named, SweepOptions};

fn opts() -> SweepOptions {
    SweepOptions { sets: 2, seed: 3, ..SweepOptions::default() }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wsan-campaign-golden-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn parallel_aggregate_json_is_byte_identical_to_sequential() {
    let sequential =
        run_named("smoke", &opts(), &CampaignConfig { jobs: 1, ..Default::default() }).unwrap();
    // jobs and window pinned explicitly: the host may have a single core,
    // and a tiny window exercises the reorder gate
    let parallel =
        run_named("smoke", &opts(), &CampaignConfig { jobs: 4, window: 4, ..Default::default() })
            .unwrap();
    assert_eq!(sequential.json, parallel.json, "parallel aggregate diverged from sequential");
    assert_eq!(sequential.summary.executed, 3);
    assert_eq!(parallel.summary.executed, 3);
}

#[test]
fn interrupted_campaign_resumes_to_the_uninterrupted_aggregate() {
    let dir = temp_dir("resume");
    let manifest = dir.join("smoke.manifest.jsonl");

    // the reference: one uninterrupted run (no manifest involved)
    let reference = run_named("smoke", &opts(), &CampaignConfig::default()).unwrap();

    // a full run whose manifest we then truncate mid-line, as a kill during
    // the last checkpoint write would leave it
    let first = run_named(
        "smoke",
        &opts(),
        &CampaignConfig { jobs: 1, manifest: Some(manifest.clone()), ..Default::default() },
    )
    .unwrap();
    assert_eq!(first.json, reference.json);
    let text = std::fs::read_to_string(&manifest).unwrap();
    let keep: Vec<&str> = text.lines().take(2).collect(); // header + first point
    let mut truncated = keep.join("\n");
    truncated.push('\n');
    truncated.push_str(&text.lines().nth(2).unwrap()[..10]); // torn third line
    std::fs::write(&manifest, truncated).unwrap();

    let resumed = run_named(
        "smoke",
        &opts(),
        &CampaignConfig { jobs: 1, manifest: Some(manifest), resume: true, ..Default::default() },
    )
    .unwrap();
    assert_eq!(
        resumed.json, reference.json,
        "resumed aggregate diverged from the uninterrupted run"
    );
    assert_eq!(resumed.summary.resumed, 1, "the intact checkpointed point must be replayed");
    assert_eq!(resumed.summary.executed, 2, "only the missing points may re-run");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resume_of_a_complete_manifest_executes_nothing() {
    let dir = temp_dir("noop");
    let manifest = dir.join("smoke.manifest.jsonl");
    let first = run_named(
        "smoke",
        &opts(),
        &CampaignConfig { jobs: 1, manifest: Some(manifest.clone()), ..Default::default() },
    )
    .unwrap();
    let resumed = run_named(
        "smoke",
        &opts(),
        &CampaignConfig { jobs: 2, manifest: Some(manifest), resume: true, ..Default::default() },
    )
    .unwrap();
    assert_eq!(resumed.summary.executed, 0);
    assert_eq!(resumed.summary.resumed, 3);
    assert_eq!(resumed.json, first.json);
    let _ = std::fs::remove_dir_all(dir);
}
