//! Integration tests of the experiment harness at reduced scale: every
//! campaign runs end-to-end, deterministically, with internally consistent
//! outputs.

use wsan_expr::detection::{evaluate as detection, DetectionConfig};
use wsan_expr::efficiency::evaluate as efficiency;
use wsan_expr::exectime::measure;
use wsan_expr::reliability::{evaluate as reliability, ReliabilityConfig};
use wsan_expr::schedulable::{ratio_at, sweep_channels, WorkloadConfig};
use wsan_expr::Algorithm;
use wsan_flow::{PeriodRange, TrafficPattern};
use wsan_net::{testbeds, ChannelId};

fn small_workload(flows: usize) -> WorkloadConfig {
    WorkloadConfig {
        flow_sets: 6,
        seed: 3,
        ..WorkloadConfig::new(flows, PeriodRange::new(0, 2).unwrap(), TrafficPattern::PeerToPeer)
    }
}

#[test]
fn schedulability_campaign_is_deterministic_and_bounded() {
    let topo = testbeds::wustl(2);
    let a = sweep_channels(&topo, &[3, 5], &Algorithm::paper_suite(), &small_workload(20));
    let b = sweep_channels(&topo, &[3, 5], &Algorithm::paper_suite(), &small_workload(20));
    assert_eq!(a, b);
    for point in &a {
        for (_, ratio) in &point.ratios {
            assert!((0.0..=1.0).contains(ratio));
        }
    }
}

#[test]
fn efficiency_campaign_counts_only_schedulable_sets() {
    let topo = testbeds::wustl(2);
    let cfg = small_workload(20);
    let results = efficiency(&topo, 4, &Algorithm::paper_suite(), &cfg);
    let ratios = ratio_at(&topo, 4, &Algorithm::paper_suite(), &cfg);
    for (res, (_, ratio)) in results.iter().zip(&ratios) {
        let expected = (ratio * cfg.flow_sets as f64).round() as usize;
        assert_eq!(
            res.schedulable_sets, expected,
            "{}: efficiency and schedulability disagree",
            res.algorithm
        );
        // NR never shares
        if res.algorithm == Algorithm::Nr && res.schedulable_sets > 0 {
            assert_eq!(res.metrics.no_reuse_fraction(), 1.0);
        }
    }
}

#[test]
fn exectime_campaign_reports_only_successful_timings() {
    let topo = testbeds::wustl(2);
    let cfg = small_workload(0);
    let points = measure(&topo, 4, &[10, 20], &Algorithm::paper_suite(), &cfg);
    for point in points {
        for algo in point.algorithms {
            match algo.mean_ms {
                Some(ms) => {
                    assert!(ms >= 0.0);
                    assert!(algo.schedulable_ratio > 0.0);
                }
                None => assert_eq!(algo.schedulable_ratio, 0.0),
            }
        }
    }
}

#[test]
fn reliability_campaign_produces_consistent_boxplots() {
    let topo = testbeds::wustl(2);
    let cfg = ReliabilityConfig {
        flow_sets: 2,
        flow_count: 10,
        repetitions: 20,
        ..ReliabilityConfig::default()
    };
    let channels = ChannelId::range(11, 14).unwrap();
    let results = reliability(&topo, &channels, &Algorithm::paper_suite(), &cfg);
    assert_eq!(results.len(), 2);
    for set in &results {
        for algo in &set.algorithms {
            let b = &algo.pdr_boxplot;
            assert!(b.min <= b.median && b.median <= b.max);
            assert!((algo.worst_pdr - b.min).abs() < 1e-12, "worst PDR must be the minimum");
            assert_eq!(b.n, 10);
        }
    }
}

#[test]
fn detection_campaign_has_consistent_epoch_structure() {
    let topo = testbeds::wustl(2);
    let channels = ChannelId::range(11, 14).unwrap();
    let cfg = DetectionConfig {
        flow_count: 20,
        epochs: 2,
        samples_per_epoch: 5,
        window_reps: 3,
        ..DetectionConfig::default()
    };
    let runs = detection(&topo, &channels, &[Algorithm::Ra { rho: 2 }], &cfg);
    assert_eq!(runs.len(), 1);
    let run = &runs[0];
    assert_eq!(run.clean.len(), cfg.epochs);
    assert_eq!(run.interfered.len(), cfg.epochs);
    for (i, epoch) in run.clean.iter().enumerate() {
        assert_eq!(epoch.epoch, i);
        // rejected ∪ accepted ⊆ below-threshold candidates
        let below = epoch.below_threshold(cfg.policy.prr_threshold).len();
        assert!(epoch.rejected().len() + epoch.accepted().len() <= below);
    }
    // ever_rejected is sorted and unique
    let ever = run.ever_rejected(true);
    let mut sorted = ever.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(ever, sorted);
}
