//! The K-S implementation checked against independently computed reference
//! values (classic tabulated points of the Kolmogorov distribution and
//! hand-computed two-sample statistics).

use wsan_stats::ks::two_sample;

/// Kolmogorov distribution anchor points: P(D_n · √n ≤ λ) tabulated in
/// standard references; Q(λ) = 1 − K(λ).
#[test]
fn asymptotic_p_values_match_tabulated_kolmogorov_points() {
    // Large, identical-size samples so the small-sample correction is mild:
    // construct samples with an exact statistic D = k/n.
    // a = {0, 1, 2, …, n−1}, b = a + shift at resolution that yields a clean D.
    let n = 500;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    // shift by s positions → D = s/n exactly
    let s = 60;
    let b: Vec<f64> = (0..n).map(|i| (i + s) as f64).collect();
    let r = two_sample(&a, &b).unwrap();
    assert!((r.statistic() - s as f64 / n as f64).abs() < 1e-12);
    // λ = (√(n/2) + 0.12 + 0.11/√(n/2)) · D with n_e = n/2 = 250
    let ne = (n as f64) / 2.0;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * r.statistic();
    // Q_KS(λ) via the series, independently evaluated here
    let q: f64 = 2.0
        * (1..100)
            .map(|j| {
                let j = j as f64;
                (-1f64).powi(j as i32 - 1) * (-2.0 * j * j * lambda * lambda).exp()
            })
            .sum::<f64>();
    assert!((r.p_value() - q.clamp(0.0, 1.0)).abs() < 1e-9);
}

/// Classic anchor: at D·(√n_e + …) = 1.36, the two-sided p-value is ≈ 0.05
/// (the 95 % critical value of the Kolmogorov distribution).
#[test]
fn critical_value_1_36_gives_p_of_about_0_05() {
    // choose samples sized so the corrected λ lands near 1.36
    let n = 1000;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ne = (n as f64) / 2.0;
    let d_target = 1.36 / (ne.sqrt() + 0.12 + 0.11 / ne.sqrt());
    let shift = (d_target * n as f64).round() as usize;
    let b: Vec<f64> = (0..n).map(|i| (i + shift) as f64).collect();
    let r = two_sample(&a, &b).unwrap();
    assert!(
        (r.p_value() - 0.05).abs() < 0.01,
        "p at the 1.36 critical point should be ≈0.05, got {}",
        r.p_value()
    );
}

/// Worked example: a = {1,2,3,4}, b = {3,4,5,6}: F_a(2)=0.5, F_b(2)=0 →
/// D = 0.5; by symmetry that is the supremum.
#[test]
fn hand_worked_two_sample_statistic() {
    let r = two_sample(&[1.0, 2.0, 3.0, 4.0], &[3.0, 4.0, 5.0, 6.0]).unwrap();
    assert!((r.statistic() - 0.5).abs() < 1e-12);
    // n_e = 2, λ = (√2 + 0.12 + 0.11/√2)·0.5 ≈ 0.806 → p ≈ 0.53:
    // far from significant, as 4-point samples should be
    assert!(r.p_value() > 0.4 && r.p_value() < 0.7);
}
