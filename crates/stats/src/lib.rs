//! Statistics toolkit for the WSAN reproduction.
//!
//! Provides the two-sample Kolmogorov–Smirnov test at the heart of the
//! paper's reliability-degradation classifier (§VI), plus the descriptive
//! statistics used by the evaluation: empirical CDFs, box-plot summaries
//! (Fig. 8), and histograms (Figs. 4, 5, 9).
//!
//! # Example: the paper's statistical test
//!
//! ```
//! use wsan_stats::ks::{two_sample, KsOutcome};
//!
//! // PRR samples of a link in contention-free slots vs. reuse slots.
//! let contention_free = [0.96, 0.98, 0.94, 1.0, 0.97, 0.95, 0.99, 0.96];
//! let with_reuse      = [0.52, 0.61, 0.55, 0.48, 0.60, 0.51, 0.57, 0.49];
//! let result = two_sample(&contention_free, &with_reuse).unwrap();
//! assert_eq!(result.outcome(0.05), KsOutcome::Reject); // distributions differ
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecdf;
pub mod histogram;
pub mod ks;
pub mod summary;

pub use ecdf::Ecdf;
pub use histogram::Histogram;
pub use ks::{two_sample, KsOutcome, KsResult};
pub use summary::{BoxPlot, Summary};

use std::error::Error;
use std::fmt;

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// A sample set was empty where data is required.
    EmptySample,
    /// A sample contained NaN, which has no order.
    NanSample,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptySample => write!(f, "statistic requires a non-empty sample"),
            StatsError::NanSample => write!(f, "sample contains NaN"),
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
