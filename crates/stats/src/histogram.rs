//! Discrete histograms over small integer categories.
//!
//! The paper's efficiency figures are categorical distributions: number of
//! transmissions per channel (Figs. 4, 9) and channel-reuse hop count
//! (Fig. 5). [`Histogram`] counts occurrences of small unsigned categories
//! and reports proportions.

use serde::{Deserialize, Serialize};

/// A histogram over unsigned integer categories (0, 1, 2, …).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Adds one observation of `category`.
    pub fn record(&mut self, category: usize) {
        if category >= self.counts.len() {
            self.counts.resize(category + 1, 0);
        }
        self.counts[category] += 1;
    }

    /// Adds `weight` observations of `category`.
    pub fn record_n(&mut self, category: usize, weight: u64) {
        if category >= self.counts.len() {
            self.counts.resize(category + 1, 0);
        }
        self.counts[category] += weight;
    }

    /// Count of observations in `category`.
    pub fn count(&self, category: usize) -> u64 {
        self.counts.get(category).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observations in `category` (0 for an empty histogram).
    pub fn proportion(&self, category: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(category) as f64 / total as f64
        }
    }

    /// Largest category with a nonzero count, if any.
    pub fn max_category(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// `(category, count)` pairs with nonzero counts, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (cat, count) in other.iter() {
            self.record_n(cat, count);
        }
    }

    /// Proportions for categories `0..=max`, with everything above `max`
    /// folded into the last bucket — the "4+" style tail used in the
    /// paper's bar charts.
    pub fn proportions_with_tail(&self, max: usize) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; max + 1];
        }
        let mut out = vec![0.0; max + 1];
        for (cat, count) in self.iter() {
            let bucket = cat.min(max);
            out[bucket] += count as f64 / total as f64;
        }
        out
    }
}

impl Extend<usize> for Histogram {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for c in iter {
            self.record(c);
        }
    }
}

impl FromIterator<usize> for Histogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.proportion(0), 0.0);
        assert_eq!(h.max_category(), None);
    }

    #[test]
    fn record_and_query() {
        let h: Histogram = [1, 2, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(2), 2);
        assert!((h.proportion(3) - 0.5).abs() < 1e-12);
        assert_eq!(h.max_category(), Some(3));
    }

    #[test]
    fn weighted_record() {
        let mut h = Histogram::new();
        h.record_n(5, 10);
        assert_eq!(h.count(5), 10);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: Histogram = [1, 1].into_iter().collect();
        let b: Histogram = [1, 2].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(1), 3);
        assert_eq!(a.count(2), 1);
    }

    #[test]
    fn tail_folding() {
        let h: Histogram = [1, 2, 3, 4, 5, 6].into_iter().collect();
        let props = h.proportions_with_tail(3);
        assert_eq!(props.len(), 4);
        assert!((props[1] - 1.0 / 6.0).abs() < 1e-12);
        // categories 3,4,5,6 fold into bucket 3 → 4/6
        assert!((props[3] - 4.0 / 6.0).abs() < 1e-12);
        let sum: f64 = props.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iter_skips_zero_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(4);
        let cats: Vec<usize> = h.iter().map(|(c, _)| c).collect();
        assert_eq!(cats, vec![0, 4]);
    }
}
