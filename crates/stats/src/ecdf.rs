//! Empirical cumulative distribution functions.

use crate::StatsError;
use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over a sample.
///
/// `F(x)` is the fraction of sample points `≤ x`. The constructor sorts a
/// copy of the data; evaluation is a binary search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF of `sample`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptySample`] for an empty sample and
    /// [`StatsError::NanSample`] if any value is NaN.
    pub fn new(sample: &[f64]) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptySample);
        }
        if sample.iter().any(|x| x.is_nan()) {
            return Err(StatsError::NanSample);
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ok(Ecdf { sorted })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true: construction requires data).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: the fraction of sample points `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x when we search
        // for the first element strictly greater than x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// `F(x⁻)`: the left limit of the ECDF at `x` — the fraction of sample
    /// points *strictly less* than `x`.
    ///
    /// Exact by construction: unlike probing `eval(x - ε)`, no epsilon can
    /// straddle a neighbouring support point when sample values are closely
    /// spaced (adjacent floats included).
    pub fn eval_left(&self, x: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v < x);
        count as f64 / self.sorted.len() as f64
    }

    /// The sorted sample points (useful for stepping through jump points).
    pub fn support(&self) -> &[f64] {
        &self.sorted
    }

    /// Smallest sample value.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample value.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_rejected() {
        assert_eq!(Ecdf::new(&[]), Err(StatsError::EmptySample));
    }

    #[test]
    fn nan_is_rejected() {
        assert_eq!(Ecdf::new(&[1.0, f64::NAN]), Err(StatsError::NanSample));
    }

    #[test]
    fn step_function_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn ties_jump_together() {
        let e = Ecdf::new(&[1.0, 1.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.eval(1.0), 0.75);
        assert_eq!(e.eval(0.999), 0.0);
    }

    #[test]
    fn eval_is_monotone() {
        let e = Ecdf::new(&[0.3, 0.9, 0.1, 0.5, 0.5]).unwrap();
        let mut last = 0.0;
        for i in 0..100 {
            let x = i as f64 / 100.0;
            let v = e.eval(x);
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn eval_left_is_exact_at_jumps() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.eval_left(0.5), 0.0);
        assert_eq!(e.eval_left(1.0), 0.0);
        assert_eq!(e.eval_left(2.0), 0.25);
        assert_eq!(e.eval_left(3.0), 0.75);
        assert_eq!(e.eval_left(100.0), 1.0);
    }

    #[test]
    fn eval_left_separates_adjacent_floats() {
        // Support points one ULP apart: an epsilon probe of the larger
        // point would jump below both; the exact left limit must not.
        let hi = 0.93_f64;
        let lo = f64::from_bits(hi.to_bits() - 1);
        let e = Ecdf::new(&[lo, hi]).unwrap();
        assert_eq!(e.eval_left(hi), 0.5);
        assert_eq!(e.eval_left(lo), 0.0);
        assert_eq!(e.eval(lo), 0.5);
    }

    #[test]
    fn min_max_and_support_sorted() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
        assert_eq!(e.support(), &[1.0, 2.0, 3.0]);
        assert_eq!(e.len(), 3);
    }
}
